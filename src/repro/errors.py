"""Exception hierarchy for the LDV reproduction.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch one base class. Sub-hierarchies mirror the subsystems:
the relational engine (:class:`DatabaseError` and descendants, including
the durability/wire failures :class:`TransientError`,
:class:`StatementTimeout`, and :class:`WALCorruptionError`), the
virtual OS (:class:`VosError`), the provenance models
(:class:`ProvenanceError`), and the LDV packaging/replay core
(:class:`PackageError`, :class:`ReplayError`).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


# ---------------------------------------------------------------------------
# Relational engine (repro.db)
# ---------------------------------------------------------------------------


class DatabaseError(ReproError):
    """Base class for errors raised by the relational engine."""


class SQLSyntaxError(DatabaseError):
    """The SQL text could not be tokenized or parsed.

    Carries the offending position so client tools can point at it.
    """

    def __init__(self, message: str, position: int | None = None) -> None:
        super().__init__(message)
        self.position = position


class CatalogError(DatabaseError):
    """A schema object (table, column) is missing or already exists."""


class TypeError_(DatabaseError):
    """A value or expression has an inadmissible SQL type."""


class IntegrityError(DatabaseError):
    """A constraint (primary key, not-null) would be violated."""


class ExecutionError(DatabaseError):
    """A statement failed during execution (not a syntax/catalog issue)."""


class TransactionError(DatabaseError):
    """Invalid transaction state transition (e.g. commit without begin)."""


class TransientError(DatabaseError):
    """A temporary failure (wire fault, failed fsync) that may succeed
    if retried.

    :class:`repro.db.client.DBClient` retries these with bounded
    exponential backoff when given a ``RetryPolicy``; everything else
    treats them as ordinary database errors.
    """


class WriteConflictError(TransientError):
    """A snapshot-isolation write-write conflict (first committer wins).

    Raised when a transaction writes a row that another transaction
    modified and committed after this transaction's snapshot was taken.
    The losing transaction is rolled back automatically; retrying the
    *whole transaction* (fresh BEGIN, fresh snapshot) is safe and will
    usually succeed, which is why this derives from
    :class:`TransientError` — :meth:`repro.db.client.DBClient.run_transaction`
    retries it with the client's backoff policy. Unlike a wire fault,
    the failed frame itself must *not* be resent verbatim (the
    transaction it belonged to is gone), so the server does not mark
    these error frames ``transient`` at the protocol level.
    """


class OverloadedError(TransientError):
    """The server shed this request under admission control.

    Nothing was executed — no statement ran, no clock tick was
    consumed — so resending the same frame after the advisory
    ``retry_after`` delay is always safe. The server stamps the error
    frame with the hint and :class:`repro.db.client.DBClient` folds it
    into its jittered backoff.
    """

    def __init__(self, message: str, retry_after: float | None = None) -> None:
        super().__init__(message)
        self.retry_after = retry_after


class ServerDrainingError(TransientError):
    """The server is draining and rejected new work.

    In-flight transactions and open cursors are allowed to finish;
    everything else should be retried against a fresh server (or the
    same one once drain is cancelled). Like :class:`OverloadedError`,
    nothing was executed.
    """

    def __init__(self, message: str, retry_after: float | None = None) -> None:
        super().__init__(message)
        self.retry_after = retry_after


class GroupCommitError(TransientError):
    """A group commit's shared fsync failed; every transaction in the
    group was aborted together.

    The WAL tail holding the group's batches is truncated back to the
    group start so recovery cannot resurrect a partially-acknowledged
    group, and the in-memory engine instance is poisoned (its heap has
    applied writes the log no longer promises) — callers must reopen
    the data directory to recover. Transient because retrying against
    the recovered instance is safe: the idempotency ledger arbitrates
    whether each retried statement already applied.
    """


class WorkerCrashError(TransientError):
    """A parallel-query worker process died before returning results.

    The gather boundary reaps every worker it forked (no zombies, no
    leaked pipes) and the statement fails as a whole — no partial
    batches are ever surfaced. Nothing was written (parallel plans are
    read-only), so retrying the statement is always safe, which is why
    this derives from :class:`TransientError`.
    """


class StatementTimeout(DatabaseError):
    """A statement exceeded the server's per-statement time budget."""


class WALCorruptionError(DatabaseError):
    """The write-ahead log is unreadable beyond torn-tail damage.

    Torn tails (a crash mid-append) are *expected* and silently
    truncated during recovery; this error marks real corruption — a bad
    magic header, or a record whose checksum validates but whose
    payload cannot be interpreted.
    """


class ProtocolError(DatabaseError):
    """A malformed or out-of-sequence wire-protocol frame was seen."""


class ConnectionClosedError(ProtocolError):
    """The client or server side of a connection has gone away."""


# ---------------------------------------------------------------------------
# Virtual OS (repro.vos)
# ---------------------------------------------------------------------------


class VosError(ReproError):
    """Base class for virtual-OS errors."""


class FileSystemError(VosError):
    """Base class for virtual filesystem errors."""


class FileNotFoundVosError(FileSystemError):
    """Path does not exist in the virtual filesystem."""


class FileExistsVosError(FileSystemError):
    """Path already exists and exclusive creation was requested."""


class NotADirectoryVosError(FileSystemError):
    """A path component that must be a directory is not one."""


class IsADirectoryVosError(FileSystemError):
    """A file operation was attempted on a directory."""


class BadFileDescriptorError(VosError):
    """An operation used a closed or foreign file descriptor."""


class ProcessError(VosError):
    """Invalid process operation (double exit, unknown pid, ...)."""


class ProgramNotFoundError(VosError):
    """exec() named a binary path that holds no registered program."""


# ---------------------------------------------------------------------------
# Provenance models (repro.provenance)
# ---------------------------------------------------------------------------


class ProvenanceError(ReproError):
    """Base class for provenance-model errors."""


class ModelViolationError(ProvenanceError):
    """A trace node or edge violates its provenance model's type rules."""


class UnknownNodeError(ProvenanceError):
    """An operation referenced a node that is not part of the trace."""


# ---------------------------------------------------------------------------
# LDV core (repro.core)
# ---------------------------------------------------------------------------


class PackageError(ReproError):
    """A package could not be created, loaded, or validated."""


class ManifestError(PackageError):
    """The package manifest is missing or malformed."""


class ReplayError(ReproError):
    """Re-execution of a package failed."""


class ReplayMismatchError(ReplayError):
    """A replayed statement did not match the recorded execution trace.

    Raised by the server-excluded replayer when the application issues a
    statement in a different order, or with different text, than during
    the audited run (Section VIII of the paper).
    """

    def __init__(self, message: str, expected: str | None = None,
                 actual: str | None = None) -> None:
        super().__init__(message)
        self.expected = expected
        self.actual = actual


class AuditError(ReproError):
    """The audited application run failed or monitoring broke down."""
