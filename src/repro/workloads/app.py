"""The benchmark application of Section IX-A as virtual-OS programs.

The application runs three steps against the TPC-H database, each as
its own process (so the OS trace has real process/file structure):

1. **Insert** — read ``/data/new_orders.sql`` and execute each INSERT
   (1000 tuples into ``orders`` at paper scale),
2. **Select** — run one Table II query variant N times (10 in the
   paper), appending result counts to ``/data/results.txt``,
3. **Update** — read ``/data/updates.sql`` and execute each UPDATE
   (100 tuples at paper scale).

:func:`build_world` assembles the whole scenario: virtual OS, loaded
TPC-H database behind a server, statement files, registered step
programs, and the program registry replay needs. Counts default to a
laptop-friendly fraction of the paper's; pass ``paper_scale=True``
style counts explicitly to match them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable

from repro.db.engine import Database
from repro.db.server import DBServer
from repro.vos.kernel import VirtualOS
from repro.workloads.tpch.dbgen import TPCHConfig, TPCHGenerator
from repro.workloads.tpch.queries import QueryVariant, table2_variants
from repro.workloads.tpch.refresh import insert_statements, update_statements

SERVER_NAME = "tpch"
SERVER_BINARY = "/usr/lib/dbms/postgres"
SERVER_LIBS = ["/usr/lib/dbms/libperm.so", "/usr/lib/dbms/libpq.so"]

APP_BINARY = "/bin/tpch_app"
INSERT_BINARY = "/bin/tpch_insert"
SELECT_BINARY = "/bin/tpch_select"
UPDATE_BINARY = "/bin/tpch_update"

INSERT_FILE = "/data/new_orders.sql"
UPDATE_FILE = "/data/updates.sql"
QUERY_FILE = "/data/query.sql"
RESULT_FILE = "/data/results.txt"

# sizes of the fake server binaries: large enough that "ship the
# server" visibly costs package bytes, as it does for a real DBMS
_SERVER_BINARY_SIZE = 6 << 20
_SERVER_LIB_SIZE = 1 << 20


def _run_statement_file(ctx, path: str) -> int:
    """Execute every statement in a one-statement-per-line file."""
    client = ctx.connect_db(SERVER_NAME)
    executed = 0
    for line in ctx.read_text(path).splitlines():
        statement = line.strip()
        if statement:
            client.execute(statement)
            executed += 1
    client.close()
    return 0 if executed else 1


def insert_step(ctx) -> int:
    """Step 1: bulk-insert the refresh orders."""
    return _run_statement_file(ctx, INSERT_FILE)


def select_step(ctx) -> int:
    """Step 2: run the workload query ``argv[1]`` times (default 10)."""
    repetitions = int(ctx.argv[0]) if ctx.argv else 10
    sql = ctx.read_text(QUERY_FILE).strip()
    client = ctx.connect_db(SERVER_NAME)
    for _ in range(repetitions):
        result = client.execute(sql)
        ctx.append_file(RESULT_FILE, f"{len(result.rows)}\n")
    client.close()
    return 0


def update_step(ctx) -> int:
    """Step 3: apply the order updates."""
    return _run_statement_file(ctx, UPDATE_FILE)


def app_main(ctx) -> int:
    """The full three-step application (one process per step)."""
    repetitions = ctx.argv[0] if ctx.argv else "10"
    for binary, argv in ((INSERT_BINARY, []),
                         (SELECT_BINARY, [repetitions]),
                         (UPDATE_BINARY, [])):
        child = ctx.spawn(binary, argv)
        if child.exit_code != 0:
            return child.exit_code
    return 0


PROGRAMS: dict[str, Callable] = {
    APP_BINARY: app_main,
    INSERT_BINARY: insert_step,
    SELECT_BINARY: select_step,
    UPDATE_BINARY: update_step,
}


@dataclass
class BenchmarkWorld:
    """A fully provisioned benchmark scenario."""

    vos: VirtualOS
    database: Database
    server: DBServer
    generator: TPCHGenerator
    variant: QueryVariant
    registry: dict[str, Callable] = field(default_factory=dict)
    server_name: str = SERVER_NAME
    server_binary_paths: list[str] = field(default_factory=list)
    row_counts: dict[str, int] = field(default_factory=dict)


def build_world(scale_factor: float = 0.001,
                variant: QueryVariant | None = None,
                insert_count: int = 50,
                update_count: int = 10,
                data_dir: str | Path | None = None,
                seed: int | None = None) -> BenchmarkWorld:
    """Provision the Section IX-A scenario.

    ``data_dir`` gives the database an on-disk home (required for the
    PTU baseline, whose package copies the full data files). Counts
    default to 1/20 of the paper's (1000 inserts / 100 updates) so the
    full 18-variant sweeps stay fast; benchmarks scale them up.
    """
    vos = VirtualOS()
    database = Database(data_directory=data_dir, clock=vos.clock)
    config = TPCHConfig(scale_factor=scale_factor,
                        **({"seed": seed} if seed is not None else {}))
    generator = TPCHGenerator(config)
    row_counts = generator.generate_into(database)
    if data_dir is not None:
        database.checkpoint()
    server = DBServer(database)
    vos.register_db_server(SERVER_NAME, server.transport())

    if variant is None:
        variant = table2_variants(config)[0]  # Q1-1, as in Fig 7

    # the "server binaries" that server-included packages ship
    vos.fs.write_file(SERVER_BINARY,
                      b"\x7fELF postgres+perm" + b"\0" * _SERVER_BINARY_SIZE,
                      create_parents=True)
    for library in SERVER_LIBS:
        vos.fs.write_file(library,
                          b"\x7fELF lib" + b"\0" * _SERVER_LIB_SIZE,
                          create_parents=True)

    # statement files the step programs consume
    inserts = insert_statements(generator, insert_count,
                                start_key=config.n_orders + 1)
    updates = update_statements(generator, update_count)
    vos.fs.write_file(INSERT_FILE, "\n".join(inserts) + "\n",
                      create_parents=True)
    vos.fs.write_file(UPDATE_FILE, "\n".join(updates) + "\n",
                      create_parents=True)
    vos.fs.write_file(QUERY_FILE, variant.sql + "\n", create_parents=True)

    for binary, fn in PROGRAMS.items():
        vos.register_program(binary, fn, size=64 << 10)

    return BenchmarkWorld(
        vos=vos, database=database, server=server, generator=generator,
        variant=variant, registry=dict(PROGRAMS),
        server_binary_paths=[SERVER_BINARY, *SERVER_LIBS],
        row_counts=row_counts)


def build_scenario():
    """CLI entry point (``ldv-audit repro.workloads.app:build_scenario``)."""
    from repro.core.cli import Scenario

    world = build_world()
    return Scenario(
        vos=world.vos,
        entry_binary=APP_BINARY,
        registry=world.registry,
        argv=["3"],
        database=world.database,
        server_name=world.server_name,
        server_binary_paths=world.server_binary_paths)
