"""Alice's halo finder (the running example of Sections I–II, Fig 1).

Two processes over a shared sky-survey database:

* **P1, the halo finder** — reads a simulation snapshot file
  (particle positions), clusters nearby particles into candidate
  halos, and INSERTs them into the ``candidates`` table,
* **P2, the matcher** — runs a join of ``candidates`` against the
  pre-existing ``observations`` table (the Sloan stand-in) and writes
  the confirmed halos to a result file.

The observations table plays SkyServer's role: only the small subset
actually joined against should end up in a server-included package,
and the candidate tuples (created by the application) must be
excluded — exactly the t2/t3 discussion of Section II.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable

from repro.db.engine import Database
from repro.db.server import DBServer
from repro.vos.kernel import VirtualOS

SERVER_NAME = "sky"
HALO_FINDER_BINARY = "/opt/halo/bin/halo-finder"
MATCHER_BINARY = "/opt/halo/bin/matcher"
PIPELINE_BINARY = "/opt/halo/bin/pipeline"
SIMULATION_FILE = "/data/simulation.csv"
RESULT_FILE = "/results/halos.txt"

_CELL = 10.0  # clustering grid size, matching the observation grid


def halo_finder(ctx) -> int:
    """P1: cluster simulation particles into candidate halos."""
    lines = ctx.read_text(SIMULATION_FILE).splitlines()
    cells: dict[tuple[int, int], list[tuple[float, float]]] = {}
    for line in lines[1:]:  # header row
        x_text, y_text = line.split(",")
        x, y = float(x_text), float(y_text)
        cells.setdefault((int(x // _CELL), int(y // _CELL)), []).append(
            (x, y))
    client = ctx.connect_db(SERVER_NAME)
    halo_id = 0
    for (cell_x, cell_y), particles in sorted(cells.items()):
        if len(particles) < 3:
            continue  # not dense enough to be a halo
        halo_id += 1
        client.execute(
            "INSERT INTO candidates VALUES "
            f"({halo_id}, {cell_x}, {cell_y}, {len(particles)})")
    client.close()
    return 0


def matcher(ctx) -> int:
    """P2: confirm candidates against the observation catalogue."""
    client = ctx.connect_db(SERVER_NAME)
    rows = client.query(
        "SELECT c.halo_id, c.cell_x, c.cell_y, o.obs_id, o.brightness "
        "FROM candidates c, observations o "
        "WHERE c.cell_x = o.cell_x AND c.cell_y = o.cell_y "
        "AND o.brightness > 0.5 ORDER BY c.halo_id, o.obs_id")
    client.close()
    report = ["halo_id,cell_x,cell_y,obs_id,brightness"]
    for halo_id, cell_x, cell_y, obs_id, brightness in rows:
        report.append(f"{halo_id},{cell_x},{cell_y},{obs_id},{brightness}")
    ctx.write_file(RESULT_FILE, "\n".join(report) + "\n")
    return 0


def pipeline(ctx) -> int:
    """Fig 1's structure: run P1, then P2."""
    for binary in (HALO_FINDER_BINARY, MATCHER_BINARY):
        child = ctx.spawn(binary)
        if child.exit_code != 0:
            return child.exit_code
    return 0


PROGRAMS: dict[str, Callable] = {
    HALO_FINDER_BINARY: halo_finder,
    MATCHER_BINARY: matcher,
    PIPELINE_BINARY: pipeline,
}


@dataclass
class HaloWorld:
    vos: VirtualOS
    database: Database
    registry: dict[str, Callable] = field(default_factory=dict)
    server_name: str = SERVER_NAME
    server_binary_paths: list[str] = field(default_factory=list)
    n_observations: int = 0


def build_world(n_particles: int = 400, n_observations: int = 500,
                seed: int = 7, data_dir=None) -> HaloWorld:
    """Provision the halo-finder scenario."""
    vos = VirtualOS()
    database = Database(data_directory=data_dir, clock=vos.clock)
    database.execute(
        "CREATE TABLE observations (obs_id integer PRIMARY KEY, "
        "cell_x integer, cell_y integer, brightness double precision)")
    database.execute(
        "CREATE TABLE candidates (halo_id integer PRIMARY KEY, "
        "cell_x integer, cell_y integer, particles integer)")
    rng = random.Random(seed)
    tick = database.clock.tick()
    observations = database.catalog.get_table("observations")
    for obs_id in range(1, n_observations + 1):
        observations.insert(
            (obs_id, rng.randint(0, 19), rng.randint(0, 19),
             round(rng.random(), 3)), tick)
    if data_dir is not None:
        database.checkpoint()
    vos.register_db_server(SERVER_NAME, DBServer(database).transport())

    lines = ["x,y"]
    for _ in range(n_particles):
        # clump particles around a few attractors so halos form
        cx = rng.choice([25.0, 85.0, 145.0])
        cy = rng.choice([35.0, 95.0])
        lines.append(f"{cx + rng.gauss(0, 3):.2f},"
                     f"{cy + rng.gauss(0, 3):.2f}")
    vos.fs.write_file(SIMULATION_FILE, "\n".join(lines) + "\n",
                      create_parents=True)
    vos.fs.write_file("/usr/lib/dbms/postgres",
                      b"\x7fELF postgres" + b"\0" * (2 << 20),
                      create_parents=True)
    for binary, fn in PROGRAMS.items():
        vos.register_program(binary, fn, size=32 << 10)
    return HaloWorld(
        vos=vos, database=database, registry=dict(PROGRAMS),
        server_binary_paths=["/usr/lib/dbms/postgres"],
        n_observations=n_observations)
