"""Workloads: the TPC-H substrate and the paper's benchmark app.

* :mod:`repro.workloads.tpch` — schema, deterministic data generator,
  the Table II query variants, and the insert/update refresh streams,
* :mod:`repro.workloads.app` — the three-step benchmark application of
  Section IX-A (Insert / Select / Update) as virtual-OS programs,
* :mod:`repro.workloads.halos` — "Alice's halo finder" from the
  introduction, used by the examples.
"""

from repro.workloads.tpch.dbgen import TPCHConfig, TPCHGenerator
from repro.workloads.tpch.queries import QueryVariant, table2_variants

__all__ = [
    "TPCHConfig",
    "TPCHGenerator",
    "QueryVariant",
    "table2_variants",
]
