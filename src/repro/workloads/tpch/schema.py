"""The TPC-H schema (TPC-H specification 2.x, all eight tables)."""

from __future__ import annotations

TPCH_DDL: dict[str, str] = {
    "region": """
        CREATE TABLE region (
            r_regionkey integer PRIMARY KEY,
            r_name text NOT NULL,
            r_comment text)
    """,
    "nation": """
        CREATE TABLE nation (
            n_nationkey integer PRIMARY KEY,
            n_name text NOT NULL,
            n_regionkey integer NOT NULL,
            n_comment text)
    """,
    "supplier": """
        CREATE TABLE supplier (
            s_suppkey integer PRIMARY KEY,
            s_name text NOT NULL,
            s_address text,
            s_nationkey integer NOT NULL,
            s_phone text,
            s_acctbal double precision,
            s_comment text)
    """,
    "part": """
        CREATE TABLE part (
            p_partkey integer PRIMARY KEY,
            p_name text NOT NULL,
            p_mfgr text,
            p_brand text,
            p_type text,
            p_size integer,
            p_container text,
            p_retailprice double precision,
            p_comment text)
    """,
    "partsupp": """
        CREATE TABLE partsupp (
            ps_partkey integer NOT NULL,
            ps_suppkey integer NOT NULL,
            ps_availqty integer,
            ps_supplycost double precision,
            ps_comment text)
    """,
    "customer": """
        CREATE TABLE customer (
            c_custkey integer PRIMARY KEY,
            c_name text NOT NULL,
            c_address text,
            c_nationkey integer NOT NULL,
            c_phone text,
            c_acctbal double precision,
            c_mktsegment text,
            c_comment text)
    """,
    "orders": """
        CREATE TABLE orders (
            o_orderkey integer PRIMARY KEY,
            o_custkey integer NOT NULL,
            o_orderstatus text,
            o_totalprice double precision,
            o_orderdate date,
            o_orderpriority text,
            o_clerk text,
            o_shippriority integer,
            o_comment text)
    """,
    "lineitem": """
        CREATE TABLE lineitem (
            l_orderkey integer NOT NULL,
            l_partkey integer NOT NULL,
            l_suppkey integer NOT NULL,
            l_linenumber integer NOT NULL,
            l_quantity double precision,
            l_extendedprice double precision,
            l_discount double precision,
            l_tax double precision,
            l_returnflag text,
            l_linestatus text,
            l_shipdate date,
            l_commitdate date,
            l_receiptdate date,
            l_shipinstruct text,
            l_shipmode text,
            l_comment text)
    """,
}

# creation order respecting foreign-key-style references
TABLE_ORDER = ["region", "nation", "supplier", "part", "partsupp",
               "customer", "orders", "lineitem"]

# hash indexes the workload benefits from (the Update step and the
# reenactment queries are single-order point lookups)
TPCH_INDEXES = [
    "CREATE INDEX idx_orders_orderkey ON orders (o_orderkey)",
]


def create_all(database) -> None:
    """Create every TPC-H table (and its indexes) in dependency order."""
    for table in TABLE_ORDER:
        database.execute(TPCH_DDL[table])
    for index_ddl in TPCH_INDEXES:
        database.execute(index_ddl)
