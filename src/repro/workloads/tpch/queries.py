"""The 18 query variants of Table II.

Four query families sweep output-size/provenance-size ratios:

* **Q1** — simple selection on lineitem; selectivity via
  ``l_suppkey BETWEEN 1 AND p`` with p chosen for 1/2/5/10/25 % of
  suppliers (the paper's params 10..250 against 1000 suppliers),
* **Q2** — three-way join returning comments; selectivity via the
  length of a zero-run in ``c_name LIKE '%00..0%'``,
* **Q3** — the same join under ``count(*)`` (one result row, large
  provenance — the extreme case of Fig 8b),
* **Q4** — join + aggregation (average quantity per order), suppkey
  selectivity sweep as in Q1.

Variant ids follow the paper: ``Qi-j`` is family *i* with the *j*-th
parameter.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.workloads.tpch.dbgen import TPCHConfig

# supplier-fraction sweeps for Q1/Q4 (Table II: 1%..25%)
SUPPLIER_SELECTIVITIES = (0.01, 0.02, 0.05, 0.10, 0.25)
# zero-run lengths for Q2/Q3 (Table II: 0000000 .. 0000)
ZERO_RUNS = (7, 6, 5, 4)


@dataclass(frozen=True)
class QueryVariant:
    """One Qi-j entry of Table II."""

    query_id: str  # e.g. "Q1-3"
    family: int
    sql: str
    selectivity: float  # fraction of the driving domain selected
    param: str  # the PARAM column of Table II


def q1_sql(param: int) -> str:
    return ("SELECT l_quantity, l_partkey, l_extendedprice, l_shipdate, "
            "l_receiptdate FROM lineitem "
            f"WHERE l_suppkey BETWEEN 1 AND {param}")


def q2_sql(zero_run: int) -> str:
    pattern = "0" * zero_run
    return ("SELECT o_comment, l_comment FROM lineitem l, orders o, "
            "customer c WHERE l.l_orderkey = o.o_orderkey AND "
            "o.o_custkey = c.c_custkey AND "
            f"c.c_name LIKE '%{pattern}%'")


def q3_sql(zero_run: int) -> str:
    pattern = "0" * zero_run
    return ("SELECT count(*) FROM lineitem l, orders o, customer c "
            "WHERE l.l_orderkey = o.o_orderkey AND "
            "o.o_custkey = c.c_custkey AND "
            f"c.c_name LIKE '%{pattern}%'")


def q4_sql(param: int) -> str:
    return ("SELECT o_orderkey, AVG(l_quantity) AS avgQ "
            "FROM lineitem l, orders o "
            "WHERE l.l_orderkey = o.o_orderkey AND "
            f"l_suppkey BETWEEN 1 AND {param} GROUP BY o_orderkey")


def supplier_param(config: TPCHConfig, selectivity: float) -> int:
    """The BETWEEN upper bound selecting ``selectivity`` of suppliers."""
    return max(1, round(config.n_suppliers * selectivity))


def zero_run_selectivity(config: TPCHConfig, zero_run: int) -> float:
    """Fraction of customers whose padded name contains the run."""
    width = config.customer_name_width
    matching = min(config.n_customers,
                   max(0, 10 ** (width - zero_run) - 1))
    return matching / config.n_customers


def table2_variants(config: TPCHConfig) -> list[QueryVariant]:
    """All 18 variants, parameterized for the given scale."""
    variants: list[QueryVariant] = []
    for index, selectivity in enumerate(SUPPLIER_SELECTIVITIES, 1):
        param = supplier_param(config, selectivity)
        variants.append(QueryVariant(
            f"Q1-{index}", 1, q1_sql(param), selectivity, str(param)))
    for index, zero_run in enumerate(ZERO_RUNS, 1):
        pattern = "0" * zero_run
        selectivity = zero_run_selectivity(config, zero_run)
        variants.append(QueryVariant(
            f"Q2-{index}", 2, q2_sql(zero_run), selectivity, pattern))
    for index, zero_run in enumerate(ZERO_RUNS, 1):
        pattern = "0" * zero_run
        selectivity = zero_run_selectivity(config, zero_run)
        variants.append(QueryVariant(
            f"Q3-{index}", 3, q3_sql(zero_run), selectivity, pattern))
    for index, selectivity in enumerate(SUPPLIER_SELECTIVITIES, 1):
        param = supplier_param(config, selectivity)
        variants.append(QueryVariant(
            f"Q4-{index}", 4, q4_sql(param), selectivity, str(param)))
    return variants


def variant_by_id(config: TPCHConfig, query_id: str) -> QueryVariant:
    for variant in table2_variants(config):
        if variant.query_id == query_id:
            return variant
    raise KeyError(f"no Table II variant named {query_id!r}")
