"""TPC-H substrate: schema, dbgen, Table II queries, refresh streams."""

from repro.workloads.tpch.dbgen import TPCHConfig, TPCHGenerator
from repro.workloads.tpch.queries import (
    QueryVariant,
    q1_sql,
    q2_sql,
    q3_sql,
    q4_sql,
    table2_variants,
)
from repro.workloads.tpch.refresh import (
    insert_statements,
    update_statements,
)

__all__ = [
    "TPCHConfig",
    "TPCHGenerator",
    "QueryVariant",
    "q1_sql",
    "q2_sql",
    "q3_sql",
    "q4_sql",
    "table2_variants",
    "insert_statements",
    "update_statements",
]
