"""Deterministic TPC-H data generator (the ``dbgen`` stand-in).

Cardinalities follow the TPC-H specification scaled by ``scale_factor``
(SF 1 = 150 k customers, 1.5 M orders, ~6 M lineitems, 10 k suppliers).
A pure-Python executor cannot drive benchmark loops over SF 1, so the
experiments use small SFs; all of the paper's measures are ratios
(selectivities, package-size orderings), which are scale-invariant.

**Selectivity-faithful customer names.** Table II's Q2/Q3 control
selectivity through ``c_name LIKE '%00..0%'``: with 9-digit zero-padded
customer numbers and 150 k customers, a run of 4/5/6/7 zeros matches
66 % / 6.6 % / 0.66 % / 0.066 % of customers. To keep those exact
fractions at any scale, the generator pads customer numbers to
``round(log10(n_customers * 2/3)) + 4`` digits — at SF 1 that is the
spec's 9 digits, and the match fraction of a ``z``-zero run stays
``10^(w-z) / n``.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

from repro.db.engine import Database
from repro.workloads.tpch import schema

_NATIONS = [
    "ALGERIA", "ARGENTINA", "BRAZIL", "CANADA", "EGYPT", "ETHIOPIA",
    "FRANCE", "GERMANY", "INDIA", "INDONESIA", "IRAN", "IRAQ", "JAPAN",
    "JORDAN", "KENYA", "MOROCCO", "MOZAMBIQUE", "PERU", "CHINA",
    "ROMANIA", "SAUDI ARABIA", "VIETNAM", "RUSSIA", "UNITED KINGDOM",
    "UNITED STATES",
]
_REGIONS = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"]
_SEGMENTS = ["AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY",
             "HOUSEHOLD"]
_PRIORITIES = ["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED",
               "5-LOW"]
_SHIPMODES = ["REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"]
_INSTRUCTS = ["DELIVER IN PERSON", "COLLECT COD", "NONE",
              "TAKE BACK RETURN"]
_WORDS = ("carefully final deposits sleep quickly bold accounts wake "
          "furiously regular requests nag blithely ironic packages "
          "among the slyly express instructions boost").split()


@dataclass(frozen=True)
class TPCHConfig:
    """Generator parameters."""

    scale_factor: float = 0.001
    seed: int = 20150413  # ICDE 2015 opened on April 13

    @property
    def n_customers(self) -> int:
        return max(3, round(150_000 * self.scale_factor))

    @property
    def n_orders(self) -> int:
        return max(3, round(1_500_000 * self.scale_factor))

    @property
    def n_suppliers(self) -> int:
        # floor of 100 keeps the five Q1/Q4 selectivities (1..25 % of
        # suppliers, Table II) distinct even at tiny scale factors
        return max(100, round(10_000 * self.scale_factor))

    @property
    def n_parts(self) -> int:
        return max(4, round(200_000 * self.scale_factor))

    @property
    def customer_name_width(self) -> int:
        """Zero-pad width keeping the Table II LIKE selectivities."""
        return max(len(str(self.n_customers)),
                   round(math.log10(self.n_customers * 2 / 3)) + 4)


def customer_name(key: int, width: int) -> str:
    return f"Customer#{key:0{width}d}"


class TPCHGenerator:
    """Generates the full TPC-H database deterministically."""

    def __init__(self, config: TPCHConfig | None = None) -> None:
        self.config = config or TPCHConfig()

    # -- row generators -------------------------------------------------------------

    def _comment(self, rng: random.Random, words: int = 4) -> str:
        return " ".join(rng.choice(_WORDS) for _ in range(words))

    def _date(self, rng: random.Random) -> str:
        year = rng.randint(1992, 1998)
        month = rng.randint(1, 12)
        day = rng.randint(1, 28)
        return f"{year:04d}-{month:02d}-{day:02d}"

    def region_rows(self):
        rng = random.Random(self.config.seed + 1)
        for key, name in enumerate(_REGIONS):
            yield (key, name, self._comment(rng, 3))

    def nation_rows(self):
        rng = random.Random(self.config.seed + 2)
        for key, name in enumerate(_NATIONS):
            yield (key, name, key % len(_REGIONS), self._comment(rng, 3))

    def supplier_rows(self):
        rng = random.Random(self.config.seed + 3)
        for key in range(1, self.config.n_suppliers + 1):
            yield (key, f"Supplier#{key:09d}",
                   f"{rng.randint(1, 999)} supply st",
                   rng.randrange(len(_NATIONS)),
                   f"{rng.randint(10, 34)}-{rng.randint(100, 999)}-"
                   f"{rng.randint(1000, 9999)}",
                   round(rng.uniform(-999.99, 9999.99), 2),
                   self._comment(rng))

    def part_rows(self):
        rng = random.Random(self.config.seed + 4)
        for key in range(1, self.config.n_parts + 1):
            yield (key, f"part {self._comment(rng, 2)}",
                   f"Manufacturer#{rng.randint(1, 5)}",
                   f"Brand#{rng.randint(1, 5)}{rng.randint(1, 5)}",
                   f"{rng.choice(['STANDARD', 'SMALL', 'LARGE'])} "
                   f"{rng.choice(['PLATED', 'BRUSHED'])} "
                   f"{rng.choice(['TIN', 'NICKEL', 'BRASS'])}",
                   rng.randint(1, 50),
                   f"{rng.choice(['SM', 'MED', 'LG'])} "
                   f"{rng.choice(['BOX', 'BAG', 'JAR'])}",
                   round(900 + key / 10 % 100 + 100 * (key % 10), 2),
                   self._comment(rng))

    def partsupp_rows(self):
        rng = random.Random(self.config.seed + 5)
        for part_key in range(1, self.config.n_parts + 1):
            for offset in range(4):
                supp_key = 1 + (part_key + offset *
                                (self.config.n_suppliers // 4 + 1)
                                ) % self.config.n_suppliers
                yield (part_key, supp_key, rng.randint(1, 9999),
                       round(rng.uniform(1.0, 1000.0), 2),
                       self._comment(rng))

    def customer_rows(self):
        rng = random.Random(self.config.seed + 6)
        width = self.config.customer_name_width
        for key in range(1, self.config.n_customers + 1):
            yield (key, customer_name(key, width),
                   f"{rng.randint(1, 999)} main st",
                   rng.randrange(len(_NATIONS)),
                   f"{rng.randint(10, 34)}-{rng.randint(100, 999)}-"
                   f"{rng.randint(1000, 9999)}",
                   round(rng.uniform(-999.99, 9999.99), 2),
                   rng.choice(_SEGMENTS),
                   self._comment(rng))

    def order_row(self, key: int, rng: random.Random) -> tuple:
        return (key, rng.randint(1, self.config.n_customers),
                rng.choice(["O", "F", "P"]),
                round(rng.uniform(800.0, 500000.0), 2),
                self._date(rng),
                rng.choice(_PRIORITIES),
                f"Clerk#{rng.randint(1, 1000):09d}",
                0,
                self._comment(rng))

    def orders_rows(self):
        rng = random.Random(self.config.seed + 7)
        for key in range(1, self.config.n_orders + 1):
            yield self.order_row(key, rng)

    def lineitem_rows(self):
        rng = random.Random(self.config.seed + 8)
        for order_key in range(1, self.config.n_orders + 1):
            for line_number in range(1, rng.randint(1, 7) + 1):
                quantity = float(rng.randint(1, 50))
                price = round(quantity * rng.uniform(900.0, 1100.0), 2)
                yield (order_key,
                       rng.randint(1, self.config.n_parts),
                       rng.randint(1, self.config.n_suppliers),
                       line_number,
                       quantity,
                       price,
                       round(rng.uniform(0.0, 0.1), 2),
                       round(rng.uniform(0.0, 0.08), 2),
                       rng.choice(["R", "A", "N"]),
                       rng.choice(["O", "F"]),
                       self._date(rng),
                       self._date(rng),
                       self._date(rng),
                       rng.choice(_INSTRUCTS),
                       rng.choice(_SHIPMODES),
                       self._comment(rng))

    # -- loading ----------------------------------------------------------------------

    def generate_into(self, database: Database) -> dict[str, int]:
        """Create the schema and load every table.

        Loads through the storage layer directly (this is the DBA's
        offline load, not part of the monitored application) and
        returns per-table row counts.
        """
        schema.create_all(database)
        generators = {
            "region": self.region_rows,
            "nation": self.nation_rows,
            "supplier": self.supplier_rows,
            "part": self.part_rows,
            "partsupp": self.partsupp_rows,
            "customer": self.customer_rows,
            "orders": self.orders_rows,
            "lineitem": self.lineitem_rows,
        }
        counts: dict[str, int] = {}
        tick = database.clock.tick()
        for table_name in schema.TABLE_ORDER:
            heap = database.catalog.get_table(table_name)
            count = 0
            for row in generators[table_name]():
                heap.insert(row, tick)
                count += 1
            counts[table_name] = count
        return counts
