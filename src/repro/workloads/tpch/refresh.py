"""Insert and update refresh streams (Section IX-A).

The benchmark application's first step inserts new orders "according
to the update workload specified by TPC-H" (refresh function RF1) and
its last step updates existing orders. Both are rendered as plain SQL
statement lists so the monitored application issues them through the
client library like any other traffic.
"""

from __future__ import annotations

import random

from repro.db.sql.render import render_literal
from repro.workloads.tpch.dbgen import TPCHGenerator


def insert_statements(generator: TPCHGenerator, count: int,
                      start_key: int) -> list[str]:
    """``count`` single-row INSERTs of fresh orders starting at
    ``start_key`` (keys must be beyond the loaded range)."""
    rng = random.Random(generator.config.seed + 1000)
    statements = []
    for offset in range(count):
        row = generator.order_row(start_key + offset, rng)
        values = ", ".join(render_literal(value) for value in row)
        statements.append(f"INSERT INTO orders VALUES ({values})")
    return statements


def update_statements(generator: TPCHGenerator, count: int,
                      span: int = 5) -> list[str]:
    """``count`` UPDATEs bumping order totals over small key ranges.

    Ranges are evenly spread and non-overlapping, so each statement's
    reenactment query touches a distinct set of pre-state tuples (and,
    like TPC-H's refresh functions, hits more than one row per
    statement).
    """
    n_orders = generator.config.n_orders
    step = max(span, n_orders // max(count, 1))
    statements = []
    for index in range(count):
        low = 1 + (index * step) % max(n_orders - span, 1)
        high = low + span - 1
        statements.append(
            "UPDATE orders SET o_totalprice = o_totalprice * 1.01 "
            f"WHERE o_orderkey BETWEEN {low} AND {high}")
    return statements
