"""LDV monitoring (paper Section VII).

* :mod:`repro.monitor.ptu` — the PTU-style OS monitor: consumes
  syscall events from the virtual OS's tracer and builds the P_BB half
  of the combined execution trace,
* :mod:`repro.monitor.dbmonitor` — the instrumented-client DB monitor:
  intercepts every statement at the client library, retrieves its
  provenance (Perm provenance queries / GProM reenactment), maintains
  tuple versioning, collects the relevant tuple versions, and records
  the replay log for server-excluded packaging,
* :mod:`repro.monitor.session` — :class:`AuditSession`, which wires
  both monitors into one combined execution trace for an application
  run.
"""

from repro.monitor.ptu import PTUMonitor
from repro.monitor.dbmonitor import DBMonitor, RelevantTupleStore, ReplayLog
from repro.monitor.session import AuditSession

__all__ = [
    "PTUMonitor",
    "DBMonitor",
    "RelevantTupleStore",
    "ReplayLog",
    "AuditSession",
]
