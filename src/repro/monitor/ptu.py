"""PTU-style OS provenance monitoring (paper Section VII-A).

:class:`PTUMonitor` is a :class:`repro.vos.ptrace.Tracer`: attached to
a virtual OS it turns the syscall stream into the P_BB half of a
combined execution trace:

* ``fork``/``execve`` → process activities and ``executed`` edges
  (point intervals — fork is treated as instantaneous, as in VII-A),
* ``open``..``close`` → ``readFrom`` / ``hasWritten`` edges whose
  interval spans first open to last close (re-opens widen the single
  edge, matching the paper's one-interval-per-interaction design),
* the executed binary itself is recorded as a file read at exec time.

The monitor also keeps the bookkeeping packaging needs: every path
read (with the binary dependencies) and every path written.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.provenance.combined import TraceBuilder
from repro.provenance.interval import TimeInterval
from repro.vos.ptrace import Tracer
from repro.vos.syscalls import SyscallEvent, SyscallName

_READ_MODES = frozenset({"r", "rb"})


@dataclass
class _OpenFile:
    path: str
    mode: str
    opened_at: int
    last_activity: int


class PTUMonitor(Tracer):
    """Builds OS provenance from the syscall stream."""

    def __init__(self, builder: TraceBuilder) -> None:
        self.builder = builder
        self._open_files: dict[tuple[int, int], _OpenFile] = {}
        self.read_paths: set[str] = set()
        self.written_paths: set[str] = set()
        self.binary_paths: set[str] = set()
        self.monitored_pids: set[int] = set()
        self.connected_servers: set[str] = set()
        self.syscall_count = 0

    # -- tracer interface ----------------------------------------------------------

    def on_syscall(self, event: SyscallEvent) -> None:
        self.syscall_count += 1
        name = event.name
        if name is SyscallName.EXECVE:
            self._on_execve(event)
        elif name is SyscallName.FORK:
            self._on_fork(event)
        elif name is SyscallName.OPEN:
            self._on_open(event)
        elif name in (SyscallName.READ, SyscallName.WRITE):
            self._on_io(event)
        elif name is SyscallName.CLOSE:
            self._on_close(event)
        elif name is SyscallName.EXIT:
            self._on_exit(event)
        elif name is SyscallName.CONNECT:
            # statement-level DB provenance belongs to the DB monitor;
            # PTU only notes which servers the application talked to
            # (packaging must provision a rendezvous for each)
            self.connected_servers.add(event.arg("server"))
        # send/recv are DB traffic; mkdir/unlink/symlink produce no
        # provenance edges in P_BB.

    # -- event handlers ---------------------------------------------------------------

    def _on_execve(self, event: SyscallEvent) -> None:
        pid = event.pid
        binary = event.arg("path", "")
        self.monitored_pids.add(pid)
        self.builder.process(pid, binary.rsplit("/", 1)[-1])
        if binary:
            # the binary is an input file of the process
            self.binary_paths.add(binary)
            self.read_paths.add(binary)
            self.builder.read_from(pid, binary,
                                   TimeInterval.point(event.tick))

    def _on_fork(self, event: SyscallEvent) -> None:
        parent = event.pid
        child = event.arg("child")
        self.monitored_pids.add(parent)
        self.monitored_pids.add(child)
        self.builder.process(parent)
        self.builder.process(child)
        self.builder.executed(parent, child, event.tick)

    def _on_open(self, event: SyscallEvent) -> None:
        fd = event.result
        self._open_files[(event.pid, fd)] = _OpenFile(
            path=event.arg("path"), mode=event.arg("mode", "r"),
            opened_at=event.tick, last_activity=event.tick)

    def _on_io(self, event: SyscallEvent) -> None:
        entry = self._open_files.get((event.pid, event.arg("fd")))
        if entry is not None:
            entry.last_activity = event.tick

    def _on_close(self, event: SyscallEvent) -> None:
        entry = self._open_files.pop((event.pid, event.arg("fd")), None)
        if entry is None:
            return
        interval = TimeInterval(entry.opened_at, event.tick)
        if entry.mode in _READ_MODES:
            self.read_paths.add(entry.path)
            self.builder.read_from(event.pid, entry.path, interval)
        else:
            self.written_paths.add(entry.path)
            self.builder.has_written(event.pid, entry.path, interval)

    def _on_exit(self, event: SyscallEvent) -> None:
        # close any fds the process leaked (the kernel closes them too,
        # emitting close events first, so this is pure defensiveness)
        leaked = [key for key in self._open_files if key[0] == event.pid]
        for key in leaked:
            entry = self._open_files.pop(key)
            interval = TimeInterval(entry.opened_at, event.tick)
            if entry.mode in _READ_MODES:
                self.read_paths.add(entry.path)
                self.builder.read_from(event.pid, entry.path, interval)
            else:
                self.written_paths.add(entry.path)
                self.builder.has_written(event.pid, entry.path, interval)

    # -- packaging queries ------------------------------------------------------------

    def input_paths(self) -> set[str]:
        """Paths the application consumed: everything read, including
        binaries, minus files the application itself created first.

        A file both written and read is an input only if some process
        read it before the first write (otherwise re-execution
        recreates it)."""
        inputs = set()
        for path in self.read_paths:
            if path not in self.written_paths:
                inputs.add(path)
                continue
            first_read = self._first_interaction(path, "readFrom")
            first_write = self._first_interaction(path, "hasWritten")
            if first_read is not None and (
                    first_write is None or first_read < first_write):
                inputs.add(path)
        return inputs

    def _first_interaction(self, path: str, label: str) -> int | None:
        node_id = f"file:{path}"
        if not self.builder.trace.has_node(node_id):
            return None
        ticks = []
        for edge in self.builder.trace.in_edges(node_id):
            if edge.label == label:
                ticks.append(edge.interval.begin)
        for edge in self.builder.trace.out_edges(node_id):
            if edge.label == label:
                ticks.append(edge.interval.begin)
        return min(ticks) if ticks else None
