"""Client-side DB monitoring (paper Sections VII-B and VII-C).

:class:`DBMonitor` interposes on the DB client library (the
:class:`repro.db.client.Interceptor` surface, our libpq) and, per
executed statement:

* assigns a unique query id and links the statement into the combined
  execution trace with a ``run`` edge from the issuing process,
* **provenance mode** (server-included packaging): retrieves the
  statement's provenance — a second, PROVENANCE-rewritten execution of
  queries (Perm), and a pre-state reenactment query for UPDATE / DELETE
  / INSERT...SELECT (GProM) issued *before* the modification runs —
  records hasRead / hasReturned / readFromDB edges with per-result
  Lineage attribution, maintains the versioning marks of Section VII-B,
  and streams relevant tuple versions into a
  :class:`RelevantTupleStore` (with in-memory dedup, as the prototype
  does),
* **record mode** (server-excluded packaging): appends the statement
  and its full wire result to a :class:`ReplayLog`.

Both modes deliberately pay their costs through the same client/server
wire path the application uses, so audit overhead in the benchmarks has
the same shape as the paper's Figure 7a/8a.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Iterable, Optional

from repro.clockwork import LogicalClock
from repro.db import protocol
from repro.db.client import DBClient, Interceptor
from repro.db.engine import Database, StatementResult
from repro.db.provtypes import TupleRef
from repro.db.sql import ast
from repro.db.sql.parser import parse_sql
from repro.db.sql.render import render_select
from repro.db.versioning import VersionManager
from repro.errors import AuditError
from repro.provenance.combined import TraceBuilder
from repro.provenance.interval import TimeInterval
from repro.vos.process import Process

MODE_PROVENANCE = "provenance"
MODE_RECORD = "record"


class RelevantTupleStore:
    """Relevant tuple versions collected during audit.

    Mirrors the prototype: one logical CSV per table, an in-memory
    hash (here a dict) for duplicate elimination.
    """

    def __init__(self) -> None:
        self._tables: dict[str, dict[tuple[int, int], tuple]] = {}

    def add(self, ref: TupleRef, values: tuple) -> bool:
        """Record one tuple version; returns False if already present."""
        table = self._tables.setdefault(ref.table, {})
        key = (ref.rowid, ref.version)
        if key in table:
            return False
        table[key] = values
        return True

    def tables(self) -> list[str]:
        return sorted(self._tables)

    def rows_for(self, table: str) -> list[tuple[int, int, tuple]]:
        """``(rowid, version, values)`` triples, in rowid order."""
        entries = self._tables.get(table, {})
        return [(rowid, version, entries[(rowid, version)])
                for rowid, version in sorted(entries)]

    def refs(self) -> set[TupleRef]:
        return {TupleRef(table, rowid, version)
                for table, entries in self._tables.items()
                for rowid, version in entries}

    @property
    def tuple_count(self) -> int:
        return sum(len(entries) for entries in self._tables.values())


@dataclass
class ReplayLogEntry:
    """One recorded statement with its full wire result.

    ``kind`` records the wire path the statement took ("text",
    "prepared", or "stream"). Prepared and streamed executions are
    recorded under their canonical bound SQL text, so replay matching
    is path-agnostic; the kind is observability metadata. It is
    serialized only when it differs from "text", keeping logs recorded
    by older monitors — and logs of plain text traffic — byte-identical.
    """

    index: int
    sql: str
    provenance: bool
    result_frame: dict[str, Any]
    kind: str = "text"

    def to_json(self) -> dict[str, Any]:
        data = {"index": self.index, "sql": self.sql,
                "provenance": self.provenance,
                "result": self.result_frame}
        if self.kind != "text":
            data["kind"] = self.kind
        return data

    @classmethod
    def from_json(cls, data: dict[str, Any]) -> "ReplayLogEntry":
        return cls(data["index"], data["sql"], data["provenance"],
                   data["result"], data.get("kind", "text"))


class ReplayLog:
    """The ordered statement/result log of a server-excluded package."""

    def __init__(self) -> None:
        self.entries: list[ReplayLogEntry] = []

    def append(self, sql: str, provenance: bool,
               result: StatementResult,
               kind: str = "text") -> ReplayLogEntry:
        entry = ReplayLogEntry(len(self.entries), sql, provenance,
                               protocol.result_to_wire(result), kind)
        self.entries.append(entry)
        return entry

    def to_jsonl(self) -> str:
        return "".join(json.dumps(entry.to_json(), separators=(",", ":"))
                       + "\n" for entry in self.entries)

    @classmethod
    def from_jsonl(cls, text: str) -> "ReplayLog":
        log = cls()
        for line in text.splitlines():
            if line.strip():
                log.entries.append(ReplayLogEntry.from_json(json.loads(line)))
        return log

    def __len__(self) -> int:
        return len(self.entries)


_STATEMENT_TYPE = {
    ast.Select: "query",
    ast.SetOp: "query",  # UNION chains are queries
    ast.Insert: "insert",
    ast.Update: "update",
    ast.Delete: "delete",
    ast.CopyFrom: "insert",  # bulk load creates tuples
}


class DBMonitor:
    """Shared state of DB-side monitoring for one audited run."""

    def __init__(self, builder: TraceBuilder, mode: str,
                 database: Database | None = None,
                 clock: "LogicalClock | None" = None) -> None:
        if mode not in (MODE_PROVENANCE, MODE_RECORD):
            raise AuditError(f"unknown DB monitoring mode {mode!r}")
        if mode == MODE_PROVENANCE and database is None:
            raise AuditError(
                "provenance mode needs access to the server database")
        self.builder = builder
        self.mode = mode
        self.database = database
        if clock is None:
            clock = database.clock if database is not None else LogicalClock()
        self.clock = clock
        self.versions = (VersionManager(database)
                         if database is not None else None)
        self.relevant = RelevantTupleStore()
        self.replay_log = ReplayLog()
        self.created_refs: set[TupleRef] = set()
        # files the *server* read on the application's behalf
        # (COPY ... FROM): ptrace on the client processes cannot see
        # them, so the client-side monitor must flag them as inputs
        self.copy_input_paths: set[str] = set()
        self.statement_count = 0
        self.provenance_queries_run = 0

    # -- wiring -------------------------------------------------------------------

    def interceptor_for(self, process: Process) -> Interceptor:
        """The per-client interceptor (bound to the issuing process)."""
        return _MonitorInterceptor(self, process)

    def next_statement_id(self) -> str:
        self.statement_count += 1
        return f"q{self.statement_count}"

    # -- provenance-mode helpers ------------------------------------------------------

    def record_relevant(self, refs: Iterable[TupleRef],
                        rows: Iterable[tuple] | None = None) -> int:
        """Add tuple versions to the relevant store, excluding versions
        the application itself created (Section II / VII-D). Returns
        the number of new entries."""
        added = 0
        refs = list(refs)
        if rows is None:
            rows = [self._current_values(ref) for ref in refs]
        for ref, values in zip(refs, rows):
            if ref in self.created_refs:
                continue
            if ref.table.startswith("_result"):
                continue  # synthetic query-result entities
            if self.relevant.add(ref, values):
                added += 1
        return added

    def _current_values(self, ref: TupleRef) -> tuple:
        assert self.database is not None
        return self.database.catalog.get_table(ref.table).get(ref.rowid)


class _MonitorInterceptor(Interceptor):
    """Interceptor attached to one client connection."""

    def __init__(self, monitor: DBMonitor, process: Process) -> None:
        self.monitor = monitor
        self.process = process
        self._guard = False  # suppress recursion for our own queries
        self._parsed: Optional[tuple[str, ast.Statement]] = None
        self._pending_reenactment: Optional[tuple[list[TupleRef],
                                                  list[tuple]]] = None

    # -- hooks ---------------------------------------------------------------------

    def before_execute(self, client: DBClient, sql: str,
                       provenance: bool) -> Optional[StatementResult]:
        if self._guard or self.monitor.mode != MODE_PROVENANCE:
            return None
        statement = self._parse_single(sql)
        self._parsed = (sql, statement)  # reused by after_execute
        reenact_query = self._reenactment_query(statement)
        if reenact_query is not None:
            # GProM reenactment: retrieve the modification's provenance
            # BEFORE executing it (Section VII-B, first problem)
            self._guard = True
            try:
                pre = client.execute(render_select(reenact_query),
                                     provenance=True)
            finally:
                self._guard = False
            self.monitor.provenance_queries_run += 1
            refs: list[TupleRef] = []
            rows: list[tuple] = []
            for row, lineage in zip(pre.rows, pre.lineages):
                for ref in lineage:
                    refs.append(ref)
                    rows.append(row)
            self._pending_reenactment = (refs, rows)
        return None

    def after_execute(self, client: DBClient, sql: str,
                      provenance: bool, result: StatementResult) -> None:
        if self._guard:
            return
        if self._parsed is not None and self._parsed[0] == sql:
            statement: ast.Statement | None = self._parsed[1]
        else:
            try:
                statement = self._parse_single(sql)
            except Exception:
                statement = None
        self._parsed = None
        if statement is not None:
            self._note_copy_input(statement)
        if self.monitor.mode == MODE_RECORD:
            self.monitor.replay_log.append(
                sql, provenance, result,
                kind=getattr(client, "last_execution_path", "text"))
            if statement is not None:
                self._record_statement_node(statement, sql, result)
            return
        if statement is not None:
            self._provenance_after(client, statement, sql, result)

    def _note_copy_input(self, statement: ast.Statement) -> None:
        if isinstance(statement, ast.CopyFrom):
            self.monitor.copy_input_paths.add(statement.path)
            # conservative P_BB attribution: the issuing process read
            # the file (through the server)
            self.monitor.builder.read_from(
                self.process.pid, statement.path,
                TimeInterval.point(self.monitor.clock.now))

    # -- provenance mode ---------------------------------------------------------------

    def _provenance_after(self, client: DBClient,
                          statement: ast.Statement, sql: str,
                          result: StatementResult) -> None:
        statement_type = _STATEMENT_TYPE.get(type(statement))
        if statement_type is None:
            return  # DDL / txn control: no P_Lin activity
        monitor = self.monitor
        builder = monitor.builder
        statement_id = monitor.next_statement_id()
        node = builder.statement(statement_id, statement_type, sql=sql)
        builder.run(self.process.pid, node,
                    TimeInterval.point(monitor.clock.now))

        if monitor.versions is not None and result.source_tables:
            monitor.versions.ensure_enabled(
                table for table in result.source_tables
                if monitor.database.catalog.has_table(table))

        if statement_type == "query":
            self._handle_query(client, sql, result, node, statement_id)
        else:
            self._handle_modification(result, node, statement_id)

    def _handle_query(self, client: DBClient, sql: str,
                      result: StatementResult, node: str,
                      statement_id: str) -> None:
        monitor = self.monitor
        builder = monitor.builder
        # Perm: re-execute the query in PROVENANCE mode over the wire
        self._guard = True
        try:
            prov = client.execute(sql, provenance=True)
        finally:
            self._guard = False
        monitor.provenance_queries_run += 1
        if len(prov.rows) != len(result.rows):
            raise AuditError(
                "provenance query returned a different result "
                f"({len(prov.rows)} vs {len(result.rows)} rows)")
        tick = monitor.clock.now
        all_read: dict[TupleRef, None] = {}
        for index, (row, lineage) in enumerate(
                zip(prov.rows, prov.lineages)):
            for ref in lineage:
                all_read.setdefault(ref, None)
            result_ref = TupleRef(f"_result_{statement_id}", index + 1, tick)
            builder.has_returned(node, result_ref, tick, lineage)
            builder.read_from_db(self.process.pid, result_ref, tick)
        for ref in all_read:
            builder.has_read(node, ref, tick)
        # versioning marks + relevant tuple collection
        if monitor.versions is not None:
            monitor.versions.mark_used(all_read, statement_id,
                                       str(self.process.pid))
        monitor.record_relevant(all_read)

    def _handle_modification(self, result: StatementResult, node: str,
                             statement_id: str) -> None:
        monitor = self.monitor
        builder = monitor.builder
        tick = monitor.clock.now
        pre_refs: list[TupleRef] = []
        pre_rows: list[tuple] = []
        if self._pending_reenactment is not None:
            pre_refs, pre_rows = self._pending_reenactment
            self._pending_reenactment = None
        for ref in pre_refs:
            builder.has_read(node, ref, tick)
        for new_ref in result.written:
            lineage = result.written_lineage.get(new_ref, frozenset())
            builder.has_returned(node, new_ref, tick, lineage)
            monitor.created_refs.add(new_ref)
        for old_ref in result.deleted:
            builder.has_read(node, old_ref, tick)
        if monitor.versions is not None and pre_refs:
            monitor.versions.mark_used(pre_refs, statement_id,
                                       str(self.process.pid))
        if pre_refs:
            monitor.record_relevant(pre_refs, pre_rows)
        if result.deleted:
            # deleted rows' values are gone post-execution; reenactment
            # captured them in pre_rows already (same refs)
            pass

    # -- record mode --------------------------------------------------------------------

    def _record_statement_node(self, statement: ast.Statement, sql: str,
                               result: StatementResult) -> None:
        statement_type = _STATEMENT_TYPE.get(type(statement))
        if statement_type is None:
            return
        monitor = self.monitor
        statement_id = monitor.next_statement_id()
        node = monitor.builder.statement(statement_id, statement_type,
                                         sql=sql)
        monitor.builder.run(self.process.pid, node,
                            TimeInterval.point(monitor.clock.now))

    # -- helpers ------------------------------------------------------------------------

    @staticmethod
    def _parse_single(sql: str) -> ast.Statement:
        statements = parse_sql(sql)
        if len(statements) != 1:
            raise AuditError("client sent a multi-statement string")
        return statements[0]

    @staticmethod
    def _reenactment_query(statement: ast.Statement) -> Optional[ast.Select]:
        """The pre-state provenance query for a modification, or None
        when no reenactment is needed (plain INSERT ... VALUES)."""
        if isinstance(statement, (ast.Update, ast.Delete)):
            return ast.Select(
                items=(ast.SelectItem(ast.Star()),),
                sources=(ast.TableRef(statement.table),),
                where=statement.where)
        if isinstance(statement, ast.Insert) and statement.query is not None:
            return statement.query
        return None
