"""The audit session: one monitored application run (Section VII-C).

:class:`AuditSession` wires the PTU OS monitor and the DB client
monitor onto a :class:`repro.vos.kernel.VirtualOS` and collects one
combined execution trace plus everything packaging needs. Use it as a
context manager around the application run::

    with AuditSession(vos, mode="server-included",
                      database=server.database) as session:
        vos.run("/bin/app")
    trace = session.trace

Modes:

* ``server-included`` — full DB provenance monitoring (Perm provenance
  queries, reenactment, versioning, relevant-tuple collection),
* ``server-excluded`` — statement/result recording for replay,
* ``os-only`` — PTU baseline: OS monitoring only, no DB
  instrumentation (the paper's "PostgreSQL + PTU" configuration).
"""

from __future__ import annotations

from typing import Optional

from repro.db.client import DBClient
from repro.db.engine import Database
from repro.errors import AuditError
from repro.monitor.dbmonitor import (
    DBMonitor,
    MODE_PROVENANCE,
    MODE_RECORD,
    RelevantTupleStore,
    ReplayLog,
)
from repro.monitor.ptu import PTUMonitor
from repro.provenance.combined import TraceBuilder
from repro.provenance.trace import ExecutionTrace
from repro.vos.kernel import VirtualOS
from repro.vos.process import Process

SERVER_INCLUDED = "server-included"
SERVER_EXCLUDED = "server-excluded"
OS_ONLY = "os-only"

_MODES = (SERVER_INCLUDED, SERVER_EXCLUDED, OS_ONLY)


class AuditSession:
    """Monitors everything that runs on the virtual OS while active."""

    def __init__(self, vos: VirtualOS, mode: str = SERVER_INCLUDED,
                 database: Database | None = None) -> None:
        if mode not in _MODES:
            raise AuditError(f"unknown audit mode {mode!r}; "
                             f"pick one of {_MODES}")
        if mode == SERVER_INCLUDED and database is None:
            raise AuditError(
                "server-included auditing needs the server database "
                "(the user must have access to the server, Section "
                "VII-D)")
        self.vos = vos
        self.mode = mode
        self.database = database
        self.builder = TraceBuilder()
        self.ptu = PTUMonitor(self.builder)
        self.db_monitor: Optional[DBMonitor] = None
        if mode == SERVER_INCLUDED:
            self.db_monitor = DBMonitor(self.builder, MODE_PROVENANCE,
                                        database, clock=vos.clock)
        elif mode == SERVER_EXCLUDED:
            self.db_monitor = DBMonitor(self.builder, MODE_RECORD,
                                        database, clock=vos.clock)
        self._active = False

    # -- lifecycle --------------------------------------------------------------

    def __enter__(self) -> "AuditSession":
        if self._active:
            raise AuditError("audit session already active")
        self._active = True
        self.vos.attach_tracer(self.ptu)
        if self.db_monitor is not None:
            self.vos.client_decorators.append(self._decorate_client)
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.vos.detach_tracer(self.ptu)
        if self.db_monitor is not None:
            self.vos.client_decorators.remove(self._decorate_client)
        self._active = False

    def _decorate_client(self, client: DBClient, process: Process) -> None:
        assert self.db_monitor is not None
        client.add_interceptor(self.db_monitor.interceptor_for(process))

    # -- results ------------------------------------------------------------------

    @property
    def trace(self) -> ExecutionTrace:
        """The combined execution trace built so far."""
        return self.builder.trace

    @property
    def relevant_tuples(self) -> RelevantTupleStore:
        if self.db_monitor is None:
            return RelevantTupleStore()
        return self.db_monitor.relevant

    @property
    def replay_log(self) -> ReplayLog:
        if self.db_monitor is None:
            return ReplayLog()
        return self.db_monitor.replay_log

    @property
    def created_refs(self) -> set:
        if self.db_monitor is None:
            return set()
        return set(self.db_monitor.created_refs)

    def input_paths(self) -> set[str]:
        """Files the application consumed (for packaging): everything
        its processes read, plus files the DB server bulk-loaded on
        its behalf (COPY ... FROM)."""
        paths = self.ptu.input_paths()
        if self.db_monitor is not None:
            paths |= self.db_monitor.copy_input_paths
        return paths
