"""The provenance models, hands-on (Sections IV–VI of the paper).

Rebuilds the paper's worked examples as live objects:

* the combined execution trace of Figure 2,
* the blackbox dependencies of Figure 4 and their temporal pruning
  (Example 7),
* the three temporal variants of Figure 6 (Example 8),
* a PROV-JSON export of the combined trace.

Run:  python examples/provenance_inference.py
"""

import json

from repro.db.provtypes import TupleRef
from repro.provenance import (
    DependencyInference,
    TimeInterval,
    TraceBuilder,
    bb_dependencies,
)
from repro.provenance.prov_export import trace_to_prov


def build_figure2():
    """Processes P1, P2; files A, B, C; tuples t1..t5 (Figure 2)."""
    builder = TraceBuilder()
    builder.process(1, "P1")
    builder.process(2, "P2")
    builder.read_from(1, "/A", TimeInterval(1, 6))
    builder.read_from(1, "/B", TimeInterval(7, 8))
    insert1 = builder.statement("insert1", "insert")
    builder.run(1, insert1, TimeInterval.point(5))
    builder.has_returned(insert1, TupleRef("db", 1, 5), 5)
    builder.has_returned(insert1, TupleRef("db", 2, 5), 5)
    insert2 = builder.statement("insert2", "insert")
    builder.run(1, insert2, TimeInterval.point(8))
    builder.has_returned(insert2, TupleRef("db", 3, 8), 8)
    query = builder.statement("query", "query")
    builder.run(2, query, TimeInterval.point(9))
    builder.has_read(query, TupleRef("db", 1, 5), 9)
    builder.has_read(query, TupleRef("db", 3, 8), 9)
    builder.has_returned(query, TupleRef("db", 4, 9), 9,
                         [TupleRef("db", 1, 5)])
    builder.has_returned(query, TupleRef("db", 5, 9), 9,
                         [TupleRef("db", 3, 8)])
    builder.read_from_db(2, TupleRef("db", 4, 9), 9)
    builder.read_from_db(2, TupleRef("db", 5, 9), 9)
    builder.has_written(2, "/C", TimeInterval(7, 12))
    return builder.trace


def main() -> None:
    print("== Figure 2: the combined execution trace ==")
    trace = build_figure2()
    print(f"nodes: {trace.node_count}, edges: {trace.edge_count}")
    inference = DependencyInference(trace)
    deps = inference.dependencies_of("file:/C")
    print("file C depends on:")
    for node_id in sorted(deps):
        print(f"  {node_id}")
    assert "tuple:db:1:v5" in deps     # t1 flows through the query
    assert "tuple:db:2:v5" not in deps  # t2 was never read (Section II)

    print("\n== Figure 4 + Example 7: temporal pruning ==")
    builder = TraceBuilder()
    builder.process(1, "P1")
    builder.read_from(1, "/A", TimeInterval(1, 5))
    builder.read_from(1, "/B", TimeInterval(7, 8))
    builder.has_written(1, "/C", TimeInterval(2, 3))
    builder.has_written(1, "/D", TimeInterval(8, 8))
    raw = bb_dependencies(builder.trace)
    print(f"raw blackbox dependencies (Def 8): {len(raw)} pairs")
    inference = DependencyInference(builder.trace)
    print(f"C depends on A? {inference.depends_on('file:/C', 'file:/A')}")
    print(f"C depends on B? {inference.depends_on('file:/C', 'file:/B')}"
          "   <- pruned: C was written before P1 read B")

    print("\n== Figure 6 / Example 8: three temporal variants ==")
    for label, intervals, expected in (
            ("6a", [(2, 3), (6, 7), (1, 5), (6, 6)], False),
            ("6b", [(1, 1), (4, 7), (2, 5), (1, 6)], True),
            ("6c", [(9, 9), (4, 7), (5, 5), (5, 6)], False)):
        builder = TraceBuilder()
        builder.process(1, "P1")
        builder.process(2, "P2")
        i1, i2, i3, i4 = [TimeInterval(*pair) for pair in intervals]
        builder.read_from(1, "/A", i1)
        builder.has_written(1, "/B", i2)
        builder.read_from(2, "/B", i3)
        builder.has_written(2, "/C", i4)
        inference = DependencyInference(builder.trace)
        answer = inference.depends_on("file:/C", "file:/A")
        print(f"trace {label}: C depends on A? {answer}")
        assert answer is expected

    print("\n== PROV-JSON export of the Figure 2 trace ==")
    document = trace_to_prov(build_figure2(), include_dependencies=True)
    counts = {section: len(records)
              for section, records in document.items()
              if isinstance(records, dict) and section != "prefix"}
    print(json.dumps(counts, indent=2))


if __name__ == "__main__":
    main()
