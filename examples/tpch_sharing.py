"""Sharing a TPC-H experiment: LDV vs PTU vs a virtual machine.

Runs the paper's Section IX-A application (Insert / Select / Update
over TPC-H) and builds all three package kinds, then compares package
sizes and re-execution behaviour — a miniature of Figures 7b/9 and
Table III.

Run:  python examples/tpch_sharing.py
"""

import tempfile
import time
from pathlib import Path

from repro.baselines import VMIModel, build_ptu_package
from repro.core import ldv_audit, ldv_exec
from repro.core.package import Package
from repro.workloads.app import APP_BINARY, build_world
from repro.workloads.tpch.dbgen import TPCHConfig
from repro.workloads.tpch.queries import variant_by_id


def megabytes(count: int) -> str:
    return f"{count / 1_000_000:.2f} MB"


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="ldv-tpch-"))
    config = TPCHConfig(scale_factor=0.001)
    variant = variant_by_id(config, "Q1-1")
    print(f"workload: {variant.query_id}  {variant.sql[:70]}...")

    packages = {}
    for kind in ("ptu", "included", "excluded"):
        world = build_world(scale_factor=0.001, variant=variant,
                            insert_count=100, update_count=20,
                            data_dir=workdir / f"pgdata-{kind}")
        out = workdir / f"pkg-{kind}"
        if kind == "ptu":
            build_ptu_package(world.vos, APP_BINARY, out, world.database,
                              world.server_name,
                              world.server_binary_paths, ["10"])
        else:
            mode = ("server-included" if kind == "included"
                    else "server-excluded")
            ldv_audit(world.vos, APP_BINARY, out, mode=mode, argv=["10"],
                      database=world.database,
                      server_name=world.server_name,
                      server_binary_paths=world.server_binary_paths)
        packages[kind] = (out, world)

    print("\n== package sizes (Fig 9) ==")
    sizes = {}
    for kind, (out, _world) in packages.items():
        package = Package.load(out)
        sizes[kind] = package.total_bytes()
        breakdown = ", ".join(
            f"{component}={megabytes(count)}"
            for component, count in sorted(package.breakdown().items()))
        print(f"{kind:>9}: {megabytes(sizes[kind]):>10}   ({breakdown})")
    vmi = VMIModel()
    world = packages["included"][1]
    image = vmi.image_bytes(
        server_bytes=sum(world.vos.fs.size_of(path)
                         for path in world.server_binary_paths),
        data_bytes=world.database.catalog.data_directory.total_bytes())
    print(f"{'vmi':>9}: {megabytes(image):>10}   (base OS image + server "
          f"+ data; {image / sizes['included']:.0f}x server-included)")

    print("\n== package contents (Table III) ==")
    for kind, (out, _world) in packages.items():
        summary = Package.load(out).contents_summary()
        data = ("full" if summary["full_data_files"]
                else "empty" if summary["empty_data_dir"] else "none")
        print(f"{kind:>9}: server={summary['db_server']!s:5} "
              f"data={data:5} provenance={summary['db_provenance']}")

    print("\n== re-execution (Fig 7b flavour) ==")
    for kind, (out, world) in packages.items():
        start = time.perf_counter()
        result = ldv_exec(out, world.registry,
                          scratch_dir=workdir / f"scratch-{kind}")
        elapsed = time.perf_counter() - start
        original = world.vos.fs.read_file("/data/results.txt")
        match = result.outputs["/data/results.txt"] == original
        print(f"{kind:>9}: {elapsed:6.3f}s  restored={result.restored_tuples:6d} "
              f"tuples  replayed={result.replayed_statements:4d} stmts  "
              f"output match={match}")
        assert match


if __name__ == "__main__":
    main()
