"""Alice's halo finder — the running example of the paper (Fig 1).

Alice runs a two-process pipeline: P1 clusters a simulation snapshot
into candidate halos and inserts them into a sky-survey database; P2
joins the candidates against the (pre-existing) observation catalogue
and writes the confirmed halos to a file. She shares the run with Bob,
who:

(i)   re-executes the whole pipeline,
(ii)  re-executes only P2 (partial re-execution),
(iii) inspects the provenance: which observation tuples does the
      result file actually depend on?

Run:  python examples/halo_finder.py
"""

import tempfile
from pathlib import Path

from repro.core import ldv_audit, ldv_exec
from repro.core.replay import ReplaySession
from repro.provenance import DependencyInference
from repro.workloads import halos


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="ldv-halos-"))
    world = halos.build_world(n_particles=600, n_observations=800)

    print("== Alice audits her pipeline ==")
    report = ldv_audit(
        world.vos, halos.PIPELINE_BINARY, workdir / "package",
        mode="server-included", database=world.database,
        server_name=world.server_name,
        server_binary_paths=world.server_binary_paths)
    original = world.vos.fs.read_text(halos.RESULT_FILE)
    halo_count = len(original.splitlines()) - 1
    print(f"confirmed halos            : {halo_count}")
    print(f"observation tuples in DB   : {world.n_observations}")
    print(f"tuple versions in package  : {report.packaging.tuple_count} "
          "(only the observations the join touched)")
    print(f"package size               : {report.package_bytes} bytes")

    print("\n== (iii) provenance: what does the result depend on? ==")
    inference = DependencyInference(report.session.trace)
    deps = inference.dependencies_of(f"file:{halos.RESULT_FILE}")
    observation_deps = sorted(
        d for d in deps if d.startswith("tuple:observations"))
    file_deps = sorted(d for d in deps if d.startswith("file:"))
    print(f"depends on {len(observation_deps)} observation tuple "
          f"versions, e.g. {observation_deps[:3]}")
    print(f"depends on files: {file_deps}")
    assert f"file:{halos.SIMULATION_FILE}" in deps

    print("\n== (i) Bob re-executes the whole pipeline ==")
    result = ldv_exec(workdir / "package", world.registry,
                      scratch_dir=workdir / "scratch-full")
    assert result.outputs[halos.RESULT_FILE].decode() == original
    print("full replay reproduced the result file exactly "
          f"({result.restored_tuples} tuples restored first)")

    print("\n== (ii) Bob re-executes only P2 (the matcher) ==")
    session = ReplaySession(workdir / "package", world.registry,
                            scratch_dir=workdir / "scratch-partial")
    session.prepare()
    # P1 has not run in this world, so the candidates table is empty —
    # Bob first re-runs P1 to regenerate them, then iterates on P2
    session.run(halos.HALO_FINDER_BINARY, [])
    partial = session.run(halos.MATCHER_BINARY, [])
    assert partial.outputs[halos.RESULT_FILE].decode() == original
    print("P1 + P2 partial runs reproduced the result; Bob can now "
          "swap in his own matcher against the same restored state.")


if __name__ == "__main__":
    main()
