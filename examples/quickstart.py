"""Quickstart: audit a DB application, package it, re-execute it.

Builds a tiny world — a database server, an input file, and an
application that reads the file, queries and updates the database, and
writes a report — then:

1. audits the run with ``ldv_audit`` (server-included),
2. re-executes the package with ``ldv_exec`` on a fresh virtual OS,
3. checks the replayed output equals the original byte-for-byte.

Run:  python examples/quickstart.py
"""

import tempfile
from pathlib import Path

from repro import Database, DBServer, VirtualOS, ldv_audit, ldv_exec


def app(ctx):
    """The application Alice wants to share."""
    threshold = float(ctx.read_text("/data/threshold.txt"))
    client = ctx.connect_db("main")
    client.execute("INSERT INTO sales VALUES (100, 42.0, 'quickstart')")
    (total,) = client.execute(
        f"SELECT sum(price) FROM sales WHERE price > {threshold}"
    ).rows[0]
    client.execute("UPDATE sales SET region = 'seen' WHERE price > 12")
    client.close()
    ctx.write_file("/data/report.txt", f"total above threshold: {total}\n")
    return 0


def build_world():
    vos = VirtualOS()
    database = Database(clock=vos.clock)
    database.execute(
        "CREATE TABLE sales (id integer PRIMARY KEY, price float, "
        "region text)")
    database.execute(
        "INSERT INTO sales VALUES (1, 5, 'east'), (2, 11, 'west'), "
        "(3, 14, 'west'), (4, 2, 'north')")
    vos.register_db_server("main", DBServer(database).transport())
    vos.fs.write_file("/data/threshold.txt", "10\n", create_parents=True)
    vos.fs.write_file("/usr/lib/dbms/postgres",
                      b"\x7fELF postgres" + b"\0" * 65536,
                      create_parents=True)
    vos.register_program("/bin/app", app)
    return vos, database


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="ldv-quickstart-"))
    vos, database = build_world()

    print("== audit (server-included) ==")
    report = ldv_audit(
        vos, "/bin/app", workdir / "package",
        mode="server-included", database=database, server_name="main",
        server_binary_paths=["/usr/lib/dbms/postgres"])
    original = vos.fs.read_text("/data/report.txt")
    print(f"application exit code : {report.process.exit_code}")
    print(f"original output       : {original.strip()}")
    print(f"package               : {report.package_path}")
    print(f"package size          : {report.package_bytes} bytes")
    print(f"relevant tuples shipped: {report.packaging.tuple_count} "
          f"(of {database.query('SELECT count(*) FROM sales')[0][0]} "
          "in the DB — app-created rows are excluded)")

    print("\n== re-execute on a fresh machine ==")
    result = ldv_exec(workdir / "package", {"/bin/app": app},
                      scratch_dir=workdir / "scratch")
    replayed = result.outputs["/data/report.txt"].decode()
    print(f"replayed output       : {replayed.strip()}")
    print(f"restored tuples       : {result.restored_tuples}")
    assert replayed == original, "replay must reproduce the original!"
    print("\nreplay reproduced the original output exactly.")


if __name__ == "__main__":
    main()
