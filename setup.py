"""Legacy setup shim.

This environment has no network access and no ``wheel`` package, so
PEP 660 editable installs (which need ``bdist_wheel``) cannot run.
Keeping a ``setup.py`` beside ``pyproject.toml`` lets
``pip install -e .`` fall back to the classic ``setup.py develop``
code path, which works offline.
"""

from setuptools import setup

setup()
