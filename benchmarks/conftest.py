"""Shared infrastructure for the experiment benchmarks (Section IX).

Environment knobs:

* ``REPRO_BENCH_SF``      — TPC-H scale factor (default 0.002),
* ``REPRO_BENCH_INSERTS`` — Insert-step statement count (default 100;
  the paper uses 1000 at SF 1),
* ``REPRO_BENCH_UPDATES`` — Update-step statement count (default 20;
  paper: 100),
* ``REPRO_BENCH_SELECTS`` — Select-step repetitions (default 10, as in
  the paper).

Every test records rows into the session-wide :class:`Report`; the
formatted paper-style tables are printed in the terminal summary and
written to ``benchmarks/results/``.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from pathlib import Path

import pytest

from repro.core import ldv_audit
from repro.baselines import build_ptu_package
from repro.workloads.app import (
    APP_BINARY,
    INSERT_BINARY,
    QUERY_FILE,
    SELECT_BINARY,
    UPDATE_BINARY,
    build_world,
)
from repro.workloads.tpch.dbgen import TPCHConfig
from repro.workloads.tpch.queries import table2_variants

BENCH_SF = float(os.environ.get("REPRO_BENCH_SF", "0.001"))
BENCH_INSERTS = int(os.environ.get("REPRO_BENCH_INSERTS", "100"))
BENCH_UPDATES = int(os.environ.get("REPRO_BENCH_UPDATES", "20"))
BENCH_SELECTS = int(os.environ.get("REPRO_BENCH_SELECTS", "10"))

BENCH_CONFIG = TPCHConfig(scale_factor=BENCH_SF)
ALL_VARIANTS = table2_variants(BENCH_CONFIG)
VARIANT_IDS = [variant.query_id for variant in ALL_VARIANTS]

RESULTS_DIR = Path(__file__).parent / "results"


def timed(fn, *args, **kwargs):
    """Run ``fn`` once, returning (seconds, result)."""
    start = time.perf_counter()
    result = fn(*args, **kwargs)
    return time.perf_counter() - start, result


# ---------------------------------------------------------------------------
# report collection
# ---------------------------------------------------------------------------


@dataclass
class Report:
    """Collects experiment rows; rendered at session end."""

    tables: dict[str, list[tuple]] = field(default_factory=dict)
    headers: dict[str, tuple] = field(default_factory=dict)

    def add(self, figure: str, header: tuple, row: tuple) -> None:
        self.headers[figure] = header
        self.tables.setdefault(figure, []).append(row)

    def render(self, figure: str) -> str:
        header = self.headers[figure]
        rows = self.tables[figure]
        widths = [max(len(str(header[i])),
                      *(len(_cell(row[i])) for row in rows))
                  for i in range(len(header))]
        lines = [f"== {figure} =="]
        lines.append("  ".join(str(h).ljust(widths[i])
                               for i, h in enumerate(header)))
        for row in rows:
            lines.append("  ".join(_cell(cell).ljust(widths[i])
                                   for i, cell in enumerate(row)))
        return "\n".join(lines)

    def render_all(self) -> str:
        return "\n\n".join(self.render(figure)
                           for figure in sorted(self.tables))


def _cell(value) -> str:
    if isinstance(value, float):
        return f"{value:.4f}"
    return str(value)


_REPORT = Report()


@pytest.fixture(scope="session")
def report() -> Report:
    return _REPORT


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _REPORT.tables:
        return
    text = _REPORT.render_all()
    terminalreporter.write_line("")
    terminalreporter.write_line(
        f"LDV experiment report (SF={BENCH_SF}, inserts={BENCH_INSERTS}, "
        f"selects={BENCH_SELECTS}, updates={BENCH_UPDATES})")
    for line in text.splitlines():
        terminalreporter.write_line(line)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "report.txt").write_text(text + "\n")


# ---------------------------------------------------------------------------
# world + package caches
# ---------------------------------------------------------------------------


def fresh_world(tmp_dir: Path, variant=None, with_data_dir: bool = True):
    """Build a benchmark world at the session's scale."""
    return build_world(
        scale_factor=BENCH_SF,
        variant=variant,
        insert_count=BENCH_INSERTS,
        update_count=BENCH_UPDATES,
        data_dir=(tmp_dir / "pgdata") if with_data_dir else None)


class PackageCache:
    """Builds (variant, kind) packages once per session."""

    def __init__(self, base_dir: Path) -> None:
        self.base_dir = base_dir
        self._entries: dict[tuple[str, str], Path] = {}
        self._worlds: dict[tuple[str, str], object] = {}
        self.audit_seconds: dict[tuple[str, str], float] = {}

    def package_dir(self, variant_id: str, kind: str) -> Path:
        return self.base_dir / f"{variant_id}-{kind}"

    def world_for(self, variant_id: str, kind: str):
        return self._worlds[(variant_id, kind)]

    def get(self, variant, kind: str) -> Path:
        """kind: 'included' | 'excluded' | 'ptu'."""
        key = (variant.query_id, kind)
        if key in self._entries:
            return self._entries[key]
        out_dir = self.package_dir(variant.query_id, kind)
        world_dir = self.base_dir / f"world-{variant.query_id}-{kind}"
        world_dir.mkdir(parents=True, exist_ok=True)
        world = fresh_world(world_dir, variant=variant)
        argv = [str(BENCH_SELECTS)]
        if kind == "ptu":
            seconds, _ = timed(
                build_ptu_package, world.vos, APP_BINARY, out_dir,
                world.database, world.server_name,
                world.server_binary_paths, argv)
        elif kind == "included":
            seconds, _ = timed(
                ldv_audit, world.vos, APP_BINARY, out_dir,
                mode="server-included", argv=argv,
                database=world.database, server_name=world.server_name,
                server_binary_paths=world.server_binary_paths)
        elif kind == "excluded":
            seconds, _ = timed(
                ldv_audit, world.vos, APP_BINARY, out_dir,
                mode="server-excluded", argv=argv,
                database=world.database, server_name=world.server_name)
        else:
            raise ValueError(f"unknown package kind {kind!r}")
        self._entries[key] = out_dir
        self._worlds[key] = world
        self.audit_seconds[key] = seconds
        return out_dir


@pytest.fixture(scope="session")
def package_cache(tmp_path_factory) -> PackageCache:
    return PackageCache(tmp_path_factory.mktemp("packages"))


# step-driver helpers shared by fig7/fig8 benchmarks


def run_insert_step(world):
    return world.vos.run(INSERT_BINARY)


def run_select_step(world, repetitions: int):
    return world.vos.run(SELECT_BINARY, [str(repetitions)])


def run_update_step(world):
    return world.vos.run(UPDATE_BINARY)


def set_query(world_or_vos, sql: str) -> None:
    vos = getattr(world_or_vos, "vos", world_or_vos)
    vos.fs.write_file(QUERY_FILE, sql + "\n", create_parents=True)
