"""Serving-layer benchmarks: the wire fast path.

Quantifies the tentpole claims of the high-throughput serving layer:

* **prepared + pipelined point queries** — 8 simulated clients running
  a point-query workload through prepared statements batched into
  pipeline envelopes, vs the same workload sent one text frame at a
  time (every statement parsed and planned from scratch, one round
  trip each),
* **streamed time-to-first-row** — a large scan's first chunk through
  a server-side cursor vs waiting for the fully materialized result.

Records the measured trajectory in ``BENCH_server.json`` at the repo
root (refresh with ``REPRO_BENCH_UPDATE=1``) and gates on it: the fast
path must beat the baseline by ``SPEEDUP_FLOOR`` in-run, and a >30%
throughput regression against the committed numbers fails CI.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.db import Database, DBClient, DBServer

from benchmarks.conftest import timed

BENCH_FILE = Path(__file__).resolve().parent.parent / "BENCH_server.json"

N_CLIENTS = 8
QUERIES_PER_CLIENT = 50
PIPELINE_BATCH = 10
POINT_ROWS = 4_000
SCAN_ROWS = 30_000
STREAM_CHUNK = 64

# the committed file records the real, larger margins; in-run the fast
# path must clear these floors on any machine
SPEEDUP_FLOOR = 2.0
TTFR_FLOOR = 2.0
# CI fails when throughput drops below 70% of the committed trajectory
REGRESSION_FLOOR = 0.7


def _best_of(fn, repeats: int = 3) -> float:
    return min(timed(fn)[0] for _ in range(repeats))


@pytest.fixture(scope="module")
def serving():
    """One server, 8 connected clients, a point-query table with an
    index, and a wide table for the streaming measurement."""
    database = Database()
    database.execute("CREATE TABLE pts (k integer, v text)")
    database.execute("CREATE INDEX pts_k ON pts (k)")
    database.execute("CREATE TABLE wide (a integer, b integer)")
    tick = database.clock.tick()
    pts = database.catalog.get_table("pts")
    for k in range(POINT_ROWS):
        pts.insert((k, f"value-{k:05d}"), tick)
    wide = database.catalog.get_table("wide")
    for a in range(SCAN_ROWS):
        wide.insert((a, a * 7 % 1_000), tick)
    database.execute("SELECT count(*) FROM pts")  # indexes caught up
    server = DBServer(database)
    clients = []
    for i in range(N_CLIENTS):
        client = DBClient(server.transport(), f"bench-{i}", f"pid-{i}")
        client.connect()
        clients.append(client)
    yield server, clients
    for client in clients:
        client.close()


def _client_keys(client_index: int) -> list[int]:
    """Distinct keys per client and per statement, so the text
    baseline's literals vary — every statement is a fresh parse+plan,
    exactly the cost prepared statements amortize."""
    base = client_index * QUERIES_PER_CLIENT
    return [(base + i) % POINT_ROWS for i in range(QUERIES_PER_CLIENT)]


def test_prepared_pipelined_vs_text_baseline(serving, report):
    server, clients = serving
    keys = [_client_keys(i) for i in range(N_CLIENTS)]
    total = N_CLIENTS * QUERIES_PER_CLIENT

    def baseline() -> list:
        # one text frame per statement, clients interleaved round-robin
        server.result_cache.clear()
        rows = []
        for step in range(QUERIES_PER_CLIENT):
            for client, client_keys in zip(clients, keys):
                rows.append(client.query(
                    f"SELECT v FROM pts WHERE k = {client_keys[step]}"))
        return rows

    prepared = [client.prepare("SELECT v FROM pts WHERE k = $1")
                for client in clients]

    def fast() -> list:
        # prepared statements, PIPELINE_BATCH frames per envelope
        server.result_cache.clear()
        handles = []
        for start in range(0, QUERIES_PER_CLIENT, PIPELINE_BATCH):
            for client, statement, client_keys in zip(clients, prepared,
                                                      keys):
                with client.pipeline() as batch:
                    for key in client_keys[start:start + PIPELINE_BATCH]:
                        handles.append(
                            batch.execute_prepared(statement, [key]))
        return [handle.rows() for handle in handles]

    baseline_rows = baseline()
    fast_rows = fast()
    assert sorted(map(tuple, (r[0] for r in baseline_rows))) == \
        sorted(map(tuple, (r[0] for r in fast_rows)))

    baseline_seconds = _best_of(baseline)
    fast_seconds = _best_of(fast)
    speedup = baseline_seconds / max(fast_seconds, 1e-9)
    measured = {
        "clients": N_CLIENTS,
        "queries": total,
        "text_seconds": round(baseline_seconds, 6),
        "fast_seconds": round(fast_seconds, 6),
        "text_queries_per_s": round(total / baseline_seconds),
        "fast_queries_per_s": round(total / fast_seconds),
        "speedup": round(speedup, 2),
    }
    report.add(
        "Serving — prepared+pipelined vs per-frame text (seconds)",
        ("workload", "text", "prepared+pipelined", "speedup"),
        (f"{N_CLIENTS}x{QUERIES_PER_CLIENT} point queries",
         baseline_seconds, fast_seconds, f"{speedup:.2f}x"))

    failures = []
    if speedup < SPEEDUP_FLOOR:
        failures.append(
            f"fast path only {speedup:.2f}x over the text baseline "
            f"(floor {SPEEDUP_FLOOR}x)")
    committed = (json.loads(BENCH_FILE.read_text())
                 if BENCH_FILE.exists() else None)
    if committed is not None:
        baseline_qps = committed["point_queries"]["fast_queries_per_s"]
        ratio = measured["fast_queries_per_s"] / baseline_qps
        if ratio < REGRESSION_FLOOR:
            failures.append(
                f"fast-path throughput fell to {ratio:.0%} of the "
                f"committed {baseline_qps} queries/s "
                f"(floor {REGRESSION_FLOOR:.0%})")

    _update_bench_file("point_queries", measured)
    assert not failures, "; ".join(failures)


def test_streamed_time_to_first_row(serving, report):
    server, clients = serving
    client = clients[0]
    sql = "SELECT a, b FROM wide WHERE b < 900"

    def full() -> int:
        server.result_cache.clear()
        return len(client.execute(sql).rows)

    def first_chunk() -> int:
        cursor = client.execute_stream(sql, fetch_size=STREAM_CHUNK)
        count = len(cursor.fetch())
        cursor.close()
        return count

    total_rows = full()
    assert first_chunk() == STREAM_CHUNK

    full_seconds = _best_of(full)
    ttfr_seconds = _best_of(first_chunk)
    speedup = full_seconds / max(ttfr_seconds, 1e-9)
    measured = {
        "scan_rows": SCAN_ROWS,
        "result_rows": total_rows,
        "chunk": STREAM_CHUNK,
        "full_seconds": round(full_seconds, 6),
        "first_chunk_seconds": round(ttfr_seconds, 6),
        "ttfr_speedup": round(speedup, 2),
    }
    report.add(
        "Serving — streamed time-to-first-row vs full result (seconds)",
        ("scan", "full result", "first chunk", "speedup"),
        (f"{total_rows} of {SCAN_ROWS} rows", full_seconds,
         ttfr_seconds, f"{speedup:.2f}x"))

    failures = []
    if speedup < TTFR_FLOOR:
        failures.append(
            f"first chunk only {speedup:.2f}x ahead of the full "
            f"result (floor {TTFR_FLOOR}x)")
    committed = (json.loads(BENCH_FILE.read_text())
                 if BENCH_FILE.exists() else None)
    if committed is not None and "streaming" in committed:
        baseline_speedup = committed["streaming"]["ttfr_speedup"]
        ratio = speedup / baseline_speedup
        if ratio < REGRESSION_FLOOR:
            failures.append(
                f"time-to-first-row advantage fell to {ratio:.0%} of "
                f"the committed {baseline_speedup}x "
                f"(floor {REGRESSION_FLOOR:.0%})")

    _update_bench_file("streaming", measured)
    assert not failures, "; ".join(failures)


def _update_bench_file(section: str, measured: dict) -> None:
    if os.environ.get("REPRO_BENCH_UPDATE") != "1":
        return
    data = (json.loads(BENCH_FILE.read_text())
            if BENCH_FILE.exists() else {"schema_version": 1})
    data[section] = measured
    BENCH_FILE.write_text(json.dumps(data, indent=2) + "\n")
