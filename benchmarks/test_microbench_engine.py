"""Engine micro-benchmarks: the substrate costs behind the figures.

Quantifies the unit costs the experiment-level numbers are built from:

* scan / filter / hash-join / aggregate throughput,
* the *lineage tax* — the same query with and without provenance
  tracking (Perm's overhead, which server-included audit pays once
  more per query),
* the *wire tax* — executing through the client/server protocol vs
  calling the engine directly (the interposition surface's cost).
"""

from __future__ import annotations

import pytest

from repro.db import Database, DBClient, DBServer

from benchmarks.conftest import BENCH_CONFIG, fresh_world


@pytest.fixture(scope="module")
def world(tmp_path_factory):
    return fresh_world(tmp_path_factory.mktemp("micro"),
                       with_data_dir=False)


SCAN = "SELECT count(*) FROM lineitem"
FILTER = "SELECT count(*) FROM lineitem WHERE l_quantity > 25"
JOIN = ("SELECT count(*) FROM lineitem l, orders o "
        "WHERE l.l_orderkey = o.o_orderkey")
AGGREGATE = ("SELECT l_returnflag, sum(l_extendedprice), avg(l_quantity) "
             "FROM lineitem GROUP BY l_returnflag")


@pytest.mark.parametrize("label,sql", [
    ("scan", SCAN),
    ("filter", FILTER),
    ("hash_join", JOIN),
    ("aggregate", AGGREGATE),
])
def test_operator_throughput(benchmark, world, label, sql):
    rows = benchmark(world.database.query, sql)
    assert rows


@pytest.mark.parametrize("label,sql", [
    ("filter", FILTER),
    ("hash_join", JOIN),
    ("aggregate", AGGREGATE),
])
def test_lineage_tax(benchmark, world, report, label, sql):
    """Provenance-tracked execution vs plain execution."""
    import time

    start = time.perf_counter()
    world.database.execute(sql)
    plain = time.perf_counter() - start

    result = benchmark(world.database.execute, sql, True)
    tracked = benchmark.stats.stats.mean
    assert all(result.lineages)
    report.add(
        "Microbench — lineage tax (seconds per query)",
        ("operator", "plain", "with_lineage", "tax"),
        (label, plain, tracked, f"{tracked / max(plain, 1e-9):.2f}x"))


def test_index_vs_scan(benchmark, world, report):
    """Point lookup through a hash index vs a sequential scan."""
    import time

    database = world.database
    point_query = "SELECT * FROM orders WHERE o_orderkey = 42"
    # the TPC-H schema ships idx_orders_orderkey; measure with it
    indexed = benchmark(database.query, point_query)
    assert indexed
    indexed_mean = benchmark.stats.stats.mean

    database.execute("DROP INDEX idx_orders_orderkey")
    try:
        start = time.perf_counter()
        scanned = database.query(point_query)
        scan_seconds = time.perf_counter() - start
    finally:
        database.execute(
            "CREATE INDEX idx_orders_orderkey ON orders (o_orderkey)")
    assert scanned == indexed
    report.add(
        "Microbench — point lookup: index vs scan (seconds)",
        ("path", "seconds", "speedup_vs_scan"),
        ("index", indexed_mean,
         f"{scan_seconds / max(indexed_mean, 1e-9):.0f}x"))
    assert indexed_mean < scan_seconds


def test_wire_tax(benchmark, world, report):
    """Client/server round trip vs direct engine call."""
    import time

    server = DBServer(world.database)
    client = DBClient(server.transport())
    client.connect()

    start = time.perf_counter()
    world.database.query(FILTER)
    direct = time.perf_counter() - start

    benchmark(client.query, FILTER)
    wired = benchmark.stats.stats.mean
    client.close()
    report.add(
        "Microbench — wire protocol tax (seconds per query)",
        ("path", "direct", "through_wire", "tax"),
        ("filter", direct, wired, f"{wired / max(direct, 1e-9):.2f}x"))
