"""Engine micro-benchmarks: the substrate costs behind the figures.

Quantifies the unit costs the experiment-level numbers are built from:

* scan / filter / hash-join / aggregate throughput,
* the *lineage tax* — the same query with and without provenance
  tracking (Perm's overhead, which server-included audit pays once
  more per query),
* the *wire tax* — executing through the client/server protocol vs
  calling the engine directly (the interposition surface's cost).
"""

from __future__ import annotations

import json
import os
import random
from pathlib import Path

import pytest

from repro.db import Database, DBClient, DBServer
from repro.db.vector import row_at_a_time_plans

from benchmarks.conftest import BENCH_CONFIG, RESULTS_DIR, fresh_world, timed


@pytest.fixture(scope="module")
def world(tmp_path_factory):
    return fresh_world(tmp_path_factory.mktemp("micro"),
                       with_data_dir=False)


SCAN = "SELECT count(*) FROM lineitem"
FILTER = "SELECT count(*) FROM lineitem WHERE l_quantity > 25"
JOIN = ("SELECT count(*) FROM lineitem l, orders o "
        "WHERE l.l_orderkey = o.o_orderkey")
AGGREGATE = ("SELECT l_returnflag, sum(l_extendedprice), avg(l_quantity) "
             "FROM lineitem GROUP BY l_returnflag")


@pytest.mark.parametrize("label,sql", [
    ("scan", SCAN),
    ("filter", FILTER),
    ("hash_join", JOIN),
    ("aggregate", AGGREGATE),
])
def test_operator_throughput(benchmark, world, label, sql):
    rows = benchmark(world.database.query, sql)
    assert rows


@pytest.mark.parametrize("label,sql", [
    ("filter", FILTER),
    ("hash_join", JOIN),
    ("aggregate", AGGREGATE),
])
def test_lineage_tax(benchmark, world, report, label, sql):
    """Provenance-tracked execution vs plain execution."""
    import time

    start = time.perf_counter()
    world.database.execute(sql)
    plain = time.perf_counter() - start

    result = benchmark(world.database.execute, sql, True)
    tracked = benchmark.stats.stats.mean
    assert all(result.lineages)
    report.add(
        "Microbench — lineage tax (seconds per query)",
        ("operator", "plain", "with_lineage", "tax"),
        (label, plain, tracked, f"{tracked / max(plain, 1e-9):.2f}x"))


def test_index_vs_scan(benchmark, world, report):
    """Point lookup through a hash index vs a sequential scan."""
    import time

    database = world.database
    point_query = "SELECT * FROM orders WHERE o_orderkey = 42"
    # the TPC-H schema ships idx_orders_orderkey; measure with it
    indexed = benchmark(database.query, point_query)
    assert indexed
    indexed_mean = benchmark.stats.stats.mean

    database.execute("DROP INDEX idx_orders_orderkey")
    try:
        start = time.perf_counter()
        scanned = database.query(point_query)
        scan_seconds = time.perf_counter() - start
    finally:
        database.execute(
            "CREATE INDEX idx_orders_orderkey ON orders (o_orderkey)")
    assert scanned == indexed
    report.add(
        "Microbench — point lookup: index vs scan (seconds)",
        ("path", "seconds", "speedup_vs_scan"),
        ("index", indexed_mean,
         f"{scan_seconds / max(indexed_mean, 1e-9):.0f}x"))
    assert indexed_mean < scan_seconds


def test_wire_tax(benchmark, world, report):
    """Client/server round trip vs direct engine call."""
    import time

    server = DBServer(world.database)
    client = DBClient(server.transport())
    client.connect()

    start = time.perf_counter()
    world.database.query(FILTER)
    direct = time.perf_counter() - start

    benchmark(client.query, FILTER)
    wired = benchmark.stats.stats.mean
    client.close()
    report.add(
        "Microbench — wire protocol tax (seconds per query)",
        ("path", "direct", "through_wire", "tax"),
        ("filter", direct, wired, f"{wired / max(direct, 1e-9):.2f}x"))


# ---------------------------------------------------------------------------
# fast path: compiled expressions + plan cache
# ---------------------------------------------------------------------------

JOIN_AGG = ("SELECT l_returnflag, count(*), sum(l_extendedprice), "
            "avg(l_quantity) FROM lineitem l, orders o "
            "WHERE l.l_orderkey = o.o_orderkey AND l_quantity > 10 "
            "GROUP BY l_returnflag ORDER BY l_returnflag")


def _best_of(fn, repeats: int = 5) -> float:
    return min(timed(fn)[0] for _ in range(repeats))


def test_compiled_vs_interpreted(world, report):
    """The tentpole claim: closure-compiled expressions beat the seed
    AST interpreter on a TPC-H-style join+aggregate. Both paths run
    the identical plan shape — ``interpreted_expressions()`` swaps
    only the per-row evaluation strategy — and both get a cached plan,
    so the measured gap is pure expression-evaluation cost."""
    from repro.db import expressions as exprs

    database = world.database
    database.plan_cache.clear()
    compiled_rows = database.query(JOIN_AGG)  # warm the plan cache
    compiled = _best_of(lambda: database.query(JOIN_AGG))
    with exprs.interpreted_expressions():
        database.plan_cache.clear()  # force a re-plan in interpreted mode
        interpreted_rows = database.query(JOIN_AGG)
        interpreted = _best_of(lambda: database.query(JOIN_AGG))
    database.plan_cache.clear()  # drop the interpreted plan
    assert compiled_rows == interpreted_rows

    speedup = interpreted / max(compiled, 1e-9)
    report.add(
        "Microbench — compiled expressions vs interpreter (seconds)",
        ("query", "interpreted", "compiled", "speedup"),
        ("join+aggregate", interpreted, compiled, f"{speedup:.2f}x"))
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "microbench_engine.json").write_text(json.dumps({
        "query": JOIN_AGG,
        "scale_factor": BENCH_CONFIG.scale_factor,
        "interpreted_seconds": interpreted,
        "compiled_seconds": compiled,
        "speedup": speedup,
        "plan_cache": database.plan_cache.counters(),
    }, indent=2) + "\n")
    assert compiled < interpreted, (
        f"compiled path ({compiled:.6f}s) is not faster than the "
        f"interpreter ({interpreted:.6f}s)")


def test_plan_cache_skips_parse_and_plan(world, report):
    """Repeated statement latency: served from the plan cache vs
    re-planned from scratch (cache cleared before every run). A tiny
    query makes parse+plan the dominant cost, as in the reenactment
    paper's replay workloads."""
    database = world.database
    sql = "SELECT r_name FROM region WHERE r_regionkey = 1"

    database.plan_cache.clear()
    database.query(sql)  # prime the entry
    hot = _best_of(lambda: database.query(sql), repeats=7)

    def cold():
        database.plan_cache.clear()
        return database.query(sql)

    cold_seconds = _best_of(cold, repeats=7)
    report.add(
        "Microbench — plan cache (seconds per statement)",
        ("path", "seconds", "speedup"),
        ("cached", hot, f"{cold_seconds / max(hot, 1e-9):.2f}x"))
    assert hot < cold_seconds, (
        f"cached execution ({hot:.6f}s) is not faster than "
        f"re-planning ({cold_seconds:.6f}s)")


# ---------------------------------------------------------------------------
# batch pipeline: vectorized vs tuple-at-a-time, with a regression gate
# ---------------------------------------------------------------------------

BENCH_FILE = Path(__file__).resolve().parent.parent / "BENCH_engine.json"
BENCH_ROWS = 100_000
# CI fails when throughput drops below 70% of the committed trajectory
REGRESSION_FLOOR = 0.7
# and the vectorized engine must beat tuple-at-a-time by at least this
# much in-run (the committed file records the real, larger margin)
SPEEDUP_FLOOR = 1.5

PIPELINE_QUERIES = {
    "scan_filter_project":
        "SELECT k, a, a + k FROM big WHERE a < 500",
    "join_aggregate":
        "SELECT s.name, count(*), sum(t.a) FROM big t, small s "
        "WHERE t.j = s.k AND t.a < 500 GROUP BY s.name",
}


@pytest.fixture(scope="module")
def pipeline_db():
    """100k-row fact table + 100-row dimension, loaded via direct
    table inserts (statement parsing at this size would dominate
    setup)."""
    database = Database()
    database.execute(
        "CREATE TABLE big (k integer, j integer, a integer, b float)")
    database.execute("CREATE TABLE small (k integer, name text)")
    rng = random.Random(7)
    tick = database.clock.tick()
    big = database.catalog.get_table("big")
    for k in range(BENCH_ROWS):
        big.insert((k, k % 100, rng.randrange(1000),
                    rng.random()), tick)
    small = database.catalog.get_table("small")
    for k in range(100):
        small.insert((k, f"dim{k:03d}"), tick)
    return database


def _time_modes(database, sql):
    """Best-of timings for the vectorized and tuple engines, each with
    a warm plan cache for its own mode."""
    database.plan_cache.clear()
    batch_rows = database.query(sql)
    batch_seconds = _best_of(lambda: database.query(sql), repeats=3)
    with row_at_a_time_plans():
        database.plan_cache.clear()  # re-plan with row operators
        tuple_rows = database.query(sql)
        tuple_seconds = _best_of(lambda: database.query(sql), repeats=3)
    database.plan_cache.clear()  # drop the row-mode plan
    assert batch_rows is not tuple_rows
    return batch_seconds, tuple_seconds, batch_rows, tuple_rows


def test_batch_vs_tuple_pipeline(pipeline_db, report):
    """The tentpole claim: batch execution with fused kernels beats the
    tuple-at-a-time Volcano loop on scan-heavy pipelines. Records the
    per-query throughput trajectory in BENCH_engine.json (refresh with
    ``REPRO_BENCH_UPDATE=1``) and gates on it: a >30% throughput
    regression against the committed numbers fails CI."""
    committed = (json.loads(BENCH_FILE.read_text())
                 if BENCH_FILE.exists() else None)
    measured: dict[str, dict] = {}
    failures = []
    for name, sql in PIPELINE_QUERIES.items():
        batch_seconds, tuple_seconds, batch_rows, tuple_rows = (
            _time_modes(pipeline_db, sql))
        assert sorted(batch_rows) == sorted(tuple_rows)
        speedup = tuple_seconds / max(batch_seconds, 1e-9)
        measured[name] = {
            "tuple_seconds": round(tuple_seconds, 6),
            "batch_seconds": round(batch_seconds, 6),
            "tuple_rows_per_s": round(BENCH_ROWS / tuple_seconds),
            "batch_rows_per_s": round(BENCH_ROWS / batch_seconds),
            "speedup": round(speedup, 2),
        }
        report.add(
            "Microbench — batch pipeline vs tuple-at-a-time (seconds)",
            ("query", "tuple", "batch", "speedup"),
            (name, tuple_seconds, batch_seconds, f"{speedup:.2f}x"))
        if speedup < SPEEDUP_FLOOR:
            failures.append(
                f"{name}: batch engine only {speedup:.2f}x over tuple "
                f"engine (floor {SPEEDUP_FLOOR}x)")
        if committed is not None:
            baseline = committed["queries"][name]["batch_rows_per_s"]
            ratio = measured[name]["batch_rows_per_s"] / baseline
            if ratio < REGRESSION_FLOOR:
                failures.append(
                    f"{name}: throughput fell to {ratio:.0%} of the "
                    f"committed {baseline} rows/s "
                    f"(floor {REGRESSION_FLOOR:.0%})")

    if os.environ.get("REPRO_BENCH_UPDATE") == "1":
        _merge_into_bench_file({"schema_version": 1,
                                "rows": BENCH_ROWS,
                                "queries": measured})
    assert not failures, "; ".join(failures)


def _merge_into_bench_file(entries: dict) -> None:
    """Fold new measurements into BENCH_engine.json without dropping
    keys owned by other benchmarks (each test records its own slice)."""
    current = (json.loads(BENCH_FILE.read_text())
               if BENCH_FILE.exists() else {})
    current.update(entries)
    BENCH_FILE.write_text(json.dumps(current, indent=2) + "\n")


# ---------------------------------------------------------------------------
# cost-based optimizer: ANALYZE-informed plans vs the rote planner
# ---------------------------------------------------------------------------

# the informed plan must beat the rote FROM-order plan by at least
# this much in-run (the committed file records the real, larger margin)
OPTIMIZER_SPEEDUP_FLOOR = 2.0
OPTIMIZER_ROWS = 30_000

OPTIMIZER_QUERY = ("SELECT count(*) FROM f, j, s WHERE f.d1 = j.d1 "
                   "AND f.d2 = s.d2 AND s.flag < 10")


@pytest.fixture(scope="module")
def optimizer_db():
    """Skewed star: the fact table's FROM-order join partner (j) fans
    out 5x per key, while the last-listed dimension (s) filters the
    fact down to ~1% — exactly the shape the rote left-to-right
    planner misplans."""
    database = Database()
    database.execute(
        "CREATE TABLE f (k integer, d1 integer, d2 integer)")
    database.execute("CREATE TABLE j (d1 integer, payload integer)")
    database.execute("CREATE TABLE s (d2 integer, flag integer)")
    rng = random.Random(13)
    tick = database.clock.tick()
    fact = database.catalog.get_table("f")
    for k in range(OPTIMIZER_ROWS):
        fact.insert((k, rng.randrange(100), rng.randrange(300)), tick)
    junction = database.catalog.get_table("j")
    for d1 in range(100):
        for payload in range(5):
            junction.insert((d1, payload), tick)
    dimension = database.catalog.get_table("s")
    for d2 in range(300):
        dimension.insert((d2, rng.randrange(1000)), tick)
    return database


def test_analyze_informed_plan_beats_rote_planner(optimizer_db, report):
    """The optimizer claim: ANALYZE statistics reorder the skewed
    3-table join (selective dimension first, fan-out junction last)
    for >= 2x over the rote plan, same answer. Records the trajectory
    in BENCH_engine.json under ``optimizer`` (refresh with
    ``REPRO_BENCH_UPDATE=1``) and gates on a >30% regression."""
    committed = (json.loads(BENCH_FILE.read_text())
                 if BENCH_FILE.exists() else None)
    database = optimizer_db

    def plan():
        return "\n".join(row[0] for row in database.execute(
            "EXPLAIN " + OPTIMIZER_QUERY).rows)

    database.plan_cache.clear()
    rote_plan = plan()
    rote_rows = database.query(OPTIMIZER_QUERY)
    rote_seconds = _best_of(
        lambda: database.query(OPTIMIZER_QUERY), repeats=3)

    database.execute("ANALYZE")  # invalidates every cached plan
    informed_plan = plan()
    informed_rows = database.query(OPTIMIZER_QUERY)
    informed_seconds = _best_of(
        lambda: database.query(OPTIMIZER_QUERY), repeats=3)

    assert informed_rows == rote_rows
    # deeper operators print later: the selective s-join must now
    # execute before the fan-out j-join
    assert rote_plan.index("f.d1 = j.d1") > rote_plan.index("f.d2 = s.d2")
    assert informed_plan.index("f.d2 = s.d2") > \
        informed_plan.index("f.d1 = j.d1")

    speedup = rote_seconds / max(informed_seconds, 1e-9)
    measured = {
        "rote_seconds": round(rote_seconds, 6),
        "informed_seconds": round(informed_seconds, 6),
        "rote_rows_per_s": round(OPTIMIZER_ROWS / rote_seconds),
        "informed_rows_per_s": round(OPTIMIZER_ROWS / informed_seconds),
        "speedup": round(speedup, 2),
    }
    report.add(
        "Microbench — ANALYZE-informed vs rote join order (seconds)",
        ("query", "rote", "informed", "speedup"),
        ("skewed_star", rote_seconds, informed_seconds,
         f"{speedup:.2f}x"))

    failures = []
    if speedup < OPTIMIZER_SPEEDUP_FLOOR:
        failures.append(
            f"informed plan only {speedup:.2f}x over the rote plan "
            f"(floor {OPTIMIZER_SPEEDUP_FLOOR}x)")
    baseline_entry = (committed or {}).get("optimizer")
    if baseline_entry is not None:
        baseline = baseline_entry["informed_rows_per_s"]
        ratio = measured["informed_rows_per_s"] / baseline
        if ratio < REGRESSION_FLOOR:
            failures.append(
                f"optimizer throughput fell to {ratio:.0%} of the "
                f"committed {baseline} rows/s "
                f"(floor {REGRESSION_FLOOR:.0%})")

    if os.environ.get("REPRO_BENCH_UPDATE") == "1":
        _merge_into_bench_file({"optimizer": measured})
    assert not failures, "; ".join(failures)


# ---------------------------------------------------------------------------
# partition-parallel execution: multi-worker gather vs serial
# ---------------------------------------------------------------------------

# at 4 workers on >= 4 cores the gather must beat serial by this much
# in-run; on smaller machines the parity assertion still runs but the
# timing floor is advisory (the committed entry records its core count)
PARALLEL_SPEEDUP_FLOOR = 2.5
PARALLEL_WORKERS = 4

PARALLEL_QUERY = (
    "SELECT j, count(*), sum(a), min(a), max(k) FROM big "
    "WHERE (a * 17 + k) % 13 < 9 AND b < 0.9 GROUP BY j")


def test_parallel_pipeline_speedup(pipeline_db, report):
    """The parallelism claim: a compute-heavy aggregation over the
    100k-row pipeline speeds up across forked workers, answering
    byte-for-byte what serial answers. Records the trajectory in
    BENCH_engine.json under ``parallel`` (refresh with
    ``REPRO_BENCH_UPDATE=1``); the 2.5x floor and the regression gate
    only bind where >= 4 cores exist (CI runners), so a laptop or
    1-core container still verifies parity without a vacuous timing
    failure."""
    committed = (json.loads(BENCH_FILE.read_text())
                 if BENCH_FILE.exists() else None)
    database = pipeline_db
    cores = os.cpu_count() or 1
    try:
        database.set_parallel_workers(1, min_rows=0)
        database.plan_cache.clear()
        serial_rows = database.query(PARALLEL_QUERY)
        serial_seconds = _best_of(
            lambda: database.query(PARALLEL_QUERY), repeats=3)

        database.set_parallel_workers(PARALLEL_WORKERS)
        parallel_rows = database.query(PARALLEL_QUERY)
        parallel_seconds = _best_of(
            lambda: database.query(PARALLEL_QUERY), repeats=3)
    finally:
        database.set_parallel_workers(1)
        database.plan_cache.clear()

    # parity is unconditional: the gather must be indistinguishable
    assert parallel_rows == serial_rows

    speedup = serial_seconds / max(parallel_seconds, 1e-9)
    measured = {
        "serial_seconds": round(serial_seconds, 6),
        "parallel_seconds": round(parallel_seconds, 6),
        "serial_rows_per_s": round(BENCH_ROWS / serial_seconds),
        "parallel_rows_per_s": round(BENCH_ROWS / parallel_seconds),
        "speedup": round(speedup, 2),
        "workers": PARALLEL_WORKERS,
        "cores": cores,
    }
    report.add(
        "Microbench — partition-parallel gather vs serial (seconds)",
        ("query", "serial", f"{PARALLEL_WORKERS} workers", "speedup"),
        ("scan_aggregate", serial_seconds, parallel_seconds,
         f"{speedup:.2f}x on {cores} cores"))

    failures = []
    if cores >= PARALLEL_WORKERS and speedup < PARALLEL_SPEEDUP_FLOOR:
        failures.append(
            f"parallel gather only {speedup:.2f}x over serial at "
            f"{PARALLEL_WORKERS} workers on {cores} cores "
            f"(floor {PARALLEL_SPEEDUP_FLOOR}x)")
    baseline_entry = (committed or {}).get("parallel")
    if (baseline_entry is not None and cores >= PARALLEL_WORKERS
            and baseline_entry.get("cores", 0) >= PARALLEL_WORKERS):
        baseline = baseline_entry["parallel_rows_per_s"]
        ratio = measured["parallel_rows_per_s"] / baseline
        if ratio < REGRESSION_FLOOR:
            failures.append(
                f"parallel throughput fell to {ratio:.0%} of the "
                f"committed {baseline} rows/s "
                f"(floor {REGRESSION_FLOOR:.0%})")

    if os.environ.get("REPRO_BENCH_UPDATE") == "1":
        _merge_into_bench_file({"parallel": measured})
    assert not failures, "; ".join(failures)


# at 4 workers on >= 4 cores the new parallel operators (per-partition
# sort with a k-way merge; in-worker hash-table build) must beat their
# serial twins by this much; parity and the fork-count bound are
# asserted unconditionally
PARALLEL_OPERATOR_FLOOR = 1.5

PARALLEL_SORT_QUERY = (
    "SELECT k, j, a, b FROM big WHERE a < 900 "
    "ORDER BY a DESC, k LIMIT 500")
PARALLEL_JOIN_QUERY = (
    "SELECT count(*), sum(t.a) FROM big t, big u "
    "WHERE t.k = u.k AND t.a < 500 AND u.a < 800")


@pytest.mark.parametrize("label,sql", [
    ("parallel_sort", PARALLEL_SORT_QUERY),
    ("parallel_join", PARALLEL_JOIN_QUERY),
])
def test_parallel_operator_speedup(pipeline_db, report, label, sql):
    """Parallel sort and parallel hash-join build vs their serial
    twins, served by the persistent worker pool (forked once, reused
    across every timed repetition). Records trajectories in
    BENCH_engine.json under ``parallel_sort`` / ``parallel_join``;
    the 1.5x floor and the regression gate bind only where >= 4 cores
    exist, parity and the fork-count bound always."""
    committed = (json.loads(BENCH_FILE.read_text())
                 if BENCH_FILE.exists() else None)
    database = pipeline_db
    cores = os.cpu_count() or 1
    try:
        database.set_parallel_workers(1, min_rows=0)
        database.plan_cache.clear()
        serial_rows = database.query(sql)
        serial_seconds = _best_of(lambda: database.query(sql), repeats=3)

        database.set_parallel_workers(PARALLEL_WORKERS, min_rows=0)
        parallel_rows = database.query(sql)
        parallel_seconds = _best_of(
            lambda: database.query(sql), repeats=3)
        pool_forks = database.parallel_pool.forks
    finally:
        database.set_parallel_workers(1)
        database.plan_cache.clear()

    # parity is unconditional — same rows in the same order
    assert parallel_rows == serial_rows
    # and so is pool reuse: the read-only loop above forked the
    # residents exactly once, not once per statement
    assert pool_forks <= PARALLEL_WORKERS, (
        f"{label}: {pool_forks} forks for {PARALLEL_WORKERS} workers "
        f"— the persistent pool is not being reused")

    speedup = serial_seconds / max(parallel_seconds, 1e-9)
    measured = {
        "serial_seconds": round(serial_seconds, 6),
        "parallel_seconds": round(parallel_seconds, 6),
        "speedup": round(speedup, 2),
        "workers": PARALLEL_WORKERS,
        "forks": pool_forks,
        "cores": cores,
    }
    report.add(
        "Microbench — parallel operators vs serial (seconds)",
        ("query", "serial", f"{PARALLEL_WORKERS} workers", "speedup"),
        (label, serial_seconds, parallel_seconds,
         f"{speedup:.2f}x on {cores} cores"))

    failures = []
    if cores >= PARALLEL_WORKERS and speedup < PARALLEL_OPERATOR_FLOOR:
        failures.append(
            f"{label}: only {speedup:.2f}x over serial at "
            f"{PARALLEL_WORKERS} workers on {cores} cores "
            f"(floor {PARALLEL_OPERATOR_FLOOR}x)")
    baseline_entry = (committed or {}).get(label)
    if (baseline_entry is not None and cores >= PARALLEL_WORKERS
            and baseline_entry.get("cores", 0) >= PARALLEL_WORKERS):
        baseline = baseline_entry["parallel_seconds"]
        ratio = baseline / max(parallel_seconds, 1e-9)
        if ratio < REGRESSION_FLOOR:
            failures.append(
                f"{label}: latency rose to {1 / ratio:.2f}x the "
                f"committed {baseline}s (floor {REGRESSION_FLOOR:.0%})")

    if os.environ.get("REPRO_BENCH_UPDATE") == "1":
        _merge_into_bench_file({label: measured})
    assert not failures, "; ".join(failures)


# ---------------------------------------------------------------------------
# columnar scan cache: warm segment hits vs rebuilding the batch pipeline
# ---------------------------------------------------------------------------

# a warm cache hit must beat the uncached scan rebuild by at least this
# much in-run (the committed file records the real, larger margin)
SCAN_CACHE_SPEEDUP_FLOOR = 2.0

SCAN_CACHE_QUERY = "SELECT count(*), sum(a) FROM big WHERE a < 500"


def test_scan_cache_warm_hits_beat_rebuilds(pipeline_db, report):
    """The scan cache claim: a repeated aggregate over the 100k-row
    fact table served from a resident column segment beats re-walking
    the heap (version checks + row pivoting) every execution. Records
    the trajectory in BENCH_engine.json under ``scan_cache`` (refresh
    with ``REPRO_BENCH_UPDATE=1``) and gates on a >30% regression."""
    committed = (json.loads(BENCH_FILE.read_text())
                 if BENCH_FILE.exists() else None)
    database = pipeline_db
    database.plan_cache.clear()
    cache = database.scan_cache

    cache.enabled = False
    try:
        cold_rows = database.query(SCAN_CACHE_QUERY)
        cold_seconds = _best_of(
            lambda: database.query(SCAN_CACHE_QUERY), repeats=3)
    finally:
        cache.enabled = True

    cache.invalidate_all()
    warm_rows = database.query(SCAN_CACHE_QUERY)  # builds the segment
    hits_before = cache.hits
    warm_seconds = _best_of(
        lambda: database.query(SCAN_CACHE_QUERY), repeats=3)
    assert warm_rows == cold_rows
    assert cache.hits > hits_before, "timed runs were not cache hits"

    speedup = cold_seconds / max(warm_seconds, 1e-9)
    measured = {
        "uncached_seconds": round(cold_seconds, 6),
        "warm_hit_seconds": round(warm_seconds, 6),
        "uncached_rows_per_s": round(BENCH_ROWS / cold_seconds),
        "warm_hit_rows_per_s": round(BENCH_ROWS / warm_seconds),
        "speedup": round(speedup, 2),
    }
    report.add(
        "Microbench — scan cache warm hits vs uncached (seconds)",
        ("query", "uncached", "warm hit", "speedup"),
        ("scan_cache", cold_seconds, warm_seconds, f"{speedup:.2f}x"))

    failures = []
    if speedup < SCAN_CACHE_SPEEDUP_FLOOR:
        failures.append(
            f"scan_cache: warm hits only {speedup:.2f}x over uncached "
            f"scans (floor {SCAN_CACHE_SPEEDUP_FLOOR}x)")
    baseline_entry = (committed or {}).get("scan_cache")
    if baseline_entry is not None:
        baseline = baseline_entry["warm_hit_rows_per_s"]
        ratio = measured["warm_hit_rows_per_s"] / baseline
        if ratio < REGRESSION_FLOOR:
            failures.append(
                f"scan_cache: throughput fell to {ratio:.0%} of the "
                f"committed {baseline} rows/s "
                f"(floor {REGRESSION_FLOOR:.0%})")

    if os.environ.get("REPRO_BENCH_UPDATE") == "1":
        _merge_into_bench_file({"scan_cache": measured})
    assert not failures, "; ".join(failures)
