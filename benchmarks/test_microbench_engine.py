"""Engine micro-benchmarks: the substrate costs behind the figures.

Quantifies the unit costs the experiment-level numbers are built from:

* scan / filter / hash-join / aggregate throughput,
* the *lineage tax* — the same query with and without provenance
  tracking (Perm's overhead, which server-included audit pays once
  more per query),
* the *wire tax* — executing through the client/server protocol vs
  calling the engine directly (the interposition surface's cost).
"""

from __future__ import annotations

import json

import pytest

from repro.db import Database, DBClient, DBServer

from benchmarks.conftest import BENCH_CONFIG, RESULTS_DIR, fresh_world, timed


@pytest.fixture(scope="module")
def world(tmp_path_factory):
    return fresh_world(tmp_path_factory.mktemp("micro"),
                       with_data_dir=False)


SCAN = "SELECT count(*) FROM lineitem"
FILTER = "SELECT count(*) FROM lineitem WHERE l_quantity > 25"
JOIN = ("SELECT count(*) FROM lineitem l, orders o "
        "WHERE l.l_orderkey = o.o_orderkey")
AGGREGATE = ("SELECT l_returnflag, sum(l_extendedprice), avg(l_quantity) "
             "FROM lineitem GROUP BY l_returnflag")


@pytest.mark.parametrize("label,sql", [
    ("scan", SCAN),
    ("filter", FILTER),
    ("hash_join", JOIN),
    ("aggregate", AGGREGATE),
])
def test_operator_throughput(benchmark, world, label, sql):
    rows = benchmark(world.database.query, sql)
    assert rows


@pytest.mark.parametrize("label,sql", [
    ("filter", FILTER),
    ("hash_join", JOIN),
    ("aggregate", AGGREGATE),
])
def test_lineage_tax(benchmark, world, report, label, sql):
    """Provenance-tracked execution vs plain execution."""
    import time

    start = time.perf_counter()
    world.database.execute(sql)
    plain = time.perf_counter() - start

    result = benchmark(world.database.execute, sql, True)
    tracked = benchmark.stats.stats.mean
    assert all(result.lineages)
    report.add(
        "Microbench — lineage tax (seconds per query)",
        ("operator", "plain", "with_lineage", "tax"),
        (label, plain, tracked, f"{tracked / max(plain, 1e-9):.2f}x"))


def test_index_vs_scan(benchmark, world, report):
    """Point lookup through a hash index vs a sequential scan."""
    import time

    database = world.database
    point_query = "SELECT * FROM orders WHERE o_orderkey = 42"
    # the TPC-H schema ships idx_orders_orderkey; measure with it
    indexed = benchmark(database.query, point_query)
    assert indexed
    indexed_mean = benchmark.stats.stats.mean

    database.execute("DROP INDEX idx_orders_orderkey")
    try:
        start = time.perf_counter()
        scanned = database.query(point_query)
        scan_seconds = time.perf_counter() - start
    finally:
        database.execute(
            "CREATE INDEX idx_orders_orderkey ON orders (o_orderkey)")
    assert scanned == indexed
    report.add(
        "Microbench — point lookup: index vs scan (seconds)",
        ("path", "seconds", "speedup_vs_scan"),
        ("index", indexed_mean,
         f"{scan_seconds / max(indexed_mean, 1e-9):.0f}x"))
    assert indexed_mean < scan_seconds


def test_wire_tax(benchmark, world, report):
    """Client/server round trip vs direct engine call."""
    import time

    server = DBServer(world.database)
    client = DBClient(server.transport())
    client.connect()

    start = time.perf_counter()
    world.database.query(FILTER)
    direct = time.perf_counter() - start

    benchmark(client.query, FILTER)
    wired = benchmark.stats.stats.mean
    client.close()
    report.add(
        "Microbench — wire protocol tax (seconds per query)",
        ("path", "direct", "through_wire", "tax"),
        ("filter", direct, wired, f"{wired / max(direct, 1e-9):.2f}x"))


# ---------------------------------------------------------------------------
# fast path: compiled expressions + plan cache
# ---------------------------------------------------------------------------

JOIN_AGG = ("SELECT l_returnflag, count(*), sum(l_extendedprice), "
            "avg(l_quantity) FROM lineitem l, orders o "
            "WHERE l.l_orderkey = o.o_orderkey AND l_quantity > 10 "
            "GROUP BY l_returnflag ORDER BY l_returnflag")


def _best_of(fn, repeats: int = 5) -> float:
    return min(timed(fn)[0] for _ in range(repeats))


def test_compiled_vs_interpreted(world, report):
    """The tentpole claim: closure-compiled expressions beat the seed
    AST interpreter on a TPC-H-style join+aggregate. Both paths run
    the identical plan shape — ``interpreted_expressions()`` swaps
    only the per-row evaluation strategy — and both get a cached plan,
    so the measured gap is pure expression-evaluation cost."""
    from repro.db import expressions as exprs

    database = world.database
    database.plan_cache.clear()
    compiled_rows = database.query(JOIN_AGG)  # warm the plan cache
    compiled = _best_of(lambda: database.query(JOIN_AGG))
    with exprs.interpreted_expressions():
        database.plan_cache.clear()  # force a re-plan in interpreted mode
        interpreted_rows = database.query(JOIN_AGG)
        interpreted = _best_of(lambda: database.query(JOIN_AGG))
    database.plan_cache.clear()  # drop the interpreted plan
    assert compiled_rows == interpreted_rows

    speedup = interpreted / max(compiled, 1e-9)
    report.add(
        "Microbench — compiled expressions vs interpreter (seconds)",
        ("query", "interpreted", "compiled", "speedup"),
        ("join+aggregate", interpreted, compiled, f"{speedup:.2f}x"))
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "microbench_engine.json").write_text(json.dumps({
        "query": JOIN_AGG,
        "scale_factor": BENCH_CONFIG.scale_factor,
        "interpreted_seconds": interpreted,
        "compiled_seconds": compiled,
        "speedup": speedup,
        "plan_cache": database.plan_cache.counters(),
    }, indent=2) + "\n")
    assert compiled < interpreted, (
        f"compiled path ({compiled:.6f}s) is not faster than the "
        f"interpreter ({interpreted:.6f}s)")


def test_plan_cache_skips_parse_and_plan(world, report):
    """Repeated statement latency: served from the plan cache vs
    re-planned from scratch (cache cleared before every run). A tiny
    query makes parse+plan the dominant cost, as in the reenactment
    paper's replay workloads."""
    database = world.database
    sql = "SELECT r_name FROM region WHERE r_regionkey = 1"

    database.plan_cache.clear()
    database.query(sql)  # prime the entry
    hot = _best_of(lambda: database.query(sql), repeats=7)

    def cold():
        database.plan_cache.clear()
        return database.query(sql)

    cold_seconds = _best_of(cold, repeats=7)
    report.add(
        "Microbench — plan cache (seconds per statement)",
        ("path", "seconds", "speedup"),
        ("cached", hot, f"{cold_seconds / max(hot, 1e-9):.2f}x"))
    assert hot < cold_seconds, (
        f"cached execution ({hot:.6f}s) is not faster than "
        f"re-planning ({cold_seconds:.6f}s)")
