"""Table III — package contents by packaging option.

PTU packages contain all data files of the full DB; server-included
LDV packages contain server binaries, DB provenance, and an *empty*
data directory; server-excluded packages contain neither server nor
data files, only recorded results.
"""

from __future__ import annotations

import pytest

from repro.core.package import Package
from repro.workloads.tpch.queries import variant_by_id

from benchmarks.conftest import BENCH_CONFIG

VARIANT = variant_by_id(BENCH_CONFIG, "Q1-1")

# the paper's Table III, as (kind -> expected checklist)
EXPECTED = {
    "ptu": {
        "software_binaries": True,
        "db_server": True,
        "full_data_files": True,
        "empty_data_dir": False,
        "db_provenance": False,
    },
    "included": {
        "software_binaries": True,
        "db_server": True,
        "full_data_files": False,
        "empty_data_dir": True,
        "db_provenance": True,
    },
    "excluded": {
        "software_binaries": True,
        "db_server": False,
        "full_data_files": False,
        "empty_data_dir": False,
        "db_provenance": True,
    },
}


@pytest.mark.parametrize("kind", ["ptu", "included", "excluded"])
def test_table3_contents(benchmark, package_cache, report, kind):
    package_dir = benchmark.pedantic(
        package_cache.get, args=(VARIANT, kind), rounds=1, iterations=1)
    summary = Package.load(package_dir).contents_summary()
    assert summary == EXPECTED[kind], kind
    report.add(
        "Table III — package contents",
        ("kind", "binaries", "db_server", "data_files", "db_provenance"),
        (kind,
         "yes" if summary["software_binaries"] else "no",
         "yes" if summary["db_server"] else "no",
         "full" if summary["full_data_files"]
         else ("empty" if summary["empty_data_dir"] else "no"),
         "yes" if summary["db_provenance"] else "no"))
