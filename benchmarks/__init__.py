# benchmarks is a package so experiment modules can share conftest
# helpers via `from benchmarks.conftest import ...`.
