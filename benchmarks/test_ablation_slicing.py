"""Ablation: what does each ingredient of LDV's DB slicing buy?

The server-included package ships only tuple versions the run depended
on. That rests on two design choices the paper argues for:

1. **fine-grained (tuple-level) DB provenance** — without it, every
   query conservatively depends on the whole input table (the
   blackbox assumption PTU/CDE are stuck with), so the package must
   ship every accessed table in full;
2. **excluding app-created tuple versions** — without it, replayed
   INSERTs collide with shipped copies (Section II's duplicate
   problem) and the package carries redundant bytes.

This bench quantifies both on the Q1 sweep: bytes shipped under
(a) LDV slicing, (b) whole-accessed-tables, (c) slicing without the
app-created exclusion.
"""

from __future__ import annotations

import pytest

from repro.core import ldv_audit
from repro.core.package import Package
from repro.db import csvio
from repro.workloads.app import APP_BINARY
from repro.workloads.tpch.queries import variant_by_id

from benchmarks.conftest import BENCH_CONFIG, fresh_world

QUERY_IDS = ["Q1-1", "Q1-3", "Q1-5"]


def accessed_table_bytes(world, session) -> int:
    """Design choice 1 ablated: ship every accessed table in full."""
    monitor = session.db_monitor
    total = 0
    for table_name in monitor.versions.enabled_tables:
        heap = world.database.catalog.get_table(table_name)
        text = csvio.format_versioned_rows(
            ((rowid, heap.versions[rowid], values)
             for rowid, values in heap.scan()), heap.schema)
        total += len(text.encode())
    return total


def with_created_bytes(world, session) -> int:
    """Design choice 2 ablated: also ship app-created versions."""
    monitor = session.db_monitor
    total = 0
    created_by_table: dict[str, list] = {}
    for ref in monitor.created_refs:
        created_by_table.setdefault(ref.table, []).append(ref)
    tables = set(monitor.relevant.tables()) | set(created_by_table)
    for table_name in tables:
        heap = world.database.catalog.get_table(table_name)
        rows = list(monitor.relevant.rows_for(table_name))
        for ref in created_by_table.get(table_name, ()):
            if ref.rowid in heap.rows:
                rows.append((ref.rowid, ref.version, heap.get(ref.rowid)))
        text = csvio.format_versioned_rows(rows, heap.schema)
        total += len(text.encode())
    return total


@pytest.mark.parametrize("query_id", QUERY_IDS)
def test_ablation_slicing(benchmark, tmp_path, report, query_id):
    variant = variant_by_id(BENCH_CONFIG, query_id)
    world = fresh_world(tmp_path / query_id, variant=variant,
                        with_data_dir=False)

    def audit():
        return ldv_audit(
            world.vos, APP_BINARY, tmp_path / f"pkg-{query_id}",
            mode="server-included", argv=["3"],
            database=world.database, server_name=world.server_name,
            server_binary_paths=world.server_binary_paths)

    audit_report = benchmark.pedantic(audit, rounds=1, iterations=1)
    session = audit_report.session
    package = Package.load(tmp_path / f"pkg-{query_id}")
    sliced = package.breakdown().get("db/restore", 0)
    whole_tables = accessed_table_bytes(world, session)
    with_created = with_created_bytes(world, session)

    report.add(
        "Ablation — DB payload bytes by slicing strategy",
        ("variant", "ldv_sliced", "no_exclusion", "whole_tables",
         "slicing_gain"),
        (query_id, sliced, with_created, whole_tables,
         f"{whole_tables / max(sliced, 1):.1f}x"))

    # fine-grained provenance must beat whole-table shipping, and
    # excluding app-created versions must not increase the payload
    assert sliced < whole_tables
    assert sliced <= with_created
