"""Ablation: the temporal dependency-inference algorithm itself.

Two claims behind Section VI:

1. temporal restriction *prunes false positives* that the raw
   blackbox relation (Definition 8) reports — measured on pipeline
   traces where early outputs cannot depend on late inputs,
2. the latest-budget traversal scales to real traces, while the
   literal path-enumeration reading of Definition 11 blows up —
   measured on growing chain-with-fanout traces.
"""

from __future__ import annotations

import time

import pytest

from repro.provenance import (
    DependencyInference,
    TimeInterval,
    TraceBuilder,
    bb_dependencies,
)
from repro.provenance.inference import brute_force_dependencies


def pipeline_trace(stages: int, files_per_stage: int = 3):
    """stage i reads the files of stage i-1 and writes its own; each
    process also reads a config file *after* writing its first output,
    creating prunable raw dependencies."""
    builder = TraceBuilder()
    tick = 1
    for stage in range(stages):
        builder.process(stage, f"stage{stage}")
        if stage > 0:
            for index in range(files_per_stage):
                builder.read_from(stage, f"/s{stage - 1}f{index}",
                                  TimeInterval(tick, tick + 1))
        tick += 2
        # first output written now ...
        builder.has_written(stage, f"/s{stage}f0",
                            TimeInterval(tick, tick + 1))
        tick += 2
        # ... then a late config read that f0 cannot depend on
        builder.read_from(stage, f"/late{stage}",
                          TimeInterval(tick, tick + 1))
        tick += 2
        for index in range(1, files_per_stage):
            builder.has_written(stage, f"/s{stage}f{index}",
                                TimeInterval(tick, tick + 1))
            tick += 2
    return builder.trace


def test_temporal_pruning_rate(benchmark, report):
    trace = pipeline_trace(stages=6)
    inference = DependencyInference(trace)

    def run():
        return inference.all_dependencies()

    inferred = benchmark.pedantic(run, rounds=1, iterations=1)
    raw = bb_dependencies(trace)
    pruned = raw - inferred
    report.add(
        "Ablation — temporal pruning of blackbox dependencies",
        ("raw_pairs", "inferred_pairs", "pruned", "pruned_pct"),
        (len(raw), len(inferred), len(pruned),
         f"{100 * len(pruned) / max(len(raw), 1):.0f}%"))
    # every pruned pair is a first-output/late-config combination
    assert pruned
    for target, source in pruned:
        assert source.startswith("file:/late") and "f0" in target
    # within the *direct* relation, inference only ever removes pairs
    # (D*(G) additionally contains transitive multi-stage pairs, which
    # Definition 8's single-chain relation does not enumerate)
    assert (raw & inferred) == raw - pruned


@pytest.mark.parametrize("stages", [3, 4, 5])
def test_traversal_scales(benchmark, report, stages):
    trace = pipeline_trace(stages=stages, files_per_stage=3)
    inference = DependencyInference(trace)
    target = f"file:/s{stages - 1}f2"

    fast = benchmark(inference.dependencies_of, target)

    start = time.perf_counter()
    slow = brute_force_dependencies(trace, target, max_length=30)
    brute_seconds = time.perf_counter() - start
    assert fast == slow
    report.add(
        "Ablation — traversal vs literal path enumeration (seconds)",
        ("stages", "traversal", "brute_force", "speedup"),
        (stages, benchmark.stats.stats.mean, brute_seconds,
         f"{brute_seconds / max(benchmark.stats.stats.mean, 1e-9):.0f}x"))
