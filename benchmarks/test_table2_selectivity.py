"""Table II — the 18 query variants and their measured selectivities.

Regenerates the Queries/PARAM/Selectivity columns of Table II at the
benchmark scale and verifies that measured selectivities follow the
paper's sweep (rows per variant monotone in the configured target).
Also times plain (non-audited) query execution — the "PostgreSQL"
baseline every figure normalizes against.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import (
    ALL_VARIANTS,
    BENCH_CONFIG,
    fresh_world,
)

_BASELINE_TIMES: dict[str, float] = {}


@pytest.fixture(scope="module")
def world(tmp_path_factory):
    return fresh_world(tmp_path_factory.mktemp("t2"), with_data_dir=False)


def baseline_times() -> dict[str, float]:
    """Plain query times measured by this module (seconds/query)."""
    return dict(_BASELINE_TIMES)


@pytest.mark.parametrize("variant", ALL_VARIANTS,
                         ids=[v.query_id for v in ALL_VARIANTS])
def test_table2_variant(benchmark, world, report, variant):
    database = world.database
    rows = benchmark(database.query, variant.sql)
    _BASELINE_TIMES[variant.query_id] = benchmark.stats.stats.mean

    if variant.family in (1,):  # Q1: rows / lineitem rows
        domain = world.row_counts["lineitem"]
        measured = len(rows) / domain
        assert measured == pytest.approx(variant.selectivity, rel=0.4)
    if variant.family == 3:
        assert len(rows) == 1  # count(*) always one row

    report.add(
        "Table II (measured at bench scale)",
        ("variant", "param", "target_sel", "result_rows"),
        (variant.query_id, variant.param,
         round(variant.selectivity, 5), len(rows)))


def test_q1_family_monotone(world):
    sizes = [len(world.database.query(v.sql))
             for v in ALL_VARIANTS if v.family == 1]
    assert sizes == sorted(sizes) and sizes[0] < sizes[-1]


def test_q2_family_monotone(world):
    sizes = [len(world.database.query(v.sql))
             for v in ALL_VARIANTS if v.family == 2]
    assert sizes == sorted(sizes)


def test_q4_family_monotone(world):
    sizes = [len(world.database.query(v.sql))
             for v in ALL_VARIANTS if v.family == 4]
    assert sizes == sorted(sizes) and sizes[0] < sizes[-1]
