"""Figure 9 — package size for every Table II variant.

Builds PTU, server-included, and server-excluded packages for each of
the 18 variants and reports their on-disk byte totals.

Shape assertions (Section IX-E):
  * server-included packages are significantly smaller than PTU
    packages (they ship only the relevant tuple subset),
  * server-excluded is usually smallest but *crosses over* where query
    results outgrow the shipped provenance — Q3 (one aggregate row) is
    its best case, high-selectivity Q1 its worst,
  * within Q1, the server-included restore grows with selectivity.
"""

from __future__ import annotations

import pytest

from repro.core.package import Package

from benchmarks.conftest import ALL_VARIANTS, timed

_sizes: dict[str, dict[str, int]] = {}


@pytest.mark.parametrize("variant", ALL_VARIANTS,
                         ids=[v.query_id for v in ALL_VARIANTS])
def test_fig9_package_size(benchmark, package_cache, report, variant):
    def build_all():
        return {kind: package_cache.get(variant, kind)
                for kind in ("ptu", "included", "excluded")}

    paths = benchmark.pedantic(build_all, rounds=1, iterations=1)
    sizes = {kind: Package.load(path).total_bytes()
             for kind, path in paths.items()}
    _sizes[variant.query_id] = sizes
    included_breakdown = Package.load(paths["included"]).breakdown()
    report.add(
        "Fig 9 — package size (bytes)",
        ("variant", "ptu", "server-included", "server-excluded",
         "included_restore_bytes"),
        (variant.query_id, sizes["ptu"], sizes["included"],
         sizes["excluded"], included_breakdown.get("db/restore", 0)))


def test_fig9_shapes(benchmark, package_cache):
    if len(_sizes) < len(ALL_VARIANTS):
        pytest.skip("sizes incomplete")
    benchmark.pedantic(_check_fig9_shapes, args=(package_cache,),
                       rounds=1, iterations=1)


def _check_fig9_shapes(package_cache):
    # "LDV packages are significantly smaller than PTU packages when
    # queries have low selectivity" (Fig 9's caption). At bench scale
    # the data directory is tiny, so the claim is asserted exactly as
    # scoped: for the low-selectivity half of every family.
    low_selectivity = ("Q1-1", "Q1-2", "Q1-3", "Q2-1", "Q2-2",
                       "Q3-1", "Q3-2", "Q4-1", "Q4-2", "Q4-3")
    for query_id in low_selectivity:
        sizes = _sizes[query_id]
        assert sizes["included"] < sizes["ptu"], query_id

    # the DB-payload comparison — relevant-tuple CSVs vs full data
    # files — holds for every variant: that is the slicing claim
    # independent of the shared binaries
    for query_id in _sizes:
        included = Package.load(
            package_cache.package_dir(query_id, "included"))
        ptu = Package.load(package_cache.package_dir(query_id, "ptu"))
        restore_bytes = included.breakdown().get("db/restore", 0)
        data_bytes = ptu.breakdown().get("db/data", 0)
        assert restore_bytes < data_bytes, query_id

    # the included restore payload grows with Q1 selectivity
    restores = []
    for index in range(1, 6):
        package = Package.load(
            package_cache.package_dir(f"Q1-{index}", "included"))
        restores.append(package.breakdown().get("db/restore", 0))
    assert restores[0] < restores[-1]

    # Q3's server-excluded package is (near-)minimal: its recorded
    # results are one row per query, so it undercuts server-included
    q3 = _sizes["Q3-1"]
    assert q3["excluded"] < q3["included"]

    # crossover existence: across the sweep there are variants where
    # excluded < included and the data payloads move in opposite
    # directions (results grow with selectivity, Q3 stays flat)
    excluded_wins = sum(1 for sizes in _sizes.values()
                        if sizes["excluded"] < sizes["included"])
    assert excluded_wins >= 4
