"""Figure 7 — per-step execution time for the Q1-1 application.

7a (audit): Inserts / First Select / Other Selects / Updates under
  * PostgreSQL + PTU (OS-only auditing),
  * LDV server-included (provenance queries + versioning + tuple
    collection),
  * LDV server-excluded (statement/result recording).

7b (replay): Initialization / First Select / Other Selects / Inserts /
Updates from the corresponding packages.

Shape assertions (the paper's findings):
  * server-included audit is the slowest on Select and Update steps
    (extra provenance queries), but cheap on Insert,
  * server-excluded audit overhead is below server-included,
  * server-included replay pays a DB-initialization cost,
  * server-excluded replay answers queries fastest (reads results from
    the log instead of executing).
"""

from __future__ import annotations

import pytest

from repro.core.replay import ReplaySession
from repro.monitor import AuditSession
from repro.workloads.app import (
    INSERT_BINARY,
    SELECT_BINARY,
    UPDATE_BINARY,
)
from repro.workloads.tpch.queries import variant_by_id

from benchmarks.conftest import (
    BENCH_CONFIG,
    BENCH_SELECTS,
    fresh_world,
    run_insert_step,
    run_select_step,
    run_update_step,
    timed,
)

VARIANT = variant_by_id(BENCH_CONFIG, "Q1-1")

AUDIT_CONFIGS = [
    ("postgres+ptu", "os-only"),
    ("server-included", "server-included"),
    ("server-excluded", "server-excluded"),
]

_audit_steps: dict[str, dict[str, float]] = {}
_replay_steps: dict[str, dict[str, float]] = {}


def _measure_audit_steps(world, mode: str) -> dict[str, float]:
    steps: dict[str, float] = {}
    with AuditSession(world.vos, mode, database=world.database):
        steps["inserts"], _ = timed(run_insert_step, world)
        steps["first_select"], _ = timed(run_select_step, world, 1)
        other, _ = timed(run_select_step, world, BENCH_SELECTS - 1)
        steps["other_selects"] = other / max(BENCH_SELECTS - 1, 1)
        steps["updates"], _ = timed(run_update_step, world)
    return steps


@pytest.mark.parametrize("label,mode", AUDIT_CONFIGS,
                         ids=[c[0] for c in AUDIT_CONFIGS])
def test_fig7a_audit(benchmark, tmp_path, report, label, mode):
    world = fresh_world(tmp_path, variant=VARIANT, with_data_dir=False)

    def run():
        return _measure_audit_steps(world, mode)

    steps = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["steps"] = steps
    _audit_steps[label] = steps
    report.add(
        "Fig 7a — audit time per step (seconds)",
        ("config", "inserts", "first_select", "other_selects", "updates"),
        (label, steps["inserts"], steps["first_select"],
         steps["other_selects"], steps["updates"]))


@pytest.mark.parametrize("kind", ["ptu", "included", "excluded"])
def test_fig7b_replay(benchmark, package_cache, report, kind):
    package_dir = package_cache.get(VARIANT, kind)
    world = package_cache.world_for(VARIANT.query_id, kind)

    def run():
        steps: dict[str, float] = {}
        session = ReplaySession(package_dir, world.registry,
                                scratch_dir=package_dir / ".scratch")
        steps["initialization"], _ = timed(session.prepare)
        steps["inserts"], _ = timed(session.run, INSERT_BINARY, [])
        steps["first_select"], _ = timed(session.run, SELECT_BINARY, ["1"])
        other, _ = timed(session.run, SELECT_BINARY,
                         [str(BENCH_SELECTS - 1)])
        steps["other_selects"] = other / max(BENCH_SELECTS - 1, 1)
        steps["updates"], _ = timed(session.run, UPDATE_BINARY, [])
        return steps

    steps = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["steps"] = steps
    _replay_steps[kind] = steps
    report.add(
        "Fig 7b — replay time per step (seconds)",
        ("config", "initialization", "first_select", "other_selects",
         "inserts", "updates"),
        (kind, steps["initialization"], steps["first_select"],
         steps["other_selects"], steps["inserts"], steps["updates"]))


def test_fig7_shapes(benchmark):
    """The qualitative claims of Section IX-B/IX-C."""
    if len(_audit_steps) < 3 or len(_replay_steps) < 3:
        pytest.skip("step measurements incomplete")
    benchmark.pedantic(_check_fig7_shapes, rounds=1, iterations=1)


def _check_fig7_shapes():
    baseline = _audit_steps["postgres+ptu"]
    included = _audit_steps["server-included"]
    excluded = _audit_steps["server-excluded"]
    # server-included pays for provenance on selects and updates
    assert included["first_select"] > baseline["first_select"]
    assert included["other_selects"] > baseline["other_selects"]
    assert included["updates"] > baseline["updates"]
    # the Insert step is the cheap one for server-included: its
    # relative overhead stays below the Select/Update overheads
    insert_overhead = included["inserts"] / baseline["inserts"]
    select_overhead = included["other_selects"] / baseline["other_selects"]
    assert insert_overhead < select_overhead
    # server-excluded audits cheaper than server-included on selects
    assert excluded["other_selects"] < included["other_selects"]

    # replay: server-excluded answers queries fastest
    replay_included = _replay_steps["included"]
    replay_excluded = _replay_steps["excluded"]
    replay_ptu = _replay_steps["ptu"]
    assert replay_excluded["other_selects"] < \
        replay_included["other_selects"]
    assert replay_excluded["other_selects"] < replay_ptu["other_selects"]
    # server-included restores fewer tuples than the PTU full DB
    assert replay_included["initialization"] <= \
        replay_ptu["initialization"] * 1.5
