"""Figure 8 — per-query execution time across all 18 Table II variants.

8a (audit): time of one audited query execution under
  * PostgreSQL + PTU (OS-only), * server-included, * server-excluded.

8b (replay): time of one replayed query execution from
  * a PTU package (full DB), * server-included, * server-excluded
    packages, plus * the VM model applied to the native time.

Shape assertions (Section IX-C/IX-D):
  * audit time grows with selectivity within each query family and the
    relative overhead of server-included stays roughly stable,
  * server-excluded replay is fastest in (almost) all cases — Q3 (one
    result row) being the extreme case,
  * VM replay is the slowest configuration.
"""

from __future__ import annotations

import pytest

from repro.baselines import VMIModel
from repro.core.replay import ReplaySession
from repro.monitor import AuditSession
from repro.workloads.app import SELECT_BINARY
from repro.workloads.tpch.queries import table2_variants

from benchmarks.conftest import (
    ALL_VARIANTS,
    fresh_world,
    run_select_step,
    set_query,
    timed,
)

AUDIT_MODES = [("postgres+ptu", "os-only"),
               ("server-included", "server-included"),
               ("server-excluded", "server-excluded")]

_audit_times: dict[str, dict[str, float]] = {}
_replay_times: dict[str, dict[str, float]] = {}
_native_times: dict[str, float] = {}


@pytest.fixture(scope="module")
def audit_worlds(tmp_path_factory):
    """One monitored world per audit mode, reused across variants.

    The world's tables are provenance-enabled by a warm-up query so
    per-variant measurements reflect the steady-state overhead
    (Fig 8a's per-query points, not Fig 7a's cold-cache bar).
    """
    worlds = {}
    for label, mode in AUDIT_MODES:
        world = fresh_world(
            tmp_path_factory.mktemp(f"fig8-{label}"),
            with_data_dir=False)
        session = AuditSession(world.vos, mode, database=world.database)
        session.__enter__()
        # warm up: provenance-enable every table the sweep touches
        for warmup in ("SELECT count(*) FROM lineitem WHERE l_orderkey < 0",
                       "SELECT count(*) FROM orders WHERE o_orderkey < 0",
                       "SELECT count(*) FROM customer WHERE c_custkey < 0"):
            set_query(world, warmup)
            run_select_step(world, 1)
        worlds[label] = (world, session)
    yield worlds
    for world, session in worlds.values():
        session.__exit__(None, None, None)


@pytest.mark.parametrize("variant", ALL_VARIANTS,
                         ids=[v.query_id for v in ALL_VARIANTS])
def test_fig8a_audit(benchmark, audit_worlds, report, variant):
    row = [variant.query_id]
    for label, _mode in AUDIT_MODES:
        world, _session = audit_worlds[label]
        set_query(world, variant.sql)
        seconds, _ = timed(run_select_step, world, 1)
        _audit_times.setdefault(label, {})[variant.query_id] = seconds
        row.append(seconds)
    # the benchmark fixture times the audited server-included query,
    # the figure's most interesting series
    world, _session = audit_worlds["server-included"]
    set_query(world, variant.sql)
    benchmark.pedantic(run_select_step, args=(world, 1), rounds=2,
                       iterations=1)
    report.add(
        "Fig 8a — audited query time (seconds)",
        ("variant", "postgres+ptu", "server-included", "server-excluded"),
        tuple(row))


@pytest.mark.parametrize("variant", ALL_VARIANTS,
                         ids=[v.query_id for v in ALL_VARIANTS])
def test_fig8b_replay(benchmark, package_cache, report, variant):
    times: dict[str, float] = {}
    for kind in ("ptu", "included", "excluded"):
        package_dir = package_cache.get(variant, kind)
        world = package_cache.world_for(variant.query_id, kind)
        session = ReplaySession(package_dir, world.registry,
                                scratch_dir=package_dir / ".scratch8b")
        session.prepare()
        if kind == "ptu":
            # PTU replays re-execute the query on the full restored DB;
            # its packaged query file already holds this variant's SQL
            pass
        if kind == "excluded":
            # warm through recorded inserts so the log cursor reaches
            # the first select
            from repro.workloads.app import INSERT_BINARY
            session.run(INSERT_BINARY, [])
        seconds, _ = timed(session.run, SELECT_BINARY, ["1"])
        times[kind] = seconds
    # native (non-audited) execution for the VM model
    native_world = package_cache.world_for(variant.query_id, "ptu")
    native_seconds, _ = timed(native_world.database.query, variant.sql)
    _native_times[variant.query_id] = native_seconds
    times["vm"] = VMIModel().replay_seconds(native_seconds)
    for kind, seconds in times.items():
        _replay_times.setdefault(kind, {})[variant.query_id] = seconds

    package_dir = package_cache.get(variant, "excluded")
    world = package_cache.world_for(variant.query_id, "excluded")

    def replay_excluded_select():
        session = ReplaySession(package_dir, world.registry,
                                scratch_dir=package_dir / ".scratchb",
                                allow_skip=True)
        session.prepare()
        return session.run(SELECT_BINARY, ["1"])

    benchmark.pedantic(replay_excluded_select, rounds=2, iterations=1)
    report.add(
        "Fig 8b — replayed query time (seconds)",
        ("variant", "ptu", "server-included", "server-excluded", "vm"),
        (variant.query_id, times["ptu"], times["included"],
         times["excluded"], times["vm"]))


def test_fig8_shapes(benchmark):
    if not _audit_times or not _replay_times:
        pytest.skip("measurements incomplete")
    benchmark.pedantic(_check_fig8_shapes, rounds=1, iterations=1)


def _check_fig8_shapes():
    included = _audit_times["server-included"]
    baseline = _audit_times["postgres+ptu"]
    # audit time grows with selectivity within Q1: last variant reads
    # 25x the tuples of the first
    assert included["Q1-5"] > included["Q1-1"]
    # server-included overhead exists across the board
    slower = sum(1 for qid in included if included[qid] > baseline[qid])
    assert slower >= len(included) * 0.8

    # replay: server-excluded beats server-included almost everywhere
    excluded = _replay_times["excluded"]
    included_replay = _replay_times["included"]
    vm = _replay_times["vm"]
    wins = sum(1 for qid in excluded
               if excluded[qid] < included_replay[qid])
    assert wins >= len(excluded) * 0.8
    # Q3 (single result row) is the extreme case for server-excluded
    assert excluded["Q3-1"] < included_replay["Q3-1"] / 2
    # the VM is the slowest replay configuration on average
    mean = lambda values: sum(values.values()) / len(values)
    assert mean(vm) > mean(excluded)
    assert mean(vm) > mean(included_replay)
