"""Section IX-F — the virtual-machine-image comparison.

The paper provisions a bare Debian VMI with the DB server and data:
8.2 GB, ~80x the average LDV package (100 MB), with the slowest replay
times of Fig 8b. Here the VMI model is fed the *measured* server and
data byte counts of the benchmark worlds, and the LDV sizes are the
measured package totals.
"""

from __future__ import annotations

import statistics

import pytest

from repro.baselines import VMIModel
from repro.core.package import Package
from repro.workloads.tpch.queries import variant_by_id

from benchmarks.conftest import BENCH_CONFIG

VARIANTS = [variant_by_id(BENCH_CONFIG, qid)
            for qid in ("Q1-1", "Q2-2", "Q3-1", "Q4-3")]


def test_vmi_size_ratio(benchmark, package_cache, report):
    def build():
        sizes = []
        for variant in VARIANTS:
            for kind in ("included", "excluded"):
                package = Package.load(package_cache.get(variant, kind))
                sizes.append(package.total_bytes())
        return sizes

    ldv_sizes = benchmark.pedantic(build, rounds=1, iterations=1)
    average_ldv = statistics.mean(ldv_sizes)

    # measured server + data bytes from one of the worlds
    world = package_cache.world_for("Q1-1", "included")
    server_bytes = sum(world.vos.fs.size_of(path)
                       for path in world.server_binary_paths)
    data_bytes = world.database.catalog.data_directory.total_bytes()
    app_bytes = world.vos.fs.size_of("/bin/tpch_app")

    model = VMIModel()
    image = model.image_bytes(server_bytes, data_bytes, app_bytes)
    ratio = image / average_ldv

    report.add(
        "Section IX-F — VMI comparison",
        ("vmi_bytes", "avg_ldv_bytes", "ratio"),
        (image, int(average_ldv), round(ratio, 1)))

    # the VMI dwarfs LDV packages; the paper reports ~80x at SF 1.
    # at bench scale the data directory is smaller, so only the
    # direction and order of magnitude are asserted
    assert ratio > 10

    # replay inside the VM is slower than native for any query time
    assert model.replay_seconds(0.05) > 0.05
    assert model.replay_seconds(0.05, include_boot=True) > \
        model.boot_seconds
