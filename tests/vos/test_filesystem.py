"""Virtual filesystem tests."""

import pytest

from repro.errors import (
    FileExistsVosError,
    FileNotFoundVosError,
    FileSystemError,
    IsADirectoryVosError,
    NotADirectoryVosError,
)
from repro.vos.filesystem import VirtualFileSystem, normalize


@pytest.fixture
def fs():
    vfs = VirtualFileSystem()
    vfs.mkdir("/data", parents=True)
    vfs.write_file("/data/a.txt", b"hello")
    return vfs


class TestPaths:
    def test_normalize_collapses_dots(self):
        assert normalize("/a/b/../c/./d") == "/a/c/d"

    def test_relative_path_rejected(self):
        with pytest.raises(FileSystemError):
            normalize("relative/path")


class TestFiles:
    def test_write_and_read(self, fs):
        assert fs.read_file("/data/a.txt") == b"hello"

    def test_text_helpers(self, fs):
        fs.write_text("/data/t.txt", "héllo")
        assert fs.read_text("/data/t.txt") == "héllo"

    def test_overwrite_replaces_content(self, fs):
        fs.write_file("/data/a.txt", b"new")
        assert fs.read_file("/data/a.txt") == b"new"

    def test_append(self, fs):
        fs.append_file("/data/a.txt", b" world")
        assert fs.read_file("/data/a.txt") == b"hello world"

    def test_append_creates_missing_file(self, fs):
        fs.append_file("/data/new.log", b"x")
        assert fs.read_file("/data/new.log") == b"x"

    def test_create_parents(self, fs):
        fs.write_file("/deep/nested/file", b"x", create_parents=True)
        assert fs.read_file("/deep/nested/file") == b"x"

    def test_write_without_parent_raises(self, fs):
        with pytest.raises(FileNotFoundVosError):
            fs.write_file("/missing/file", b"x")

    def test_read_missing_raises(self, fs):
        with pytest.raises(FileNotFoundVosError):
            fs.read_file("/nope")

    def test_read_directory_raises(self, fs):
        with pytest.raises(IsADirectoryVosError):
            fs.read_file("/data")

    def test_write_over_directory_raises(self, fs):
        with pytest.raises(IsADirectoryVosError):
            fs.write_file("/data", b"x")

    def test_remove(self, fs):
        fs.remove("/data/a.txt")
        assert not fs.exists("/data/a.txt")

    def test_remove_missing_raises(self, fs):
        with pytest.raises(FileNotFoundVosError):
            fs.remove("/ghost")

    def test_remove_directory_raises(self, fs):
        with pytest.raises(IsADirectoryVosError):
            fs.remove("/data")

    def test_size_of_file(self, fs):
        assert fs.size_of("/data/a.txt") == 5


class TestDirectories:
    def test_mkdir_and_listdir(self, fs):
        fs.mkdir("/data/sub")
        assert "sub" in fs.listdir("/data")

    def test_mkdir_parents(self, fs):
        fs.mkdir("/x/y/z", parents=True)
        assert fs.is_dir("/x/y/z")

    def test_mkdir_existing_raises(self, fs):
        with pytest.raises(FileExistsVosError):
            fs.mkdir("/data")

    def test_mkdir_exist_ok(self, fs):
        fs.mkdir("/data", exist_ok=True)

    def test_mkdir_without_parent_raises(self, fs):
        with pytest.raises(FileNotFoundVosError):
            fs.mkdir("/a/b/c")

    def test_listdir_on_file_raises(self, fs):
        with pytest.raises(NotADirectoryVosError):
            fs.listdir("/data/a.txt")

    def test_remove_tree(self, fs):
        fs.write_file("/data/sub/f", b"x", create_parents=True)
        fs.remove_tree("/data")
        assert not fs.exists("/data")

    def test_predicates(self, fs):
        assert fs.is_dir("/data")
        assert fs.is_file("/data/a.txt")
        assert not fs.is_dir("/data/a.txt")
        assert not fs.exists("/nope")


class TestSymlinks:
    def test_symlink_read_through(self, fs):
        fs.symlink("/data/link", "/data/a.txt")
        assert fs.read_file("/data/link") == b"hello"

    def test_readlink(self, fs):
        fs.symlink("/data/link", "/data/a.txt")
        assert fs.readlink("/data/link") == "/data/a.txt"

    def test_resolve_chain(self, fs):
        fs.symlink("/data/l1", "/data/a.txt")
        fs.symlink("/data/l2", "/data/l1")
        assert fs.resolve("/data/l2") == "/data/a.txt"

    def test_is_symlink(self, fs):
        fs.symlink("/data/link", "/data/a.txt")
        assert fs.is_symlink("/data/link")
        assert not fs.is_symlink("/data/a.txt")

    def test_symlink_loop_detected(self, fs):
        fs.symlink("/data/x", "/data/y")
        fs.symlink("/data/y", "/data/x")
        with pytest.raises(FileSystemError):
            fs.read_file("/data/x")

    def test_write_through_symlink(self, fs):
        fs.symlink("/data/link", "/data/a.txt")
        fs.write_file("/data/link", b"via link")
        assert fs.read_file("/data/a.txt") == b"via link"

    def test_symlink_over_existing_raises(self, fs):
        with pytest.raises(FileExistsVosError):
            fs.symlink("/data/a.txt", "/elsewhere")


class TestTraversal:
    @pytest.fixture
    def tree(self, fs):
        fs.write_file("/data/sub/deep.txt", b"abc", create_parents=True)
        fs.write_file("/other/b.bin", b"1234", create_parents=True)
        return fs

    def test_walk_yields_all_levels(self, tree):
        directories = [entry[0] for entry in tree.walk("/")]
        assert "/" in directories
        assert "/data/sub" in directories

    def test_all_files(self, tree):
        assert set(tree.all_files("/")) == {
            "/data/a.txt", "/data/sub/deep.txt", "/other/b.bin"}

    def test_all_files_scoped(self, tree):
        assert tree.all_files("/other") == ["/other/b.bin"]

    def test_total_size(self, tree):
        assert tree.total_size("/") == 5 + 3 + 4

    def test_size_of_directory_recursive(self, tree):
        assert tree.size_of("/data") == 8


class TestHostTransfer:
    def test_export_file(self, fs, tmp_path):
        written = fs.export_file("/data/a.txt", tmp_path / "out" / "a.txt")
        assert written == 5
        assert (tmp_path / "out" / "a.txt").read_bytes() == b"hello"

    def test_export_tree(self, fs, tmp_path):
        fs.write_file("/data/sub/x", b"12", create_parents=True)
        total = fs.export_tree("/data", tmp_path / "pkg")
        assert total == 7
        assert (tmp_path / "pkg" / "sub" / "x").read_bytes() == b"12"

    def test_import_tree_round_trip(self, fs, tmp_path):
        fs.write_file("/data/sub/x", b"12", create_parents=True)
        fs.export_tree("/", tmp_path / "snapshot")
        fresh = VirtualFileSystem()
        count = fresh.import_tree(tmp_path / "snapshot", "/")
        assert count == 2
        assert fresh.read_file("/data/sub/x") == b"12"
        assert fresh.read_file("/data/a.txt") == b"hello"

    def test_import_into_prefix(self, fs, tmp_path):
        fs.export_tree("/data", tmp_path / "d")
        fresh = VirtualFileSystem()
        fresh.import_tree(tmp_path / "d", "/restored")
        assert fresh.read_file("/restored/a.txt") == b"hello"
