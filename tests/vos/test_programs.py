"""Program-side API tests: FileHandle modes, traced transports,
context helpers."""

import pytest

from repro.db import Database, DBServer
from repro.errors import BadFileDescriptorError, VosError
from repro.vos import VirtualOS
from repro.vos.programs import program
from repro.vos.ptrace import RecordingTracer
from repro.vos.syscalls import SyscallName


@pytest.fixture
def vos():
    return VirtualOS()


def run(vos, fn):
    vos.register_program("/bin/app", fn)
    return vos.run("/bin/app")


class TestFileHandleModes:
    def test_w_truncates(self, vos):
        vos.fs.write_file("/f", b"old content")
        def app(ctx):
            with ctx.open("/f", "w") as handle:
                handle.write("new")
        run(vos, app)
        assert vos.fs.read_text("/f") == "new"

    def test_a_appends(self, vos):
        vos.fs.write_file("/f", b"start-")
        def app(ctx):
            with ctx.open("/f", "a") as handle:
                handle.write("end")
        run(vos, app)
        assert vos.fs.read_text("/f") == "start-end"

    def test_a_creates_missing(self, vos):
        def app(ctx):
            with ctx.open("/log", "ab") as handle:
                handle.write(b"x")
        run(vos, app)
        assert vos.fs.read_file("/log") == b"x"

    def test_multiple_writes_accumulate(self, vos):
        def app(ctx):
            with ctx.open("/f", "w") as handle:
                handle.write("a")
                handle.write("b")
                handle.write("c")
        run(vos, app)
        assert vos.fs.read_text("/f") == "abc"

    def test_write_to_read_handle_raises(self, vos):
        vos.fs.write_file("/f", b"x")
        def app(ctx):
            with ctx.open("/f", "r") as handle:
                with pytest.raises(BadFileDescriptorError):
                    handle.write(b"y")
        run(vos, app)

    def test_unsupported_mode_raises(self, vos):
        def app(ctx):
            with pytest.raises(VosError):
                ctx.open("/f", "r+")
        run(vos, app)

    def test_read_text_helper(self, vos):
        vos.fs.write_file("/f", "héllo".encode())
        captured = []
        run(vos, lambda ctx: captured.append(ctx.read_text("/f")))
        assert captured == ["héllo"]

    def test_write_returns_byte_count(self, vos):
        counts = []
        def app(ctx):
            with ctx.open("/f", "w") as handle:
                counts.append(handle.write("héllo"))
        run(vos, app)
        assert counts == [len("héllo".encode())]

    def test_double_close_is_noop(self, vos):
        vos.fs.write_file("/f", b"x")
        tracer = RecordingTracer(only={SyscallName.CLOSE})
        vos.attach_tracer(tracer)
        def app(ctx):
            handle = ctx.open("/f")
            handle.close()
            handle.close()
        run(vos, app)
        assert len(tracer.events) == 1


class TestTracedDBTransport:
    def test_send_recv_sizes_reported(self, vos):
        database = Database(clock=vos.clock)
        database.execute("CREATE TABLE t (x integer)")
        vos.register_db_server("main", DBServer(database).transport())
        tracer = RecordingTracer(only={SyscallName.SEND,
                                       SyscallName.RECV})
        vos.attach_tracer(tracer)
        def app(ctx):
            client = ctx.connect_db("main")
            client.query("SELECT 1")
            client.close()
        run(vos, app)
        sends = [e for e in tracer.events if e.name is SyscallName.SEND]
        recvs = [e for e in tracer.events if e.name is SyscallName.RECV]
        # connect + query + close = 3 round trips
        assert len(sends) == len(recvs) == 3
        assert all(event.result > 0 for event in sends + recvs)
        assert all(event.arg("server") == "main"
                   for event in sends + recvs)

    def test_program_decorator_marks_function(self):
        @program
        def main(ctx):
            return 0
        assert main.__vos_program__ is True


class TestContextHelpers:
    def test_pid_property(self, vos):
        pids = []
        process = run(vos, lambda ctx: pids.append(ctx.pid))
        assert pids == [process.pid]

    def test_mkdir_parents(self, vos):
        run(vos, lambda ctx: ctx.mkdir("/a", parents=True))
        assert vos.fs.is_dir("/a")

    def test_append_file_helper_emits_syscalls(self, vos):
        tracer = RecordingTracer(only={SyscallName.OPEN,
                                       SyscallName.WRITE,
                                       SyscallName.CLOSE})
        vos.attach_tracer(tracer)
        run(vos, lambda ctx: ctx.append_file("/log", "entry\n"))
        names = [event.name for event in tracer.events]
        assert names == [SyscallName.OPEN, SyscallName.WRITE,
                         SyscallName.CLOSE]
