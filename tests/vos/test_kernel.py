"""Kernel, process, syscall, and tracer tests."""

import pytest

from repro.db import Database, DBServer
from repro.errors import (
    BadFileDescriptorError,
    ProcessError,
    ProgramNotFoundError,
    VosError,
)
from repro.vos import VirtualOS
from repro.vos.process import ProcessState
from repro.vos.ptrace import RecordingTracer
from repro.vos.syscalls import SyscallName


@pytest.fixture
def vos():
    return VirtualOS()


@pytest.fixture
def tracer(vos):
    recorder = RecordingTracer()
    vos.attach_tracer(recorder)
    return recorder


class TestProgramRegistration:
    def test_register_writes_binary_file(self, vos):
        vos.register_program("/bin/app", lambda ctx: 0, size=2048)
        assert vos.fs.size_of("/bin/app") == 2048
        assert vos.fs.read_file("/bin/app").startswith(b"\x7fELF")

    def test_has_program(self, vos):
        vos.register_program("/bin/app", lambda ctx: 0)
        assert vos.has_program("/bin/app")
        assert not vos.has_program("/bin/ghost")

    def test_run_unregistered_raises(self, vos):
        with pytest.raises(ProgramNotFoundError):
            vos.run("/bin/ghost")

    def test_program_resolved_through_symlink(self, vos):
        vos.register_program("/opt/app-1.0/bin/app", lambda ctx: 7)
        vos.fs.mkdir("/usr/bin", parents=True)
        vos.fs.symlink("/usr/bin/app", "/opt/app-1.0/bin/app")
        assert vos.run("/usr/bin/app").exit_code == 7


class TestProcessLifecycle:
    def test_exit_code_from_return(self, vos):
        vos.register_program("/bin/ok", lambda ctx: None)
        vos.register_program("/bin/fail", lambda ctx: 3)
        assert vos.run("/bin/ok").exit_code == 0
        assert vos.run("/bin/fail").exit_code == 3

    def test_process_state_transitions(self, vos):
        states = []
        vos.register_program(
            "/bin/app", lambda ctx: states.append(ctx.process.state))
        process = vos.run("/bin/app")
        assert states == [ProcessState.RUNNING]
        assert process.state is ProcessState.EXITED

    def test_double_exit_raises(self, vos):
        vos.register_program("/bin/app", lambda ctx: 0)
        process = vos.run("/bin/app")
        with pytest.raises(ProcessError):
            process.exit(0, 99)

    def test_exception_still_emits_exit(self, vos, tracer):
        def boom(ctx):
            raise RuntimeError("boom")
        vos.register_program("/bin/boom", boom)
        with pytest.raises(RuntimeError):
            vos.run("/bin/boom")
        exits = tracer.of(SyscallName.EXIT)
        assert exits and exits[0].arg("code") == 1

    def test_spawn_emits_fork_and_execve(self, vos, tracer):
        vos.register_program("/bin/child", lambda ctx: 0)
        vos.register_program(
            "/bin/parent", lambda ctx: ctx.spawn("/bin/child").exit_code)
        vos.run("/bin/parent")
        forks = tracer.of(SyscallName.FORK)
        assert len(forks) == 1
        child_pid = forks[0].arg("child")
        execs = [e for e in tracer.of(SyscallName.EXECVE)
                 if e.pid == child_pid]
        assert execs[0].arg("path") == "/bin/child"

    def test_genealogy_recorded(self, vos):
        vos.register_program("/bin/child", lambda ctx: 0)
        vos.register_program(
            "/bin/parent", lambda ctx: ctx.spawn("/bin/child").exit_code)
        parent = vos.run("/bin/parent")
        children = vos.processes.children_of(parent.pid)
        assert len(children) == 1
        assert children[0].binary == "/bin/child"

    def test_argv_and_env_passed(self, vos):
        seen = {}
        def app(ctx):
            seen["argv"] = ctx.argv
            seen["env"] = dict(ctx.env)
        vos.register_program("/bin/app", app)
        vos.run("/bin/app", argv=["--fast"], env={"MODE": "test"})
        assert seen["argv"] == ["--fast"]
        assert seen["env"] == {"MODE": "test"}

    def test_child_inherits_env(self, vos):
        seen = {}
        vos.register_program(
            "/bin/child", lambda ctx: seen.update(ctx.env) or 0)
        vos.register_program(
            "/bin/parent",
            lambda ctx: ctx.spawn("/bin/child", env={"EXTRA": "1"}).exit_code)
        vos.run("/bin/parent", env={"BASE": "x"})
        assert seen == {"BASE": "x", "EXTRA": "1"}


class TestFileIO:
    def test_open_read_close_events(self, vos, tracer):
        vos.fs.write_file("/in.txt", b"data")
        def app(ctx):
            with ctx.open("/in.txt") as handle:
                assert handle.read() == b"data"
        vos.register_program("/bin/app", app)
        vos.run("/bin/app")
        names = [event.name for event in tracer.events if event.pid != 0]
        assert SyscallName.OPEN in names
        assert SyscallName.READ in names
        assert SyscallName.CLOSE in names

    def test_open_before_close_ticks_increase(self, vos, tracer):
        vos.fs.write_file("/in.txt", b"data")
        vos.register_program("/bin/app",
                             lambda ctx: len(ctx.read_file("/in.txt")))
        vos.run("/bin/app")
        opens = tracer.of(SyscallName.OPEN)
        closes = tracer.of(SyscallName.CLOSE)
        assert opens[0].tick < closes[0].tick

    def test_write_file_appears_in_fs(self, vos):
        vos.register_program(
            "/bin/app", lambda ctx: ctx.write_file("/out.txt", "result"))
        vos.run("/bin/app")
        assert vos.fs.read_text("/out.txt") == "result"

    def test_append_file(self, vos):
        vos.fs.write_file("/log", b"a")
        vos.register_program("/bin/app",
                             lambda ctx: ctx.append_file("/log", "b"))
        vos.run("/bin/app")
        assert vos.fs.read_text("/log") == "ab"

    def test_read_from_write_handle_raises(self, vos):
        def app(ctx):
            with ctx.open("/x", "w") as handle:
                with pytest.raises(BadFileDescriptorError):
                    handle.read()
        vos.register_program("/bin/app", app)
        vos.run("/bin/app")

    def test_use_after_close_raises(self, vos):
        vos.fs.write_file("/x", b"1")
        def app(ctx):
            handle = ctx.open("/x")
            handle.close()
            with pytest.raises(BadFileDescriptorError):
                handle.read()
        vos.register_program("/bin/app", app)
        vos.run("/bin/app")

    def test_leaked_fds_closed_at_exit(self, vos, tracer):
        vos.fs.write_file("/x", b"1")
        vos.register_program("/bin/app", lambda ctx: ctx.open("/x") and 0)
        vos.run("/bin/app")
        assert len(tracer.of(SyscallName.CLOSE)) == 1

    def test_fds_start_at_three(self, vos):
        vos.fs.write_file("/x", b"1")
        fds = []
        def app(ctx):
            fds.append(ctx.open("/x").fd)
            fds.append(ctx.open("/x").fd)
        vos.register_program("/bin/app", app)
        vos.run("/bin/app")
        assert fds == [3, 4]

    def test_unlink_and_mkdir_emit_events(self, vos, tracer):
        vos.fs.write_file("/x", b"1")
        def app(ctx):
            ctx.mkdir("/newdir")
            ctx.unlink("/x")
        vos.register_program("/bin/app", app)
        vos.run("/bin/app")
        assert tracer.of(SyscallName.MKDIR)
        assert tracer.of(SyscallName.UNLINK)
        assert not vos.fs.exists("/x")
        assert vos.fs.is_dir("/newdir")


class TestDBIntegration:
    @pytest.fixture
    def served(self, vos):
        database = Database(clock=vos.clock)
        database.execute("CREATE TABLE t (x integer)")
        database.execute("INSERT INTO t VALUES (1), (2)")
        vos.register_db_server("main", DBServer(database).transport())
        return database

    def test_connect_and_query(self, vos, served, tracer):
        rows = []
        def app(ctx):
            client = ctx.connect_db("main")
            rows.extend(client.query("SELECT count(*) FROM t"))
        vos.register_program("/bin/app", app)
        vos.run("/bin/app")
        assert rows == [(2,)]
        assert tracer.of(SyscallName.CONNECT)
        assert tracer.of(SyscallName.SEND)
        assert tracer.of(SyscallName.RECV)

    def test_connect_unknown_server_raises(self, vos):
        vos.register_program("/bin/app",
                             lambda ctx: ctx.connect_db("ghost") and 0)
        with pytest.raises(VosError):
            vos.run("/bin/app")

    def test_client_decorator_applied(self, vos, served):
        decorated = []
        vos.client_decorators.append(
            lambda client, process: decorated.append(
                (client.client_name, process.pid)))
        def app(ctx):
            ctx.connect_db("main").close()
        vos.register_program("/bin/app", app)
        process = vos.run("/bin/app")
        assert decorated == [("app", process.pid)]

    def test_leaked_connections_closed_at_exit(self, vos, served):
        clients = []
        def app(ctx):
            clients.append(ctx.connect_db("main"))
        vos.register_program("/bin/app", app)
        vos.run("/bin/app")
        assert not clients[0].connected

    def test_db_shares_logical_clock(self, vos, served):
        """Engine version stamps interleave with syscall ticks."""
        ticks = []
        def app(ctx):
            client = ctx.connect_db("main")
            before = vos.clock.now
            client.execute("INSERT INTO t VALUES (3)")
            ticks.append((before, vos.clock.now))
        vos.register_program("/bin/app", app)
        vos.run("/bin/app")
        heap = served.catalog.get_table("t")
        insert_version = max(heap.versions.values())
        before, after = ticks[0]
        assert before < insert_version < after


class TestTracers:
    def test_detach_stops_events(self, vos, tracer):
        vos.register_program("/bin/app", lambda ctx: 0)
        vos.detach_tracer(tracer)
        vos.run("/bin/app")
        assert tracer.events == []

    def test_filtered_recording(self, vos):
        recorder = RecordingTracer(only={SyscallName.EXECVE})
        vos.attach_tracer(recorder)
        vos.register_program("/bin/app", lambda ctx: 0)
        vos.run("/bin/app")
        assert {event.name for event in recorder.events} == {
            SyscallName.EXECVE}

    def test_events_have_increasing_ticks(self, vos, tracer):
        vos.fs.write_file("/x", b"1")
        vos.register_program("/bin/app",
                             lambda ctx: len(ctx.read_file("/x")))
        vos.run("/bin/app")
        ticks = [event.tick for event in tracer.events]
        assert ticks == sorted(ticks)
        assert len(set(ticks)) == len(ticks)
