"""Suite-wide pytest configuration."""


def pytest_addoption(parser):
    parser.addoption(
        "--seeds", type=int, default=None, metavar="N",
        help="number of random seeds for the differential SQL oracle "
             "(default: the suite's pinned seed count)")
    parser.addoption(
        "--chaos-campaigns", type=int, default=8, metavar="N",
        help="number of seeded fault campaigns the chaos suite runs "
             "(CI smoke uses 50; every failure message and test id "
             "carries the seed)")


def pytest_generate_tests(metafunc):
    if "campaign_seed" in metafunc.fixturenames:
        campaigns = metafunc.config.getoption("--chaos-campaigns")
        metafunc.parametrize("campaign_seed", range(campaigns))
