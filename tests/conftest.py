"""Suite-wide pytest configuration."""


def pytest_addoption(parser):
    parser.addoption(
        "--seeds", type=int, default=None, metavar="N",
        help="number of random seeds for the differential SQL oracle "
             "(default: the suite's pinned seed count)")
