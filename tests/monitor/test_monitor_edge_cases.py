"""Monitor edge cases: transactions, COPY, multiple connections and
servers, PROVENANCE issued by the application itself."""

import pytest

from repro.core import ldv_audit, ldv_exec
from repro.db import Database, DBServer
from repro.monitor import AuditSession
from repro.vos import VirtualOS


def make_world(extra_servers=()):
    vos = VirtualOS()
    database = Database(clock=vos.clock)
    database.execute("CREATE TABLE t (id integer PRIMARY KEY, v integer)")
    database.execute("INSERT INTO t VALUES (1, 10), (2, 20), (3, 30)")
    vos.register_db_server("main", DBServer(database).transport())
    extra = {}
    for name in extra_servers:
        other = Database(clock=vos.clock)
        other.execute("CREATE TABLE side (k integer)")
        other.execute("INSERT INTO side VALUES (7)")
        vos.register_db_server(name, DBServer(other).transport())
        extra[name] = other
    vos.fs.write_file("/usr/lib/dbms/pg", b"\x7fELF" + b"\0" * 256,
                      create_parents=True)
    return vos, database, extra


class TestTransactionsUnderAudit:
    def test_committed_transaction_round_trips(self, tmp_path):
        vos, database, _ = make_world()

        def app(ctx):
            client = ctx.connect_db("main")
            client.execute("BEGIN")
            client.execute("INSERT INTO t VALUES (10, 100)")
            client.execute("UPDATE t SET v = v + 1 WHERE id = 1")
            client.execute("COMMIT")
            rows = client.query("SELECT sum(v) FROM t")
            ctx.write_file("/out.txt", str(rows[0][0]))
            client.close()

        vos.register_program("/bin/app", app)
        ldv_audit(vos, "/bin/app", tmp_path / "pkg",
                  mode="server-included", database=database,
                  server_name="main",
                  server_binary_paths=["/usr/lib/dbms/pg"])
        original = vos.fs.read_file("/out.txt")
        result = ldv_exec(tmp_path / "pkg", {"/bin/app": app},
                          scratch_dir=tmp_path / "s")
        assert result.outputs["/out.txt"] == original
        assert result.validated

    def test_rolled_back_transaction_round_trips(self, tmp_path):
        vos, database, _ = make_world()

        def app(ctx):
            client = ctx.connect_db("main")
            client.execute("BEGIN")
            client.execute("INSERT INTO t VALUES (10, 100)")
            client.execute("ROLLBACK")
            rows = client.query("SELECT count(*) FROM t")
            ctx.write_file("/out.txt", str(rows[0][0]))
            client.close()

        vos.register_program("/bin/app", app)
        ldv_audit(vos, "/bin/app", tmp_path / "pkg",
                  mode="server-included", database=database,
                  server_name="main",
                  server_binary_paths=["/usr/lib/dbms/pg"])
        assert vos.fs.read_text("/out.txt") == "3"
        result = ldv_exec(tmp_path / "pkg", {"/bin/app": app},
                          scratch_dir=tmp_path / "s")
        assert result.outputs["/out.txt"] == b"3"
        assert result.validated

    def test_rollback_round_trips_server_excluded(self, tmp_path):
        vos, database, _ = make_world()

        def app(ctx):
            client = ctx.connect_db("main")
            client.execute("BEGIN")
            client.execute("DELETE FROM t WHERE id = 1")
            client.execute("ROLLBACK")
            rows = client.query("SELECT count(*) FROM t")
            ctx.write_file("/out.txt", str(rows[0][0]))
            client.close()

        vos.register_program("/bin/app", app)
        ldv_audit(vos, "/bin/app", tmp_path / "pkg",
                  mode="server-excluded", database=database,
                  server_name="main")
        result = ldv_exec(tmp_path / "pkg", {"/bin/app": app})
        assert result.outputs["/out.txt"] == b"3"


class TestCopyUnderAudit:
    def test_copy_from_counts_as_app_created(self, tmp_path):
        vos, database, _ = make_world()
        database.write_file = lambda path, text: vos.fs.write_text(
            path, text, create_parents=True)
        database.read_file = lambda path: vos.fs.read_text(path)
        vos.fs.write_file("/data/in.csv", "50,500\n51,501\n",
                          create_parents=True)

        def app(ctx):
            client = ctx.connect_db("main")
            client.execute("COPY t FROM '/data/in.csv'")
            rows = client.query("SELECT count(*) FROM t")
            ctx.write_file("/out.txt", str(rows[0][0]))
            client.close()

        vos.register_program("/bin/app", app)
        report = ldv_audit(vos, "/bin/app", tmp_path / "pkg",
                           mode="server-included", database=database,
                           server_name="main",
                           server_binary_paths=["/usr/lib/dbms/pg"])
        # the bulk-loaded rows are app-created: only the 3 pre-existing
        # rows (read by count(*)) are relevant
        assert report.packaging.tuple_count == 3
        result = ldv_exec(tmp_path / "pkg", {"/bin/app": app},
                          scratch_dir=tmp_path / "s")
        assert result.outputs["/out.txt"] == b"5"


class TestMultipleConnections:
    def test_two_sequential_connections_one_log(self, tmp_path):
        vos, database, _ = make_world()

        def app(ctx):
            first = ctx.connect_db("main")
            first.execute("INSERT INTO t VALUES (10, 1)")
            first.close()
            second = ctx.connect_db("main")
            rows = second.query("SELECT count(*) FROM t")
            ctx.write_file("/out.txt", str(rows[0][0]))
            second.close()

        vos.register_program("/bin/app", app)
        ldv_audit(vos, "/bin/app", tmp_path / "pkg",
                  mode="server-excluded", database=database,
                  server_name="main")
        result = ldv_exec(tmp_path / "pkg", {"/bin/app": app})
        assert result.outputs["/out.txt"] == b"4"
        assert result.replayed_statements == 2

    def test_two_servers_server_excluded(self, tmp_path):
        vos, database, extra = make_world(extra_servers=["side"])

        def app(ctx):
            main = ctx.connect_db("main")
            side = ctx.connect_db("side")
            (total,) = main.query("SELECT sum(v) FROM t")[0]
            (k,) = side.query("SELECT k FROM side")[0]
            ctx.write_file("/out.txt", f"{total},{k}")
            main.close()
            side.close()

        vos.register_program("/bin/app", app)
        ldv_audit(vos, "/bin/app", tmp_path / "pkg",
                  mode="server-excluded", database=database,
                  server_name="main")
        original = vos.fs.read_file("/out.txt")
        # replay provisions stubs for *both* recorded servers
        result = ldv_exec(tmp_path / "pkg", {"/bin/app": app})
        assert result.outputs["/out.txt"] == original

    def test_connected_servers_recorded_in_manifest(self, tmp_path):
        from repro.core.package import Package
        vos, database, _ = make_world(extra_servers=["side"])

        def app(ctx):
            ctx.connect_db("main").close()
            ctx.connect_db("side").close()

        vos.register_program("/bin/app", app)
        ldv_audit(vos, "/bin/app", tmp_path / "pkg",
                  mode="server-excluded", database=database,
                  server_name="main")
        manifest = Package.load(tmp_path / "pkg").manifest
        assert manifest.notes["db_servers"] == ["main", "side"]


class TestAppIssuedProvenance:
    def test_app_can_use_provenance_keyword(self, tmp_path):
        """An application that itself asks for provenance still audits
        and replays cleanly."""
        vos, database, _ = make_world()

        def app(ctx):
            client = ctx.connect_db("main")
            result = client.execute(
                "SELECT PROVENANCE id FROM t WHERE v > 15")
            lineage_size = sum(len(l) for l in result.lineages)
            ctx.write_file("/out.txt", f"{len(result.rows)}:{lineage_size}")
            client.close()

        vos.register_program("/bin/app", app)
        ldv_audit(vos, "/bin/app", tmp_path / "pkg",
                  mode="server-excluded", database=database,
                  server_name="main")
        assert vos.fs.read_text("/out.txt") == "2:2"
        result = ldv_exec(tmp_path / "pkg", {"/bin/app": app})
        assert result.outputs["/out.txt"] == b"2:2"
