"""DB-monitor tests: provenance retrieval, versioning, relevant-tuple
collection, replay-log recording."""

import pytest

from repro.db import Database, DBServer
from repro.db.provtypes import TupleRef
from repro.errors import AuditError
from repro.monitor import AuditSession
from repro.monitor.dbmonitor import DBMonitor, RelevantTupleStore, ReplayLog
from repro.provenance.combined import TraceBuilder
from repro.vos import VirtualOS


@pytest.fixture
def world():
    vos = VirtualOS()
    database = Database(clock=vos.clock)
    database.execute("CREATE TABLE t (id integer, v integer)")
    database.execute("INSERT INTO t VALUES (1, 10), (2, 20), (3, 30)")
    vos.register_db_server("main", DBServer(database).transport())
    return vos, database


def run_client_app(vos, statements):
    results = []
    def app(ctx):
        client = ctx.connect_db("main")
        for sql in statements:
            results.append(client.execute(sql))
        client.close()
    vos.register_program("/bin/app", app)
    vos.run("/bin/app")
    return results


class TestProvenanceMode:
    def test_query_creates_statement_node_with_run_edge(self, world):
        vos, database = world
        with AuditSession(vos, "server-included", database=database) as s:
            run_client_app(vos, ["SELECT id FROM t WHERE v > 15"])
        trace = s.trace
        (query,) = trace.activities("query")
        runs = [e for e in trace.edges() if e.target == query.node_id
                and e.label == "run"]
        assert len(runs) == 1

    def test_query_lineage_edges(self, world):
        vos, database = world
        with AuditSession(vos, "server-included", database=database) as s:
            run_client_app(vos, ["SELECT id FROM t WHERE v > 15"])
        trace = s.trace
        read_tuples = {e.source for e in trace.edges("hasRead")}
        assert read_tuples == {"tuple:t:2:v1", "tuple:t:3:v1"}
        returned = trace.edges("hasReturned")
        assert len(returned) == 2  # two result tuples
        lineages = sorted(tuple(e.attrs["lineage"]) for e in returned)
        assert lineages == [("tuple:t:2:v1",), ("tuple:t:3:v1",)]

    def test_result_tuples_flow_to_process(self, world):
        vos, database = world
        with AuditSession(vos, "server-included", database=database) as s:
            run_client_app(vos, ["SELECT id FROM t WHERE v > 25"])
        consumed = s.trace.edges("readFromDB")
        assert len(consumed) == 1
        assert consumed[0].source.startswith("tuple:_result_q1")

    def test_relevant_tuples_collected_with_values(self, world):
        vos, database = world
        with AuditSession(vos, "server-included", database=database) as s:
            run_client_app(vos, ["SELECT id FROM t WHERE v > 15"])
        store = s.relevant_tuples
        assert store.tables() == ["t"]
        rows = store.rows_for("t")
        assert [(rowid, values) for rowid, _v, values in rows] == [
            (2, (2, 20)), (3, (3, 30))]

    def test_app_created_tuples_excluded(self, world):
        vos, database = world
        with AuditSession(vos, "server-included", database=database) as s:
            run_client_app(vos, [
                "INSERT INTO t VALUES (4, 99)",
                "SELECT id FROM t WHERE v > 50",
            ])
        assert s.relevant_tuples.tuple_count == 0  # only row 4 matched
        assert TupleRef("t", 4, 10) not in s.relevant_tuples.refs()

    def test_update_reenactment_captures_pre_state(self, world):
        vos, database = world
        with AuditSession(vos, "server-included", database=database) as s:
            run_client_app(vos, ["UPDATE t SET v = 0 WHERE v > 15"])
        rows = s.relevant_tuples.rows_for("t")
        # pre-state values captured before the update destroyed them
        assert sorted(values[1] for _r, _v, values in rows) == [20, 30]

    def test_update_trace_links_versions(self, world):
        vos, database = world
        with AuditSession(vos, "server-included", database=database) as s:
            run_client_app(vos, ["UPDATE t SET v = 0 WHERE id = 1"])
        (update,) = s.trace.activities("update")
        returned = [e for e in s.trace.edges()
                    if e.source == update.node_id
                    and e.label == "hasReturned_update"]
        assert len(returned) == 1
        (lineage_entry,) = returned[0].attrs["lineage"]
        assert lineage_entry.startswith("tuple:t:1:")

    def test_delete_pre_state_captured(self, world):
        vos, database = world
        with AuditSession(vos, "server-included", database=database) as s:
            run_client_app(vos, ["DELETE FROM t WHERE id = 2"])
        rows = s.relevant_tuples.rows_for("t")
        assert [(values) for _r, _v, values in rows] == [(2, 20)]
        assert database.query("SELECT count(*) FROM t") == [(2,)]

    def test_insert_needs_no_provenance_query(self, world):
        vos, database = world
        with AuditSession(vos, "server-included", database=database) as s:
            run_client_app(vos, ["INSERT INTO t VALUES (9, 90)"])
        assert s.db_monitor.provenance_queries_run == 0

    def test_select_runs_one_provenance_query(self, world):
        vos, database = world
        with AuditSession(vos, "server-included", database=database) as s:
            run_client_app(vos, ["SELECT * FROM t"] * 3)
        assert s.db_monitor.provenance_queries_run == 3

    def test_versioning_enabled_on_first_access(self, world):
        vos, database = world
        with AuditSession(vos, "server-included", database=database) as s:
            run_client_app(vos, ["SELECT * FROM t"])
        assert s.db_monitor.versions.is_enabled("t")

    def test_mark_used_stamps_recorded(self, world):
        vos, database = world
        with AuditSession(vos, "server-included", database=database) as s:
            run_client_app(vos, ["SELECT id FROM t WHERE id = 1"])
        stamped = s.db_monitor.versions.all_used_refs()
        assert TupleRef("t", 1, 1) in stamped

    def test_insert_select_lineage(self, world):
        vos, database = world
        database.execute("CREATE TABLE archive (id integer, v integer)")
        with AuditSession(vos, "server-included", database=database) as s:
            run_client_app(vos, [
                "INSERT INTO archive SELECT id, v FROM t WHERE v > 25"])
        # the read source tuple is relevant; the archived copy is not
        refs = s.relevant_tuples.refs()
        assert refs == {TupleRef("t", 3, 1)}

    def test_dedup_across_queries(self, world):
        vos, database = world
        with AuditSession(vos, "server-included", database=database) as s:
            run_client_app(vos, ["SELECT * FROM t", "SELECT * FROM t"])
        assert s.relevant_tuples.tuple_count == 3  # not 6


class TestRecordMode:
    def test_log_records_statements_in_order(self, world):
        vos, database = world
        statements = ["SELECT id FROM t WHERE v > 15",
                      "INSERT INTO t VALUES (4, 40)",
                      "SELECT count(*) FROM t"]
        with AuditSession(vos, "server-excluded", database=database) as s:
            run_client_app(vos, statements)
        log = s.replay_log
        assert [entry.sql for entry in log.entries] == statements
        assert log.entries[0].result_frame["rows"] == [[2], [3]]
        assert log.entries[2].result_frame["rows"] == [[4]]

    def test_no_provenance_queries_in_record_mode(self, world):
        vos, database = world
        with AuditSession(vos, "server-excluded", database=database) as s:
            run_client_app(vos, ["SELECT * FROM t"])
        assert s.db_monitor.provenance_queries_run == 0
        assert s.relevant_tuples.tuple_count == 0

    def test_log_jsonl_round_trip(self, world):
        vos, database = world
        with AuditSession(vos, "server-excluded", database=database) as s:
            run_client_app(vos, ["SELECT * FROM t"])
        text = s.replay_log.to_jsonl()
        restored = ReplayLog.from_jsonl(text)
        assert len(restored) == 1
        assert restored.entries[0].sql == "SELECT * FROM t"
        assert restored.entries[0].result_frame == \
            s.replay_log.entries[0].result_frame

    def test_statement_nodes_still_traced(self, world):
        vos, database = world
        with AuditSession(vos, "server-excluded", database=database) as s:
            run_client_app(vos, ["SELECT * FROM t"])
        assert len(s.trace.activities("query")) == 1


class TestSessionModes:
    def test_os_only_has_no_db_monitor(self, world):
        vos, database = world
        with AuditSession(vos, "os-only") as s:
            run_client_app(vos, ["SELECT * FROM t"])
        assert s.db_monitor is None
        assert s.relevant_tuples.tuple_count == 0
        assert len(s.replay_log) == 0
        # OS half still captured
        assert len(s.trace.activities("process")) == 1

    def test_server_included_requires_database(self, world):
        vos, _database = world
        with pytest.raises(AuditError):
            AuditSession(vos, "server-included")

    def test_unknown_mode_rejected(self, world):
        vos, database = world
        with pytest.raises(AuditError):
            AuditSession(vos, "bogus", database=database)

    def test_nested_sessions_rejected(self, world):
        vos, database = world
        session = AuditSession(vos, "server-included", database=database)
        with session:
            with pytest.raises(AuditError):
                session.__enter__()

    def test_detach_restores_clean_state(self, world):
        vos, database = world
        with AuditSession(vos, "server-included", database=database):
            pass
        assert vos.client_decorators == []
        assert vos.tracers == []

    def test_monitor_constructor_validation(self, world):
        _vos, _database = world
        with pytest.raises(AuditError):
            DBMonitor(TraceBuilder(), "provenance", None)
        with pytest.raises(AuditError):
            DBMonitor(TraceBuilder(), "bogus", None)


class TestRelevantTupleStore:
    def test_add_dedups(self):
        store = RelevantTupleStore()
        ref = TupleRef("t", 1, 1)
        assert store.add(ref, (1, 2)) is True
        assert store.add(ref, (1, 2)) is False
        assert store.tuple_count == 1

    def test_versions_are_distinct_entries(self):
        store = RelevantTupleStore()
        store.add(TupleRef("t", 1, 1), (1, 2))
        store.add(TupleRef("t", 1, 5), (1, 9))
        assert store.tuple_count == 2

    def test_rows_sorted_by_rowid(self):
        store = RelevantTupleStore()
        store.add(TupleRef("t", 5, 1), (5,))
        store.add(TupleRef("t", 2, 1), (2,))
        assert [rowid for rowid, _v, _r in store.rows_for("t")] == [2, 5]
