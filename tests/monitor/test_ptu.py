"""PTU OS-monitor tests: syscall stream → P_BB trace."""

import pytest

from repro.monitor.ptu import PTUMonitor
from repro.provenance.combined import TraceBuilder
from repro.vos import VirtualOS


@pytest.fixture
def vos():
    return VirtualOS()


@pytest.fixture
def monitor(vos):
    ptu = PTUMonitor(TraceBuilder())
    vos.attach_tracer(ptu)
    return ptu


def run_app(vos, fn, binary="/bin/app"):
    vos.register_program(binary, fn)
    return vos.run(binary)


class TestProcessCapture:
    def test_process_node_created(self, vos, monitor):
        process = run_app(vos, lambda ctx: 0)
        node = monitor.builder.trace.node(f"proc:{process.pid}")
        assert node.type_label == "process"
        assert node.attr("name") == "app"

    def test_executed_edge_for_children(self, vos, monitor):
        vos.register_program("/bin/child", lambda ctx: 0)
        parent = run_app(vos, lambda ctx: ctx.spawn("/bin/child").exit_code)
        trace = monitor.builder.trace
        executed = trace.edges("executed")
        assert len(executed) == 1
        assert executed[0].source == f"proc:{parent.pid}"
        assert executed[0].interval.is_point

    def test_binary_recorded_as_input(self, vos, monitor):
        run_app(vos, lambda ctx: 0)
        assert "/bin/app" in monitor.binary_paths
        assert "/bin/app" in monitor.input_paths()

    def test_monitored_pids(self, vos, monitor):
        process = run_app(vos, lambda ctx: 0)
        assert process.pid in monitor.monitored_pids


class TestFileCapture:
    def test_read_edge_with_open_close_interval(self, vos, monitor):
        vos.fs.write_file("/in.txt", b"data")
        def app(ctx):
            handle = ctx.open("/in.txt")
            handle.read()
            handle.close()
        process = run_app(vos, app)
        trace = monitor.builder.trace
        edge = trace.edges("readFrom")
        read = [e for e in edge if e.source == "file:/in.txt"]
        assert len(read) == 1
        assert read[0].target == f"proc:{process.pid}"
        assert read[0].interval.begin < read[0].interval.end

    def test_write_edge(self, vos, monitor):
        process = run_app(vos, lambda ctx: ctx.write_file("/out", b"x"))
        written = monitor.builder.trace.edges("hasWritten")
        assert [e.target for e in written] == ["file:/out"]
        assert "/out" in monitor.written_paths

    def test_reopen_widens_single_edge(self, vos, monitor):
        vos.fs.write_file("/in.txt", b"data")
        def app(ctx):
            ctx.read_file("/in.txt")
            ctx.read_file("/in.txt")
        run_app(vos, app)
        trace = monitor.builder.trace
        reads = [e for e in trace.edges("readFrom")
                 if e.source == "file:/in.txt"]
        assert len(reads) == 1  # one edge, hull interval

    def test_leaked_fd_closed_at_exit_still_traced(self, vos, monitor):
        vos.fs.write_file("/in.txt", b"data")
        run_app(vos, lambda ctx: ctx.open("/in.txt") and 0)
        reads = [e for e in monitor.builder.trace.edges("readFrom")
                 if e.source == "file:/in.txt"]
        assert len(reads) == 1


class TestInputClassification:
    def test_pure_output_not_an_input(self, vos, monitor):
        run_app(vos, lambda ctx: ctx.write_file("/out", b"x"))
        assert "/out" not in monitor.input_paths()

    def test_pure_input(self, vos, monitor):
        vos.fs.write_file("/in", b"x")
        run_app(vos, lambda ctx: len(ctx.read_file("/in")))
        assert "/in" in monitor.input_paths()

    def test_written_then_read_is_not_input(self, vos, monitor):
        def app(ctx):
            ctx.write_file("/tmpfile", b"x")
            ctx.read_file("/tmpfile")
        run_app(vos, app)
        assert "/tmpfile" not in monitor.input_paths()

    def test_read_then_written_is_input(self, vos, monitor):
        vos.fs.write_file("/state", b"1")
        def app(ctx):
            value = int(ctx.read_text("/state"))
            ctx.write_file("/state", str(value + 1))
        run_app(vos, app)
        assert "/state" in monitor.input_paths()
