"""CDE, PTU, and VMI baseline tests."""

import pytest

from repro.baselines import VMIModel, build_cde_package, build_ptu_package
from repro.core import ldv_audit, ldv_exec
from repro.core.package import Package
from repro.errors import PackageError

from tests.core.conftest import SERVER_BINARIES, World


@pytest.fixture
def world(tmp_path):
    return World(data_dir=tmp_path / "pgdata")


class TestCDE:
    def test_snapshot_contains_inputs_only(self, world, tmp_path):
        result = build_cde_package(world.vos, "/bin/app",
                                   tmp_path / "cde")
        package = result.package
        assert package.file_path("/bin/app").exists()
        assert package.file_path("/data/config.txt").exists()
        # outputs are not snapshotted
        assert not package.file_path("/data/report.txt").exists()

    def test_no_db_content_captured(self, world, tmp_path):
        result = build_cde_package(world.vos, "/bin/app",
                                   tmp_path / "cde")
        summary = result.package.contents_summary()
        assert summary["db_server"] is False
        assert summary["db_provenance"] is False

    def test_db_traffic_detected_but_not_captured(self, world, tmp_path):
        result = build_cde_package(world.vos, "/bin/app",
                                   tmp_path / "cde")
        assert result.saw_db_traffic is True

    def test_pure_file_app_has_no_db_traffic(self, tmp_path):
        world = World()
        world.vos.register_program(
            "/bin/files", lambda ctx: ctx.write_file("/o", b"x") and 0)
        result = build_cde_package(world.vos, "/bin/files",
                                   tmp_path / "cde")
        assert result.saw_db_traffic is False


class TestPTU:
    def test_package_contains_full_data_files(self, world, tmp_path):
        result = build_ptu_package(
            world.vos, "/bin/app", tmp_path / "ptu", world.database,
            "main", SERVER_BINARIES)
        summary = result.package.contents_summary()
        assert summary["full_data_files"] is True
        assert summary["db_server"] is True
        assert summary["db_provenance"] is False

    def test_data_bytes_equal_data_directory(self, world, tmp_path):
        result = build_ptu_package(
            world.vos, "/bin/app", tmp_path / "ptu", world.database,
            "main", SERVER_BINARIES)
        expected = world.database.catalog.data_directory.total_bytes()
        assert result.data_bytes == expected

    def test_requires_on_disk_database(self, tmp_path):
        world = World()  # in-memory
        with pytest.raises(PackageError):
            build_ptu_package(world.vos, "/bin/app", tmp_path / "ptu",
                              world.database, "main", SERVER_BINARIES)

    def test_ptu_package_replays(self, world, tmp_path):
        build_ptu_package(world.vos, "/bin/app", tmp_path / "ptu",
                          world.database, "main", SERVER_BINARIES)
        original = world.vos.fs.read_file("/data/report.txt")
        result = ldv_exec(tmp_path / "ptu", world.registry,
                          scratch_dir=tmp_path / "scratch")
        assert result.outputs["/data/report.txt"] == original

    def test_ptu_larger_than_ldv_when_selectivity_is_low(self, tmp_path):
        """The Fig 9 effect: LDV ships only the relevant subset."""
        def selective_app(ctx):
            client = ctx.connect_db("main")
            rows = client.execute(
                "SELECT sum(price) FROM sales WHERE price > 10").rows
            ctx.write_file("/data/report.txt", str(rows[0][0]))
            client.close()

        def padded_world(data_dir):
            world = World(data_dir=data_dir)
            heap = world.database.catalog.get_table("sales")
            tick = world.database.clock.tick()
            for key in range(1000, 4000):
                heap.insert((key, 1.0, "padding-" + "y" * 30), tick)
            world.database.checkpoint()
            world.vos.register_program("/bin/selective", selective_app)
            world.registry["/bin/selective"] = selective_app
            return world

        ptu = build_ptu_package(
            padded_world(tmp_path / "pg1").vos, "/bin/selective",
            tmp_path / "ptu",
            padded_world(tmp_path / "pg2").database, "main",
            SERVER_BINARIES)
        world = padded_world(tmp_path / "pg3")
        ldv = ldv_audit(world.vos, "/bin/selective", tmp_path / "ldv",
                        mode="server-included", database=world.database,
                        server_name="main",
                        server_binary_paths=SERVER_BINARIES)
        ptu_data = ptu.package.breakdown().get("db/data", 0)
        ldv_restore = ldv.packaging.package.breakdown().get(
            "db/restore", 0)
        assert ldv_restore * 5 < ptu_data


class TestVMIModel:
    def test_image_size_composition(self):
        model = VMIModel(base_image_bytes=1000)
        assert model.image_bytes(200, 300, 50) == 1550

    def test_replay_slowdown(self):
        model = VMIModel(boot_seconds=10.0, slowdown_factor=1.5)
        assert model.replay_seconds(4.0) == 6.0
        assert model.replay_seconds(4.0, include_boot=True) == 16.0

    def test_vm_slower_than_native(self):
        model = VMIModel()
        assert model.replay_seconds(1.0) > 1.0

    def test_size_ratio(self):
        model = VMIModel(base_image_bytes=8_000)
        assert model.size_ratio_vs(100, 100, 100) == 82.0

    def test_size_ratio_rejects_empty_package(self):
        with pytest.raises(ValueError):
            VMIModel().size_ratio_vs(0, 1, 1)

    def test_paper_headline_ratio(self):
        """8.2 GB VMI vs ~100 MB average LDV package: ~80x."""
        model = VMIModel()
        image = model.image_bytes(server_bytes=4_000_000_000,
                                  data_bytes=3_000_000_000)
        ratio = image / 100_000_000
        assert 50 < ratio < 120
