"""Fault-injector unit tests: determinism, scheduling, IO interposition."""

import pytest

from repro.db.fileio import FileIO
from repro.errors import TransientError
from repro.faults import FaultInjector, FaultyIO, SimulatedCrash


class TestSchedule:
    def test_crash_fires_at_exact_occurrence(self):
        injector = FaultInjector().crash_at("p", occurrence=3)
        injector.reach("p")
        injector.reach("p")
        with pytest.raises(SimulatedCrash):
            injector.reach("p")

    def test_other_points_unaffected(self):
        injector = FaultInjector().crash_at("p", occurrence=1)
        injector.reach("q")
        injector.reach("q")
        with pytest.raises(SimulatedCrash):
            injector.reach("p")

    def test_all_io_dies_after_crash(self):
        injector = FaultInjector().crash_at("p")
        with pytest.raises(SimulatedCrash):
            injector.reach("p")
        with pytest.raises(SimulatedCrash):
            injector.reach("q")

    def test_trace_records_every_arrival(self):
        injector = FaultInjector()
        injector.reach("a")
        injector.reach("b")
        injector.reach("a")
        assert injector.trace == [("a", 1), ("b", 1), ("a", 2)]

    def test_transient_failure_heals_after_n_times(self):
        injector = FaultInjector().fail_at("fsync", occurrence=1, times=1)
        with pytest.raises(TransientError):
            injector.reach("fsync")
        injector.reach("fsync")  # healed

    def test_torn_write_returns_strict_prefix(self):
        injector = FaultInjector().torn_write_at("w", fraction=0.99)
        prefix = injector.reach("w", size=10)
        assert 0 <= prefix < 10

    def test_seeded_torn_fraction_is_deterministic(self):
        first = FaultInjector(seed=42).torn_write_at("w")
        second = FaultInjector(seed=42).torn_write_at("w")
        assert first.reach("w", size=1000) == second.reach("w", size=1000)

    def test_wire_rate_is_deterministic_given_seed(self):
        def pattern(seed):
            injector = FaultInjector(seed=seed).wire_fault_rate(
                0.5, limit=100)
            outcomes = []
            for _ in range(30):
                try:
                    injector.reach_wire("wire.send")
                    outcomes.append(True)
                except TransientError:
                    outcomes.append(False)
            return outcomes

        assert pattern(7) == pattern(7)
        assert pattern(7) != pattern(8)

    def test_wire_fault_limit_bounds_failures(self):
        injector = FaultInjector(seed=1).wire_fault_rate(1.0, limit=2)
        for _ in range(2):
            with pytest.raises(TransientError):
                injector.reach_wire("wire.send")
        injector.reach_wire("wire.send")  # limit reached: healthy


class TestFaultyIO:
    def test_passthrough_without_rules(self, tmp_path):
        io = FaultyIO(FaultInjector())
        io.write_bytes(tmp_path / "f", b"hello", point="p.write")
        io.append_bytes(tmp_path / "f", b" world", point="p.append")
        io.fsync(tmp_path / "f", point="p.fsync")
        assert (tmp_path / "f").read_bytes() == b"hello world"

    def test_torn_write_persists_prefix_then_crashes(self, tmp_path):
        injector = FaultInjector().torn_write_at("p.write", fraction=0.5)
        io = FaultyIO(injector)
        with pytest.raises(SimulatedCrash):
            io.write_bytes(tmp_path / "f", b"0123456789", point="p.write")
        assert (tmp_path / "f").read_bytes() == b"01234"

    def test_torn_append_keeps_existing_bytes(self, tmp_path):
        (tmp_path / "f").write_bytes(b"keep:")
        injector = FaultInjector().torn_write_at("p.append", fraction=0.5)
        io = FaultyIO(injector)
        with pytest.raises(SimulatedCrash):
            io.append_bytes(tmp_path / "f", b"abcd", point="p.append")
        assert (tmp_path / "f").read_bytes() == b"keep:ab"

    def test_crash_before_rename_leaves_target_intact(self, tmp_path):
        (tmp_path / "old").write_bytes(b"old")
        (tmp_path / "new").write_bytes(b"new")
        io = FaultyIO(FaultInjector().crash_at("p.rename"))
        with pytest.raises(SimulatedCrash):
            io.rename(tmp_path / "new", tmp_path / "old", point="p.rename")
        assert (tmp_path / "old").read_bytes() == b"old"

    def test_failed_fsync_is_transient(self, tmp_path):
        (tmp_path / "f").write_bytes(b"x")
        io = FaultyIO(FaultInjector().fail_fsync_at("p.fsync"))
        with pytest.raises(TransientError):
            io.fsync(tmp_path / "f", point="p.fsync")
        io.fsync(tmp_path / "f", point="p.fsync")  # healed

    def test_atomic_write_points_are_derived(self, tmp_path):
        injector = FaultInjector()
        io = FaultyIO(injector)
        io.atomic_write_bytes(tmp_path / "f", b"data", point="cp")
        assert [point for point, _ in injector.trace] == [
            "cp.write", "cp.fsync", "cp.rename"]

    def test_simulated_crash_is_not_an_exception_subclass(self):
        # defensive `except Exception` blocks must not swallow crashes
        assert not issubclass(SimulatedCrash, Exception)
        assert issubclass(SimulatedCrash, BaseException)
