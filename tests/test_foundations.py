"""Foundation modules: error hierarchy, logical clock, TupleRef."""

import pytest

from repro import errors
from repro.clockwork import LogicalClock
from repro.db.provtypes import EMPTY_LINEAGE, ResultRow, TupleRef


class TestErrorHierarchy:
    def test_everything_derives_from_repro_error(self):
        for name in dir(errors):
            obj = getattr(errors, name)
            if (isinstance(obj, type) and issubclass(obj, Exception)
                    and obj is not errors.ReproError):
                assert issubclass(obj, errors.ReproError), name

    def test_db_errors_under_database_error(self):
        for cls in (errors.SQLSyntaxError, errors.CatalogError,
                    errors.IntegrityError, errors.ExecutionError,
                    errors.TransactionError, errors.ProtocolError,
                    errors.ConnectionClosedError):
            assert issubclass(cls, errors.DatabaseError)

    def test_vos_errors_under_vos_error(self):
        for cls in (errors.FileNotFoundVosError,
                    errors.FileExistsVosError,
                    errors.NotADirectoryVosError,
                    errors.IsADirectoryVosError,
                    errors.BadFileDescriptorError,
                    errors.ProcessError,
                    errors.ProgramNotFoundError):
            assert issubclass(cls, errors.VosError)

    def test_syntax_error_position(self):
        error = errors.SQLSyntaxError("bad", position=17)
        assert error.position == 17

    def test_replay_mismatch_carries_context(self):
        error = errors.ReplayMismatchError("m", expected="A", actual="B")
        assert error.expected == "A"
        assert error.actual == "B"
        assert issubclass(errors.ReplayMismatchError, errors.ReplayError)

    def test_catching_base_catches_all(self):
        with pytest.raises(errors.ReproError):
            raise errors.ManifestError("x")


class TestLogicalClock:
    def test_strictly_monotonic(self):
        clock = LogicalClock()
        ticks = [clock.tick() for _ in range(100)]
        assert ticks == sorted(set(ticks))

    def test_now_tracks_last_tick(self):
        clock = LogicalClock()
        assert clock.now == 0
        clock.tick()
        assert clock.now == 1

    def test_custom_start(self):
        assert LogicalClock(start=50).tick() == 51

    def test_negative_start_rejected(self):
        with pytest.raises(ValueError):
            LogicalClock(start=-1)

    def test_advance(self):
        clock = LogicalClock()
        assert clock.advance(10) == 10
        with pytest.raises(ValueError):
            clock.advance(0)

    def test_shared_clock_interleaves(self):
        """The whole point: DB version stamps and OS syscall ticks
        draw from one total order."""
        clock = LogicalClock()
        a = clock.tick()
        b = clock.tick()
        c = clock.tick()
        assert a < b < c


class TestTupleRef:
    def test_ordering_and_hashing(self):
        refs = {TupleRef("t", 1, 1), TupleRef("t", 1, 1),
                TupleRef("t", 1, 2)}
        assert len(refs) == 2
        assert sorted(refs)[0].version == 1

    def test_display(self):
        assert TupleRef("sales", 7, 3).display() == "sales[7@v3]"

    def test_versions_are_distinct_identities(self):
        assert TupleRef("t", 1, 1) != TupleRef("t", 1, 2)

    def test_empty_lineage_is_falsy_frozenset(self):
        assert EMPTY_LINEAGE == frozenset()
        assert not EMPTY_LINEAGE

    def test_result_row(self):
        row = ResultRow((1, 2), frozenset({TupleRef("t", 1, 1)}))
        assert row.values == (1, 2)
        assert len(row.lineage) == 1
