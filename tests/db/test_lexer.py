"""Tokenizer tests."""

import pytest

from repro.db.sql.lexer import Token, TokenKind, tokenize
from repro.errors import SQLSyntaxError


def kinds(sql):
    return [token.kind for token in tokenize(sql)[:-1]]


def texts(sql):
    return [token.text for token in tokenize(sql)[:-1]]


class TestBasicTokens:
    def test_keywords_are_case_insensitive(self):
        assert texts("SELECT select SeLeCt") == ["select"] * 3

    def test_identifier_preserves_case(self):
        tokens = tokenize("lineitem L_SuppKey")
        assert tokens[0].text == "lineitem"
        assert tokens[1].text == "L_SuppKey"
        assert tokens[0].kind is TokenKind.IDENTIFIER

    def test_integer_literal(self):
        token = tokenize("42")[0]
        assert token.kind is TokenKind.INTEGER
        assert token.text == "42"

    def test_float_literals(self):
        assert tokenize("3.14")[0].kind is TokenKind.FLOAT
        assert tokenize("1e5")[0].kind is TokenKind.FLOAT
        assert tokenize("2.5e-3")[0].kind is TokenKind.FLOAT

    def test_string_literal(self):
        token = tokenize("'hello world'")[0]
        assert token.kind is TokenKind.STRING
        assert token.text == "hello world"

    def test_string_with_escaped_quote(self):
        token = tokenize("'it''s'")[0]
        assert token.text == "it's"

    def test_empty_string(self):
        assert tokenize("''")[0].text == ""

    def test_quoted_identifier(self):
        token = tokenize('"Order Table"')[0]
        assert token.kind is TokenKind.IDENTIFIER
        assert token.text == "Order Table"

    def test_eof_always_present(self):
        assert tokenize("")[-1].kind is TokenKind.EOF
        assert tokenize("select")[-1].kind is TokenKind.EOF


class TestOperators:
    @pytest.mark.parametrize("op", ["<>", "!=", "<=", ">=", "=", "<", ">",
                                    "+", "-", "*", "/", "%", "||"])
    def test_operator(self, op):
        token = tokenize(op)[0]
        assert token.kind is TokenKind.OPERATOR
        assert token.text == op

    def test_multi_char_operator_not_split(self):
        assert texts("a <= b") == ["a", "<=", "b"]

    def test_punctuation(self):
        assert [t.kind for t in tokenize(",().;")[:-1]] == (
            [TokenKind.PUNCT] * 5)


class TestCommentsAndErrors:
    def test_line_comment_skipped(self):
        assert texts("select -- comment\n 1") == ["select", "1"]

    def test_comment_at_end_of_input(self):
        assert texts("select 1 -- done") == ["select", "1"]

    def test_unterminated_string_raises(self):
        with pytest.raises(SQLSyntaxError):
            tokenize("'oops")

    def test_unterminated_quoted_identifier_raises(self):
        with pytest.raises(SQLSyntaxError):
            tokenize('"oops')

    def test_unexpected_character_raises(self):
        with pytest.raises(SQLSyntaxError):
            tokenize("select @")

    def test_error_carries_position(self):
        with pytest.raises(SQLSyntaxError) as info:
            tokenize("ab #")
        assert info.value.position == 3


class TestRealisticStatements:
    def test_tpch_query_tokenizes(self):
        sql = ("SELECT l_quantity, l_partkey FROM lineitem "
               "WHERE l_suppkey BETWEEN 1 AND 250")
        tokens = tokenize(sql)
        assert tokens[-1].kind is TokenKind.EOF
        assert "between" in [t.text for t in tokens]

    def test_number_adjacent_to_keyword(self):
        assert texts("limit 10") == ["limit", "10"]

    def test_dotted_reference(self):
        assert texts("l.l_orderkey") == ["l", ".", "l_orderkey"]
