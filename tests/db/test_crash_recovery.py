"""Crash-recovery matrix: kill the engine at every injection point.

A tracing run of the workload (rule-free injector) discovers every
``(point, occurrence)`` pair the durability layer passes through; the
matrix then re-runs the workload once per pair with a crash scheduled
there, reopens the data directory on a healthy IO, and checks the
recovered database against shadow snapshots of committed state:

* everything committed before the crash is durable,
* nothing uncommitted is visible,
* rowids stay monotonic and the clock resumes past every version,
* recovering the same directory twice is a fixed point.
"""

from __future__ import annotations

import shutil
import tempfile
from pathlib import Path

import pytest

from repro.db import Database
from repro.db.wal import WAL_MAGIC
from repro.faults import FaultInjector, FaultyIO, SimulatedCrash

pytestmark = pytest.mark.crash

# Each entry is one atomic unit of the workload: a single autocommit
# statement, one BEGIN..COMMIT/ROLLBACK transaction, or a checkpoint.
# With the group-commit WAL, durability I/O happens only at the end of
# a unit, so after a crash the recovered state must match the shadow
# snapshot taken either before or after the unit that died.
STEPS = [
    ["CREATE TABLE accounts "
     "(id integer PRIMARY KEY, owner text, balance float)"],
    ["INSERT INTO accounts VALUES "
     "(1, 'ada', 10.0), (2, 'bob', 20.0)"],
    ["CHECKPOINT"],
    ["UPDATE accounts SET balance = 15.5 WHERE id = 1"],
    ["BEGIN",
     "INSERT INTO accounts VALUES (3, 'cyd', 30.0)",
     "UPDATE accounts SET balance = 0.0 WHERE id = 2",
     "COMMIT"],
    ["BEGIN",
     "INSERT INTO accounts VALUES (4, 'eve', 99.0)",
     "DELETE FROM accounts WHERE id = 1",
     "ROLLBACK"],
    ["DELETE FROM accounts WHERE id = 2"],
    ["CREATE INDEX ix_owner ON accounts (owner)"],
    ["CREATE TABLE audit_log (note text)"],
    ["DROP TABLE audit_log"],
    ["CHECKPOINT"],
    ["INSERT INTO accounts VALUES (5, 'fin', 50.0)"],
]


def apply_step(database, step):
    for sql in step:
        if sql == "CHECKPOINT":
            database.checkpoint()
        else:
            database.execute(sql)


def run_workload(database):
    """Apply every step, returning the count of *completed* steps."""
    completed = 0
    for step in STEPS:
        apply_step(database, step)
        completed += 1
    return completed


def dump(database):
    """The logical committed state: tables → (sorted rows, indexes)."""
    state = {}
    for name in sorted(database.catalog.table_names()):
        table = database.catalog.get_table(name)
        state[name] = (sorted(table.rows.values()),
                       sorted(table.indexes))
    return state


def crash_run(data_dir, injector):
    """Run the workload until the injected crash; count whole steps."""
    completed = 0
    try:
        database = Database(data_directory=data_dir,
                            io=FaultyIO(injector), autoflush=True)
        for step in STEPS:
            apply_step(database, step)
            completed += 1
    except SimulatedCrash:
        return completed, True
    return completed, False


def _discover_trace():
    """Tracing run: which (point, occurrence) pairs does the workload
    reach? Module-level so the matrix can parametrize over it."""
    root = tempfile.mkdtemp(prefix="ldv-crash-discovery-")
    try:
        injector = FaultInjector()
        database = Database(data_directory=Path(root) / "d",
                            io=FaultyIO(injector), autoflush=True)
        run_workload(database)
        return list(injector.trace)
    finally:
        shutil.rmtree(root, ignore_errors=True)


TRACE = _discover_trace()
SNAPSHOTS = [{}]
_shadow = Database()
for _step in STEPS:
    apply_step(_shadow, _step)
    SNAPSHOTS.append(dump(_shadow))
del _shadow


def assert_recovery_invariants(data_dir, completed):
    recovered = Database(data_directory=data_dir)
    state = dump(recovered)
    # the unit that died either committed entirely or not at all
    assert state in (SNAPSHOTS[completed], SNAPSHOTS[completed + 1]), (
        f"recovered state matches neither snapshot {completed} nor "
        f"{completed + 1}")
    for name in recovered.catalog.table_names():
        table = recovered.catalog.get_table(name)
        assert table.next_rowid > max(table.rows, default=0)
        assert len(set(table.rows)) == table.row_count
        for version in table.versions.values():
            assert recovered.clock.now >= version
    # recovery is a fixed point: a second open changes nothing
    wal_bytes = (Path(data_dir) / "wal.log").read_bytes()
    again = Database(data_directory=data_dir)
    assert dump(again) == state
    assert not again.last_recovery.truncated
    assert (Path(data_dir) / "wal.log").read_bytes() == wal_bytes
    return recovered, state


class TestDiscovery:
    def test_workload_reaches_a_rich_point_set(self):
        points = {point for point, _ in TRACE}
        assert "wal.append" in points
        assert "wal.fsync" in points
        assert "checkpoint.table.write" in points
        assert "checkpoint.table.rename" in points
        assert "checkpoint.meta.rename" in points
        assert "wal.reset.rename" in points
        assert "checkpoint.drop" in points
        assert len(TRACE) > 20

    def test_trace_is_deterministic(self):
        assert _discover_trace() == TRACE


@pytest.mark.parametrize(
    ("point", "occurrence"), TRACE,
    ids=[f"{point}@{occurrence}" for point, occurrence in TRACE])
def test_crash_at_every_injection_point(tmp_path, point, occurrence):
    data_dir = tmp_path / "d"
    injector = FaultInjector().crash_at(point, occurrence=occurrence)
    completed, crashed = crash_run(data_dir, injector)
    assert crashed, f"scheduled crash at {point}@{occurrence} never fired"
    assert_recovery_invariants(data_dir, completed)


WAL_APPENDS = [(point, occurrence) for point, occurrence in TRACE
               if point == "wal.append"]


@pytest.mark.parametrize(
    ("point", "occurrence"), WAL_APPENDS,
    ids=[f"torn-{point}@{occurrence}" for point, occurrence in WAL_APPENDS])
def test_torn_commit_batches_are_truncated(tmp_path, point, occurrence):
    """Tear every commit batch mid-write: the half-written batch must
    vanish on recovery, never half-apply."""
    data_dir = tmp_path / "d"
    injector = FaultInjector(seed=occurrence).torn_write_at(
        point, occurrence=occurrence)
    completed, crashed = crash_run(data_dir, injector)
    assert crashed
    recovered, _ = assert_recovery_invariants(data_dir, completed)
    # whatever the tear left behind was truncated, not replayed
    assert not Database(data_directory=data_dir).last_recovery.truncated


def test_crash_matrix_is_deterministic(tmp_path):
    """The same seed and schedule produce byte-identical directories."""
    point, occurrence = WAL_APPENDS[-1]
    results = []
    for run in ("a", "b"):
        data_dir = tmp_path / run
        injector = FaultInjector(seed=7).torn_write_at(
            point, occurrence=occurrence)
        crash_run(data_dir, injector)
        results.append(sorted(
            (file.name, file.read_bytes())
            for file in data_dir.iterdir() if file.is_file()))
    assert results[0] == results[1]


def test_failed_wal_fsync_surfaces_and_engine_stays_usable(tmp_path):
    """A transient fsync failure on commit reaches the caller (so a
    client can retry or give up), and the engine keeps working once
    the fault heals — nothing is wedged or silently lost."""
    from repro.errors import TransientError

    data_dir = tmp_path / "d"
    injector = FaultInjector().fail_at("wal.fsync", occurrence=1)
    database = Database(data_directory=data_dir, io=FaultyIO(injector))
    with pytest.raises(TransientError):
        database.execute("CREATE TABLE t (id integer)")
    # the batch reached the OS before the failed fsync; the fault heals
    # and later statements commit normally on the same instance
    database.execute("INSERT INTO t VALUES (1)")
    recovered = Database(data_directory=data_dir)
    assert recovered.query("SELECT id FROM t") == [(1,)]


def test_uncommitted_work_never_hits_disk_before_crash(tmp_path):
    """Crash while a transaction is open: the WAL on disk contains no
    trace of the open transaction's statements."""
    data_dir = tmp_path / "d"
    injector = FaultInjector()
    database = Database(data_directory=data_dir, io=FaultyIO(injector))
    database.execute("CREATE TABLE t (id integer)")
    database.execute("BEGIN")
    database.execute("INSERT INTO t VALUES (42)")
    wal_bytes = (data_dir / "wal.log").read_bytes()
    assert b"42" not in wal_bytes[len(WAL_MAGIC):]
    recovered = Database(data_directory=data_dir)
    assert recovered.query("SELECT id FROM t") == []
