"""Vectorized engine: RowBatch mechanics, batch/row parity, and
provenance byte-identity.

The batch pipeline must be invisible: every query answers with the
same rows, the same lineage sets, and the same bytes on the wire as
the tuple-at-a-time engine running interpreted expressions. The parity
helpers here run each statement twice — once vectorized (the default)
and once under ``row_at_a_time_plans()`` + ``interpreted_expressions()``
— clearing the plan cache in between so neither mode sees the other's
plans.
"""

from __future__ import annotations

import pytest

from repro.db import Database
from repro.db.expressions import interpreted_expressions
from repro.db.protocol import encode_frame, result_to_wire
from repro.db.provtypes import EMPTY_LINEAGE, TupleRef
from repro.db.vector import (
    BATCH_SIZE,
    RowBatch,
    row_at_a_time_plans,
    vectorized_enabled,
)
from repro.workloads.halos import build_world
from repro.workloads.tpch.dbgen import TPCHConfig, TPCHGenerator
from repro.workloads.tpch.queries import q1_sql, q3_sql, q4_sql


# -- RowBatch mechanics -------------------------------------------------------

class TestRowBatch:
    def test_identity_selection_rows(self):
        batch = RowBatch([[1, 2, 3], ["a", "b", "c"]], 3)
        assert batch.rows() == [(1, "a"), (2, "b"), (3, "c")]
        assert len(batch) == 3

    def test_selection_vector_filters_rows(self):
        batch = RowBatch([[1, 2, 3], ["a", "b", "c"]], 3, sel=[0, 2])
        assert batch.rows() == [(1, "a"), (3, "c")]
        assert len(batch) == 2

    def test_zero_width_rows_respect_selection(self):
        batch = RowBatch([], 4, sel=[1, 3])
        assert batch.rows() == [(), ()]

    def test_no_annotations_stay_none(self):
        batch = RowBatch([[1, 2]], 2, sel=[1])
        assert batch.gathered_lineages() is None
        assert batch.picked_lineages() == [EMPTY_LINEAGE]

    def test_annotations_gather_through_selection(self):
        ref_a = frozenset({TupleRef("t", 1, 1)})
        ref_b = frozenset({TupleRef("t", 2, 1)})
        batch = RowBatch([[1, 2]], 2, lineages=[ref_a, ref_b], sel=[1])
        assert batch.gathered_lineages() == [ref_b]

    def test_slice_refines_selection(self):
        batch = RowBatch([[10, 11, 12, 13]], 4)
        part = batch.slice(1, 3)
        assert part.rows() == [(11,), (12,)]
        # the underlying columns are shared, not copied
        assert part.columns is batch.columns


# -- batch/row parity ---------------------------------------------------------

def run_both_modes(database, sql, provenance=False):
    """Execute once vectorized, once row-at-a-time interpreted."""
    database.plan_cache.clear()
    assert vectorized_enabled()
    vectorized = database.execute(sql, provenance)
    database.plan_cache.clear()
    with row_at_a_time_plans(), interpreted_expressions():
        assert not vectorized_enabled()
        interpreted = database.execute(sql, provenance)
    database.plan_cache.clear()
    return vectorized, interpreted


def assert_wire_identical(vectorized, interpreted):
    assert vectorized.rows == interpreted.rows
    assert vectorized.lineages == interpreted.lineages
    assert (encode_frame(result_to_wire(vectorized))
            == encode_frame(result_to_wire(interpreted)))


@pytest.fixture(scope="module")
def parity_db():
    database = Database()
    database.execute(
        "CREATE TABLE t (k integer, grp integer, a integer, b float, "
        "name text)")
    database.execute("CREATE TABLE small (k integer, label text)")
    rows = []
    for k in range(700):
        b_text = "NULL" if k % 7 == 0 else str(k * 0.5)
        name = "NULL" if k % 11 == 0 else f"'name{k % 13}'"
        rows.append(f"({k}, {k % 5}, {(k * 37) % 100}, {b_text}, {name})")
    database.execute("INSERT INTO t VALUES " + ", ".join(rows))
    database.execute(
        "INSERT INTO small VALUES " + ", ".join(
            f"({k}, 'L{k}')" for k in range(0, 40)))
    return database


PARITY_QUERIES = [
    "SELECT k, a FROM t WHERE a < 30",
    "SELECT k + a, a * 2, -k FROM t WHERE k % 3 = 0 AND a >= 10",
    "SELECT k FROM t WHERE b IS NULL OR a > 90",
    "SELECT k FROM t WHERE a BETWEEN 20 AND 40",
    "SELECT k FROM t WHERE a NOT BETWEEN 20 AND 80",
    "SELECT k, name FROM t WHERE name LIKE 'name1%'",
    "SELECT k FROM t WHERE grp IN (1, 3)",
    "SELECT k FROM t WHERE grp NOT IN (0, 2, 4)",
    "SELECT k FROM t WHERE grp IN (1, NULL)",
    "SELECT k FROM t WHERE CASE WHEN a < 50 THEN grp ELSE 0 END = 1",
    "SELECT coalesce(b, -1.0), abs(a - 50) FROM t WHERE k < 100",
    "SELECT grp, count(*), count(b), sum(a), min(b), max(name) "
    "FROM t GROUP BY grp",
    "SELECT grp, avg(a) FROM t WHERE a > 10 GROUP BY grp "
    "HAVING count(*) > 50",
    "SELECT count(*), sum(b) FROM t",
    "SELECT DISTINCT grp, a % 2 FROM t",
    "SELECT t.k, small.label FROM t, small "
    "WHERE t.k = small.k AND t.a < 70",
    "SELECT t.k, small.label FROM t LEFT JOIN small ON t.k = small.k "
    "WHERE t.k < 60",
    "SELECT small.label, count(*), sum(t.a) FROM t, small "
    "WHERE t.grp = small.k GROUP BY small.label",
    "SELECT k, a FROM t ORDER BY a DESC, k LIMIT 17",
    "SELECT b FROM t ORDER BY b LIMIT 25 OFFSET 3",
    "SELECT k FROM t WHERE a < 5 UNION SELECT k FROM small WHERE k > 35",
    "SELECT grp FROM t UNION ALL SELECT k FROM small LIMIT 9",
    "SELECT k FROM t WHERE 1 = 0",
]


@pytest.mark.parametrize("sql", PARITY_QUERIES)
def test_batch_row_parity(parity_db, sql):
    vectorized, interpreted = run_both_modes(parity_db, sql)
    assert_wire_identical(vectorized, interpreted)


@pytest.mark.parametrize("sql", [
    "SELECT k, a FROM t WHERE a < 30",
    "SELECT t.k, small.label FROM t, small WHERE t.k = small.k",
    "SELECT grp, count(*), sum(a) FROM t WHERE a < 80 GROUP BY grp",
    "SELECT DISTINCT grp FROM t WHERE b IS NOT NULL",
    "SELECT k, a FROM t ORDER BY a, k LIMIT 40",
])
def test_batch_row_parity_with_provenance(parity_db, sql):
    vectorized, interpreted = run_both_modes(parity_db, sql,
                                             provenance=True)
    assert any(vectorized.lineages) or "1 = 0" in sql
    assert_wire_identical(vectorized, interpreted)


def test_error_parity_on_bad_comparison(parity_db):
    def failure(mode_runner):
        parity_db.plan_cache.clear()
        with pytest.raises(Exception) as info:
            with mode_runner():
                parity_db.execute("SELECT k FROM t WHERE name > 5")
        parity_db.plan_cache.clear()
        return type(info.value), str(info.value)

    from contextlib import nullcontext
    assert failure(nullcontext) == failure(row_at_a_time_plans)


def test_mixed_type_sort_fails_identically(parity_db):
    sql = ("SELECT CASE WHEN k % 2 = 0 THEN name ELSE k END AS v "
           "FROM t WHERE k < 10 ORDER BY v")
    outcomes = []
    for mode in (None, "rows"):
        parity_db.plan_cache.clear()
        try:
            if mode is None:
                parity_db.execute(sql)
            else:
                with row_at_a_time_plans(), interpreted_expressions():
                    parity_db.execute(sql)
            outcomes.append("ok")
        except Exception as exc:
            outcomes.append(type(exc).__name__)
    parity_db.plan_cache.clear()
    assert outcomes[0] == outcomes[1]


def test_multi_batch_inputs_chunk_and_reassemble(parity_db):
    """700 rows with BATCH_SIZE 1024 is one batch; force several."""
    database = Database()
    database.execute("CREATE TABLE wide (n integer)")
    count = BATCH_SIZE * 2 + 17
    database.execute("INSERT INTO wide VALUES " + ", ".join(
        f"({n})" for n in range(count)))
    vectorized, interpreted = run_both_modes(
        database, "SELECT n FROM wide WHERE n % 10 < 3 ORDER BY n DESC")
    assert_wire_identical(vectorized, interpreted)
    assert len(vectorized.rows) > BATCH_SIZE // 2


# -- provenance byte-identity on real workloads -------------------------------

HALOS_MATCHER_SQL = (
    "SELECT c.halo_id, c.cell_x, c.cell_y, o.obs_id, o.brightness "
    "FROM candidates c, observations o "
    "WHERE c.cell_x = o.cell_x AND c.cell_y = o.cell_y "
    "AND o.brightness > 0.5 ORDER BY c.halo_id, o.obs_id")


def test_halos_matcher_provenance_identical():
    world = build_world(n_particles=300, n_observations=400)
    database = world.database
    database.execute(
        "INSERT INTO candidates VALUES " + ", ".join(
            f"({halo_id}, {halo_id % 20}, {(halo_id * 3) % 20}, "
            f"{3 + halo_id})"
            for halo_id in range(1, 15)))
    vectorized, interpreted = run_both_modes(
        database, HALOS_MATCHER_SQL, provenance=True)
    assert vectorized.rows  # the join actually matched something
    assert all(lineage for lineage in vectorized.lineages)
    assert_wire_identical(vectorized, interpreted)


@pytest.fixture(scope="module")
def tpch_db():
    database = Database()
    TPCHGenerator(TPCHConfig(scale_factor=0.001)).generate_into(database)
    return database


@pytest.mark.parametrize("sql", [
    q1_sql(25),
    q3_sql(6),
    q4_sql(10),
])
def test_tpch_provenance_identical(tpch_db, sql):
    vectorized, interpreted = run_both_modes(tpch_db, sql,
                                             provenance=True)
    assert vectorized.rows
    assert_wire_identical(vectorized, interpreted)


# -- EXPLAIN integration ------------------------------------------------------

def explain_text(database, sql):
    result = database.execute(sql)
    return "\n".join(row[0] for row in result.rows)


@pytest.fixture
def explain_db():
    database = Database()
    database.execute("CREATE TABLE big (x integer, y integer)")
    database.execute("CREATE TABLE tiny (x integer, tag text)")
    database.execute("INSERT INTO big VALUES " + ", ".join(
        f"({n}, {n % 10})" for n in range(200)))
    database.execute("INSERT INTO tiny VALUES (1, 'a'), (2, 'b')")
    return database


class TestExplain:
    def test_fused_pipeline_is_one_node(self, explain_db):
        text = explain_text(
            explain_db, "EXPLAIN SELECT x + 1 FROM big WHERE x > 5")
        assert "FusedScanFilterProject" in text
        assert "Batch" not in text  # display names stay engine-neutral

    def test_analyze_reports_batches_and_rows(self, explain_db):
        result = explain_db.execute(
            "EXPLAIN ANALYZE SELECT x + 1 FROM big WHERE x < 50")
        operators = result.stats["analyze"]["operators"]
        names = [entry["operator"] for entry in operators]
        assert any(name.startswith("Project") for name in names)
        assert any(name.startswith("Filter") for name in names)
        assert any(name.startswith("SeqScan") for name in names)
        by_name = {entry["operator"].split(" ")[0]: entry
                   for entry in operators}
        assert by_name["SeqScan"]["rows"] == 200
        assert by_name["Filter"]["rows"] == 50
        assert all(entry["batches"] >= 1 for entry in operators)

    def test_build_side_shown_and_prefers_smaller_input(self, explain_db):
        text = explain_text(
            explain_db,
            "EXPLAIN SELECT 1 FROM tiny, big WHERE tiny.x = big.x")
        assert "build=left" in text

    def test_left_join_builds_right(self, explain_db):
        text = explain_text(
            explain_db,
            "EXPLAIN SELECT 1 FROM big LEFT JOIN tiny "
            "ON big.x = tiny.x")
        assert "build=right" in text

    def test_in_list_index_scan(self, explain_db):
        explain_db.execute("CREATE INDEX big_x ON big (x)")
        text = explain_text(
            explain_db,
            "EXPLAIN SELECT y FROM big WHERE x IN (3, 5, 9)")
        assert "IndexScan" in text
        assert "IN (" in text
