"""Property tests: wire-protocol and trace serialization round trips."""

from hypothesis import given, settings, strategies as st

from repro.db import protocol
from repro.db.engine import StatementResult
from repro.db.provtypes import TupleRef
from repro.db.types import Column, Schema, SQLType
from repro.provenance import COMBINED_MODEL, TimeInterval, TraceBuilder
from repro.provenance.trace import ExecutionTrace

# JSON-representable SQL values (what the engine stores)
sql_values = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(-10**9, 10**9),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.text(max_size=40),
)

tuple_refs = st.builds(
    TupleRef,
    table=st.sampled_from(["t", "orders", "line_item"]),
    rowid=st.integers(1, 10**6),
    version=st.integers(1, 10**6))


@st.composite
def statement_results(draw):
    width = draw(st.integers(1, 4))
    columns = [Column(f"c{i}", draw(st.sampled_from(list(SQLType))))
               for i in range(width)]
    n = draw(st.integers(0, 8))
    rows = [tuple(draw(sql_values) for _ in range(width))
            for _ in range(n)]
    lineages = [frozenset(draw(st.lists(tuple_refs, max_size=3)))
                for _ in range(n)]
    written = draw(st.lists(tuple_refs, max_size=4, unique=True))
    written_lineage = {
        ref: frozenset(draw(st.lists(tuple_refs, max_size=2)))
        for ref in written}
    return StatementResult(
        kind=draw(st.sampled_from(["select", "insert", "update",
                                   "delete"])),
        schema=Schema(columns),
        rows=rows,
        lineages=lineages,
        rowcount=n,
        written=written,
        written_lineage=written_lineage,
        deleted=draw(st.lists(tuple_refs, max_size=3)),
        source_tables=draw(st.lists(
            st.sampled_from(["t", "u"]), max_size=2)))


class TestProtocolProperty:
    @settings(max_examples=100, deadline=None)
    @given(statement_results())
    def test_result_wire_round_trip(self, result):
        frame = protocol.result_to_wire(result)
        text = protocol.encode_frame(frame)
        decoded = protocol.result_from_wire(protocol.decode_frame(text))
        assert decoded.kind == result.kind
        assert decoded.rows == result.rows
        assert decoded.lineages == result.lineages
        assert decoded.written == result.written
        assert decoded.written_lineage == result.written_lineage
        assert decoded.deleted == result.deleted
        assert decoded.column_names == result.column_names
        assert decoded.schema.types() == result.schema.types()


@st.composite
def random_traces(draw):
    builder = TraceBuilder()
    n_procs = draw(st.integers(1, 3))
    n_files = draw(st.integers(1, 4))
    for pid in range(n_procs):
        builder.process(pid, f"p{pid}")
    paths = [f"/f{i}" for i in range(n_files)]
    for _ in range(draw(st.integers(0, 8))):
        pid = draw(st.integers(0, n_procs - 1))
        path = draw(st.sampled_from(paths))
        begin = draw(st.integers(0, 50))
        end = draw(st.integers(begin, 60))
        if draw(st.booleans()):
            builder.read_from(pid, path, TimeInterval(begin, end))
        else:
            builder.has_written(pid, path, TimeInterval(begin, end))
    if draw(st.booleans()):
        statement = builder.statement("q1", "query", sql="SELECT 1")
        builder.run(draw(st.integers(0, n_procs - 1)), statement,
                    TimeInterval.point(draw(st.integers(0, 60))))
        ref = TupleRef("t", draw(st.integers(1, 9)), 1)
        builder.has_read(statement, ref, draw(st.integers(0, 60)))
        out = TupleRef("_result_q1", 1, 2)
        builder.has_returned(statement, out,
                             draw(st.integers(0, 60)), [ref])
    return builder.trace


class TestTraceSerializationProperty:
    @settings(max_examples=80, deadline=None)
    @given(random_traces())
    def test_trace_json_round_trip(self, trace):
        data = trace.to_json()
        restored = ExecutionTrace.from_json(data, COMBINED_MODEL)
        assert restored.to_json() == data
        assert restored.node_count == trace.node_count
        assert restored.edge_count == trace.edge_count

    @settings(max_examples=40, deadline=None)
    @given(random_traces())
    def test_round_trip_preserves_dependencies(self, trace):
        from repro.provenance import DependencyInference
        restored = ExecutionTrace.from_json(trace.to_json(),
                                            COMBINED_MODEL)
        original_deps = DependencyInference(trace).all_dependencies()
        restored_deps = DependencyInference(restored).all_dependencies()
        assert original_deps == restored_deps
