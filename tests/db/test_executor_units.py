"""Operator-level unit tests (executor classes in isolation)."""

import pytest

from repro.db.executor import (
    Distinct,
    Filter,
    GroupAggregate,
    HashJoin,
    IndexScan,
    Limit,
    MaterializedSource,
    NestedLoopJoin,
    Project,
    SeqScan,
    Sort,
    StripColumns,
    Union,
)
from repro.db.provtypes import TupleRef
from repro.db.sql.parser import parse_expression
from repro.db.storage import HeapTable
from repro.db.types import Column, Schema, SQLType
from repro.errors import ExecutionError


def make_table(name="t", rows=((1, "a"), (2, "b"), (3, "a"))):
    table = HeapTable(name, Schema([Column("k", SQLType.INTEGER),
                                    Column("s", SQLType.TEXT)]))
    for row in rows:
        table.insert(row, tick=1)
    return table


def rows_of(operator):
    return [values for values, _lineage in operator]


def lineages_of(operator):
    return [lineage for _values, lineage in operator]


class TestSeqScan:
    def test_yields_rows_in_rowid_order(self):
        scan = SeqScan(make_table(), "t", track_lineage=False)
        assert rows_of(scan) == [(1, "a"), (2, "b"), (3, "a")]

    def test_lineage_singletons(self):
        scan = SeqScan(make_table(), "t", track_lineage=True)
        assert lineages_of(scan) == [
            frozenset({TupleRef("t", 1, 1)}),
            frozenset({TupleRef("t", 2, 1)}),
            frozenset({TupleRef("t", 3, 1)})]

    def test_no_lineage_means_empty_sets(self):
        scan = SeqScan(make_table(), "t", track_lineage=False)
        assert all(lineage == frozenset() for lineage in lineages_of(scan))

    def test_qualified_schema(self):
        scan = SeqScan(make_table(), "alias", track_lineage=False)
        assert scan.schema.index_of("k", "alias") == 0


class TestIndexScan:
    def test_point_lookup(self):
        table = make_table()
        index = table.create_index("idx", "s")
        scan = IndexScan(table, "t", index, parse_expression("'a'"),
                         track_lineage=True)
        assert rows_of(scan) == [(1, "a"), (3, "a")]
        assert lineages_of(scan)[0] == frozenset({TupleRef("t", 1, 1)})

    def test_miss_yields_nothing(self):
        table = make_table()
        index = table.create_index("idx", "s")
        scan = IndexScan(table, "t", index, parse_expression("'zz'"),
                         track_lineage=False)
        assert rows_of(scan) == []


class TestFilterProject:
    def test_filter_keeps_matches(self):
        scan = SeqScan(make_table(), "t", False)
        filtered = Filter(scan, parse_expression("k > 1"))
        assert rows_of(filtered) == [(2, "b"), (3, "a")]

    def test_project_evaluates_expressions(self):
        scan = SeqScan(make_table(), "t", False)
        out_schema = Schema([Column("double_k", SQLType.INTEGER)])
        projected = Project(scan, [parse_expression("k * 2")], out_schema)
        assert rows_of(projected) == [(2,), (4,), (6,)]

    def test_lineage_flows_through(self):
        scan = SeqScan(make_table(), "t", True)
        filtered = Filter(scan, parse_expression("k = 2"))
        projected = Project(filtered, [parse_expression("s")],
                            Schema([Column("s", SQLType.TEXT)]))
        assert lineages_of(projected) == [frozenset({TupleRef("t", 2, 1)})]


class TestJoins:
    def make_sides(self):
        left = SeqScan(make_table("l"), "l", True)
        right = SeqScan(make_table(
            "r", rows=((2, "x"), (3, "y"), (9, "z"))), "r", True)
        return left, right

    def test_hash_join_matches(self):
        left, right = self.make_sides()
        join = HashJoin(left, right, [parse_expression("l.k")],
                        [parse_expression("r.k")])
        assert rows_of(join) == [(2, "b", 2, "x"), (3, "a", 3, "y")]

    def test_hash_join_lineage_union(self):
        left, right = self.make_sides()
        join = HashJoin(left, right, [parse_expression("l.k")],
                        [parse_expression("r.k")])
        first = lineages_of(join)[0]
        assert first == frozenset({TupleRef("l", 2, 1),
                                   TupleRef("r", 1, 1)})

    def test_left_join_pads(self):
        left, right = self.make_sides()
        join = HashJoin(left, right, [parse_expression("l.k")],
                        [parse_expression("r.k")], kind="left")
        padded = [row for row in rows_of(join) if row[2] is None]
        assert padded == [(1, "a", None, None)]

    def test_hash_join_requires_keys(self):
        left, right = self.make_sides()
        with pytest.raises(ExecutionError):
            HashJoin(left, right, [], [])

    def test_hash_join_residual(self):
        left, right = self.make_sides()
        join = HashJoin(left, right, [parse_expression("l.k")],
                        [parse_expression("r.k")],
                        residual=parse_expression("r.s = 'y'"))
        assert rows_of(join) == [(3, "a", 3, "y")]

    def test_nested_loop_theta_join(self):
        left, right = self.make_sides()
        join = NestedLoopJoin(left, right, parse_expression("l.k < r.k"))
        # pairs with l.k < r.k over {1,2,3} x {2,3,9}
        assert len(rows_of(join)) == 6

    def test_cross_join(self):
        left, right = self.make_sides()
        join = NestedLoopJoin(left, right, None, "cross")
        assert len(rows_of(join)) == 9

    def test_invalid_kind_rejected(self):
        left, right = self.make_sides()
        with pytest.raises(ExecutionError):
            NestedLoopJoin(left, right, None, "full")
        with pytest.raises(ExecutionError):
            HashJoin(left, right, [parse_expression("l.k")],
                     [parse_expression("r.k")], kind="full")


class TestAggregateDistinctSort:
    def test_group_aggregate(self):
        scan = SeqScan(make_table(), "t", True)
        out_schema = Schema([Column("s", SQLType.TEXT),
                             Column("n", SQLType.INTEGER)])
        aggregate = GroupAggregate(
            scan, [parse_expression("s")],
            [parse_expression("s"), parse_expression("count(*)")],
            out_schema)
        assert sorted(rows_of(aggregate)) == [("a", 2), ("b", 1)]

    def test_group_lineage_partition(self):
        scan = SeqScan(make_table(), "t", True)
        aggregate = GroupAggregate(
            scan, [parse_expression("s")],
            [parse_expression("count(*)")],
            Schema([Column("n", SQLType.INTEGER)]))
        sizes = sorted(len(lineage) for lineage in lineages_of(aggregate))
        assert sizes == [1, 2]

    def test_distinct_merges_lineage(self):
        source = MaterializedSource(
            Schema([Column("x", SQLType.INTEGER)]),
            [((1,), frozenset({TupleRef("t", 1, 1)})),
             ((1,), frozenset({TupleRef("t", 2, 1)})),
             ((2,), frozenset({TupleRef("t", 3, 1)}))])
        distinct = Distinct(source)
        assert rows_of(distinct) == [(1,), (2,)]
        assert lineages_of(distinct)[0] == frozenset(
            {TupleRef("t", 1, 1), TupleRef("t", 2, 1)})

    def test_sort_multi_key_stable(self):
        source = MaterializedSource(
            Schema([Column("a", SQLType.INTEGER),
                    Column("b", SQLType.INTEGER)]),
            [((1, 2), frozenset()), ((2, 1), frozenset()),
             ((1, 1), frozenset())])
        ordered = Sort(source, [(0, False), (1, True)])
        assert rows_of(ordered) == [(1, 2), (1, 1), (2, 1)]

    def test_sort_nulls_last(self):
        source = MaterializedSource(
            Schema([Column("a", SQLType.INTEGER)]),
            [((None,), frozenset()), ((1,), frozenset())])
        assert rows_of(Sort(source, [(0, False)])) == [(1,), (None,)]

    def test_limit_offset(self):
        source = MaterializedSource(
            Schema([Column("a", SQLType.INTEGER)]),
            [((i,), frozenset()) for i in range(5)])
        assert rows_of(Limit(source, 2, 1)) == [(1,), (2,)]

    def test_strip_columns(self):
        source = MaterializedSource(
            Schema([Column("a", SQLType.INTEGER),
                    Column("_sort0", SQLType.INTEGER)]),
            [((1, 9), frozenset())])
        stripped = StripColumns(source, 1,
                                Schema([Column("a", SQLType.INTEGER)]))
        assert rows_of(stripped) == [(1,)]


class TestUnionOperator:
    def test_concatenates(self):
        first = MaterializedSource(
            Schema([Column("a", SQLType.INTEGER)]),
            [((1,), frozenset())])
        second = MaterializedSource(
            Schema([Column("a", SQLType.INTEGER)]),
            [((2,), frozenset())])
        assert rows_of(Union([first, second])) == [(1,), (2,)]

    def test_width_mismatch_rejected(self):
        first = MaterializedSource(
            Schema([Column("a", SQLType.INTEGER)]), [])
        second = MaterializedSource(
            Schema([Column("a", SQLType.INTEGER),
                    Column("b", SQLType.INTEGER)]), [])
        with pytest.raises(ExecutionError):
            Union([first, second])

    def test_empty_union_rejected(self):
        with pytest.raises(ExecutionError):
            Union([])
