"""Versioned heap storage and data-directory persistence tests."""

import pytest

from repro.db.storage import DataDirectory, HeapTable
from repro.db.types import Column, Schema, SQLType
from repro.errors import CatalogError, ExecutionError, IntegrityError, TypeError_

SCHEMA = Schema([
    Column("id", SQLType.INTEGER, primary_key=True, not_null=True),
    Column("name", SQLType.TEXT),
    Column("price", SQLType.FLOAT),
])


def make_table():
    table = HeapTable("items", SCHEMA)
    table.insert((1, "apple", 1.5), tick=10)
    table.insert((2, "pear", 2.0), tick=10)
    return table


class TestHeapTable:
    def test_insert_assigns_sequential_rowids(self):
        table = make_table()
        assert [rowid for rowid, _ in table.scan()] == [1, 2]

    def test_insert_stamps_version(self):
        table = make_table()
        assert table.version_of(1) == 10

    def test_update_bumps_version(self):
        table = make_table()
        table.update(1, (1, "apple", 9.9), tick=20)
        assert table.version_of(1) == 20
        assert table.get(1)[2] == 9.9

    def test_delete_removes_row(self):
        table = make_table()
        table.delete(1)
        assert table.row_count == 1
        with pytest.raises(ExecutionError):
            table.get(1)

    def test_delete_unknown_rowid_raises(self):
        with pytest.raises(ExecutionError):
            make_table().delete(99)

    def test_primary_key_rejects_duplicates(self):
        table = make_table()
        with pytest.raises(IntegrityError):
            table.insert((1, "dup", 0.0), tick=11)

    def test_primary_key_allows_reuse_after_delete(self):
        table = make_table()
        table.delete(1)
        table.insert((1, "again", 0.0), tick=12)
        assert table.row_count == 2

    def test_update_to_conflicting_pk_raises(self):
        table = make_table()
        with pytest.raises(IntegrityError):
            table.update(1, (2, "x", 0.0), tick=13)

    def test_update_pk_change_reindexes(self):
        table = make_table()
        table.update(1, (5, "apple", 1.5), tick=13)
        table.insert((1, "new", 0.0), tick=14)  # old key free again
        assert table.row_count == 3

    def test_not_null_enforced(self):
        table = make_table()
        with pytest.raises(TypeError_):
            table.insert((None, "x", 1.0), tick=15)

    def test_type_coercion_on_insert(self):
        table = make_table()
        rowid = table.insert((3, "kiwi", 2), tick=16)  # int -> float
        assert table.get(rowid)[2] == 2.0
        assert isinstance(table.get(rowid)[2], float)

    def test_arity_mismatch_raises(self):
        with pytest.raises(TypeError_):
            make_table().insert((1, "x"), tick=17)

    def test_truncate_keeps_rowid_counter(self):
        table = make_table()
        table.truncate()
        assert table.row_count == 0
        assert table.insert((9, "z", 0.0), tick=18) == 3

    def test_invalid_table_name_rejected(self):
        with pytest.raises(CatalogError):
            HeapTable("bad name", SCHEMA)


class TestSerialization:
    def test_round_trip_preserves_rows_and_versions(self):
        table = make_table()
        table.update(2, (2, "pear", 3.5), tick=30)
        restored = HeapTable.deserialize(table.serialize())
        assert dict(restored.scan()) == dict(table.scan())
        assert restored.versions == table.versions
        assert restored.next_rowid == table.next_rowid

    def test_round_trip_preserves_schema(self):
        restored = HeapTable.deserialize(make_table().serialize())
        assert restored.schema == SCHEMA
        assert restored.schema.columns[0].primary_key

    def test_round_trip_null_values(self):
        table = HeapTable("t", Schema([Column("a", SQLType.INTEGER),
                                       Column("b", SQLType.TEXT)]))
        table.insert((None, None), tick=1)
        restored = HeapTable.deserialize(table.serialize())
        assert restored.get(1) == (None, None)

    def test_round_trip_text_with_commas_and_quotes(self):
        table = HeapTable("t", Schema([Column("s", SQLType.TEXT)]))
        table.insert(('a,"b",c\nd',), tick=1)
        restored = HeapTable.deserialize(table.serialize())
        assert restored.get(1) == ('a,"b",c\nd',)

    def test_pk_index_rebuilt_after_load(self):
        restored = HeapTable.deserialize(make_table().serialize())
        with pytest.raises(IntegrityError):
            restored.insert((1, "dup", 0.0), tick=40)

    def test_missing_header_raises(self):
        with pytest.raises(CatalogError):
            HeapTable.deserialize("no newline here")


class TestDataDirectory:
    def test_save_and_load(self, tmp_path):
        directory = DataDirectory(tmp_path / "data")
        table = make_table()
        directory.save_table(table)
        loaded = directory.load_table("items")
        assert dict(loaded.scan()) == dict(table.scan())

    def test_table_names_sorted(self, tmp_path):
        directory = DataDirectory(tmp_path)
        for name in ("zeta", "alpha"):
            directory.save_table(HeapTable(name, SCHEMA))
        assert directory.table_names() == ["alpha", "zeta"]

    def test_drop_table_removes_file(self, tmp_path):
        directory = DataDirectory(tmp_path)
        directory.save_table(make_table())
        directory.drop_table("items")
        assert directory.table_names() == []

    def test_load_missing_table_raises(self, tmp_path):
        with pytest.raises(CatalogError):
            DataDirectory(tmp_path).load_table("ghost")

    def test_total_bytes_counts_files(self, tmp_path):
        directory = DataDirectory(tmp_path)
        assert directory.total_bytes() == 0
        directory.save_table(make_table())
        assert directory.total_bytes() > 0

    def test_bigger_table_uses_more_bytes(self, tmp_path):
        directory = DataDirectory(tmp_path)
        small = HeapTable("small", SCHEMA)
        big = HeapTable("big", SCHEMA)
        small.insert((1, "x", 1.0), tick=1)
        for i in range(100):
            big.insert((i, "y" * 20, float(i)), tick=1)
        directory.save_table(small)
        before = directory.total_bytes()
        directory.save_table(big)
        assert directory.total_bytes() > before * 10
