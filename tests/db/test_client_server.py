"""Protocol, server, and client (with interceptors) tests."""

import pytest

from repro.db import Database, DBClient, DBServer, Interceptor
from repro.db import protocol
from repro.db.engine import StatementResult
from repro.db.types import Column, Schema, SQLType
from repro.errors import (
    CatalogError,
    ConnectionClosedError,
    ProtocolError,
)


@pytest.fixture
def server():
    database = Database()
    database.execute("CREATE TABLE t (x integer, s text)")
    database.execute("INSERT INTO t VALUES (1, 'a'), (2, 'b')")
    return DBServer(database)


@pytest.fixture
def client(server):
    db_client = DBClient(server.transport(), "test-app", "pid-1")
    db_client.connect()
    yield db_client
    db_client.close()


class TestProtocolFrames:
    def test_result_round_trip(self, server):
        result = server.database.execute("SELECT x, s FROM t")
        frame = protocol.result_to_wire(result)
        encoded = protocol.encode_frame(frame)
        decoded = protocol.result_from_wire(protocol.decode_frame(encoded))
        assert decoded.rows == result.rows
        assert decoded.column_names == result.column_names
        assert decoded.schema.types() == result.schema.types()

    def test_result_round_trip_with_lineage(self, server):
        result = server.database.execute("SELECT x FROM t", provenance=True)
        decoded = protocol.result_from_wire(
            protocol.decode_frame(protocol.encode_frame(
                protocol.result_to_wire(result))))
        assert decoded.lineages == result.lineages

    def test_dml_result_round_trip(self, server):
        result = server.database.execute("UPDATE t SET x = x + 1")
        decoded = protocol.result_from_wire(
            protocol.decode_frame(protocol.encode_frame(
                protocol.result_to_wire(result))))
        assert decoded.written == result.written
        assert decoded.written_lineage == result.written_lineage

    def test_malformed_frame_raises(self):
        with pytest.raises(ProtocolError):
            protocol.decode_frame("{not json")

    def test_frame_without_tag_raises(self):
        with pytest.raises(ProtocolError):
            protocol.decode_frame('{"x": 1}')


class TestServer:
    def test_connect_assigns_ids(self, server):
        first = server.handle(protocol.connect_frame("a", "p1"))
        second = server.handle(protocol.connect_frame("b", "p2"))
        assert first["connection_id"] != second["connection_id"]
        assert server.open_connections == 2

    def test_query_requires_connection(self, server):
        response = server.handle(protocol.query_frame(999, "SELECT 1"))
        assert response["frame"] == "error"

    def test_database_error_becomes_error_frame(self, server):
        conn = server.handle(protocol.connect_frame("a", "p1"))
        response = server.handle(protocol.query_frame(
            conn["connection_id"], "SELECT * FROM ghost"))
        assert response["frame"] == "error"
        assert response["error_type"] == "CatalogError"

    def test_shutdown_refuses_traffic(self, server):
        server.shutdown()
        response = server.handle(protocol.connect_frame("a", "p1"))
        assert response["frame"] == "error"

    def test_shutdown_checkpoints(self, tmp_path):
        database = Database(data_directory=tmp_path / "d")
        database.execute("CREATE TABLE t (x integer)")
        database.execute("INSERT INTO t VALUES (5)")
        DBServer(database).shutdown()
        reloaded = Database(data_directory=tmp_path / "d")
        assert reloaded.query("SELECT x FROM t") == [(5,)]


class TestClient:
    def test_query_round_trip(self, client):
        assert client.query("SELECT x FROM t ORDER BY x") == [(1,), (2,)]

    def test_execute_with_provenance(self, client):
        result = client.execute("SELECT x FROM t WHERE x = 1",
                                provenance=True)
        assert len(result.lineages[0]) == 1

    def test_server_error_raises_matching_exception(self, client):
        with pytest.raises(CatalogError):
            client.execute("SELECT * FROM ghost")

    def test_execute_before_connect_raises(self, server):
        fresh = DBClient(server.transport())
        with pytest.raises(ConnectionClosedError):
            fresh.execute("SELECT 1")

    def test_double_connect_raises(self, client):
        with pytest.raises(ProtocolError):
            client.connect()

    def test_close_is_idempotent(self, server):
        db_client = DBClient(server.transport())
        db_client.connect()
        db_client.close()
        db_client.close()

    def test_context_manager(self, server):
        with DBClient(server.transport()) as db_client:
            assert db_client.query("SELECT 1") == [(1,)]
        assert not db_client.connected

    def test_statements_sent_counter(self, client):
        client.query("SELECT 1")
        client.query("SELECT 2")
        assert client.statements_sent == 2


class RecordingInterceptor(Interceptor):
    def __init__(self):
        self.events = []

    def on_connect(self, client):
        self.events.append(("connect",))

    def before_execute(self, client, sql, provenance):
        self.events.append(("before", sql))
        return None

    def after_execute(self, client, sql, provenance, result):
        self.events.append(("after", sql, result.kind))

    def on_close(self, client):
        self.events.append(("close",))


class SubstitutingInterceptor(Interceptor):
    def __init__(self, canned):
        self.canned = canned

    def before_execute(self, client, sql, provenance):
        return self.canned


class TestInterceptors:
    def test_hooks_fire_in_order(self, server):
        recorder = RecordingInterceptor()
        db_client = DBClient(server.transport())
        db_client.add_interceptor(recorder)
        db_client.connect()
        db_client.query("SELECT 1")
        db_client.close()
        kinds = [event[0] for event in recorder.events]
        assert kinds == ["connect", "before", "after", "close"]

    def test_substitution_short_circuits_server(self, server):
        canned = StatementResult(
            kind="select",
            schema=Schema([Column("x", SQLType.INTEGER)]),
            rows=[(42,)], lineages=[frozenset()], rowcount=1)
        db_client = DBClient(server.transport())
        db_client.add_interceptor(SubstitutingInterceptor(canned))
        db_client.connect()
        result = db_client.execute("SELECT * FROM ghost")  # never sent
        assert result.rows == [(42,)]

    def test_after_execute_sees_substituted_result(self, server):
        canned = StatementResult(kind="select", rows=[(7,)])
        recorder = RecordingInterceptor()
        db_client = DBClient(server.transport())
        db_client.add_interceptor(SubstitutingInterceptor(canned))
        db_client.add_interceptor(recorder)
        db_client.connect()
        db_client.execute("SELECT 1")
        assert ("after", "SELECT 1", "select") in recorder.events

    def test_remove_interceptor(self, server):
        recorder = RecordingInterceptor()
        db_client = DBClient(server.transport())
        db_client.add_interceptor(recorder)
        db_client.remove_interceptor(recorder)
        db_client.connect()
        assert recorder.events == []
