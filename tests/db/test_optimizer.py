"""ANALYZE statistics and the cost-based planner.

Covers the statement end to end (parse → stats → persistence), the
cost model's observable plan choices (join order, build side,
index-vs-scan, IN-list cutoffs), the plan-cache interplay
(stats-version keying, re-ANALYZE invalidation), and the EXPLAIN
surfacing of estimated vs actual rows. Every stats-driven choice is
also checked to preserve query results exactly — statistics are
advisory, never semantic.
"""

from __future__ import annotations

import random

import pytest

from repro.db import Database
from repro.db.sql.parser import parse_sql
from repro.db.sql.render import render_statement
from repro.db.sql import ast
from repro.db.stats import ColumnStats, TableStats, compute_table_stats
from repro.errors import CatalogError, TransactionError


def explain(db, sql, session=None):
    result = db.execute("EXPLAIN " + sql, session=session)
    return "\n".join(row[0] for row in result.rows)


def bulk_insert(db, name, rows):
    table = db.catalog.get_table(name)
    tick = db.clock.tick()
    for row in rows:
        table.insert(tuple(row), tick)


# -- statement front end ------------------------------------------------------


class TestAnalyzeStatement:
    def test_parse_and_render_round_trip(self):
        for sql, table in [("ANALYZE", None), ("ANALYZE t", "t")]:
            statement = parse_sql(sql)[0]
            assert statement == ast.Analyze(table=table)
            assert render_statement(statement) == sql
            assert parse_sql(render_statement(statement))[0] == statement

    def test_explain_analyze_still_parses_as_explain(self):
        statement = parse_sql("EXPLAIN ANALYZE SELECT 1")[0]
        assert isinstance(statement, ast.Explain)
        assert statement.analyze

    def test_analyze_unknown_table_raises(self):
        with pytest.raises(CatalogError):
            Database().execute("ANALYZE nope")

    def test_analyze_is_barred_inside_a_transaction(self):
        db = Database()
        db.execute("CREATE TABLE t (a integer)")
        session = db.create_session()
        db.execute("BEGIN", session=session)
        with pytest.raises(TransactionError):
            db.execute("ANALYZE t", session=session)

    def test_analyze_reports_per_table_summary(self):
        db = Database()
        db.execute("CREATE TABLE t (a integer, b text)")
        db.execute("INSERT INTO t VALUES (1, 'x'), (2, NULL)")
        db.execute("CREATE TABLE u (k integer)")
        result = db.execute("ANALYZE")
        assert result.kind == "analyze"
        assert result.stats["analyzed"] == {
            "t": {"row_count": 2, "columns": 2},
            "u": {"row_count": 0, "columns": 1},
        }


# -- collected statistics -----------------------------------------------------


class TestStatisticsContent:
    def test_ndv_nulls_min_max_histogram(self):
        db = Database()
        db.execute("CREATE TABLE t (a integer, b text)")
        rows = [(value % 10, None if value % 4 == 0 else "v")
                for value in range(100)]
        bulk_insert(db, "t", rows)
        db.execute("ANALYZE t")
        stats = db.catalog.stats_for("t")
        assert stats.row_count == 100
        a = stats.column("a")
        assert a.ndv == 10
        assert a.null_fraction == 0.0
        assert (a.min_value, a.max_value) == (0, 9)
        assert a.histogram[0] == 0 and a.histogram[-1] == 9
        assert a.histogram == sorted(a.histogram)
        b = stats.column("b")
        assert b.ndv == 1
        assert b.null_fraction == 0.25

    def test_histogram_drives_range_selectivity(self):
        # 90% of the mass at one low value: col < 10 must estimate far
        # above the uniform guess
        values = [1] * 900 + list(range(10, 110))
        column = compute_table_stats_for_values(values)
        high = column.range_selectivity("<", 10)
        assert high > 0.8
        low = column.range_selectivity(">", 50)
        assert low < 0.1

    def test_eq_selectivity_out_of_range_is_zero(self):
        column = compute_table_stats_for_values(list(range(100)))
        assert column.eq_selectivity(1000) == 0.0
        assert 0.009 < column.eq_selectivity(50) < 0.011

    def test_round_trips_through_dict(self):
        stats = TableStats(row_count=7, columns={
            "a": ColumnStats(ndv=3, null_fraction=0.5, min_value=1,
                             max_value=9, histogram=[1, 4, 9])})
        assert TableStats.from_dict(stats.to_dict()) == stats


def compute_table_stats_for_values(values):
    db = Database()
    db.execute("CREATE TABLE v (x integer)")
    bulk_insert(db, "v", [(value,) for value in values])
    return compute_table_stats(db.catalog.get_table("v")).column("x")


# -- durability ---------------------------------------------------------------


class TestStatsPersistence:
    def test_stats_survive_wal_recovery_without_checkpoint(self, tmp_path):
        db = Database(data_directory=tmp_path)
        db.execute("CREATE TABLE t (a integer)")
        db.execute("INSERT INTO t VALUES (1), (2), (3)")
        db.execute("ANALYZE t")
        # no checkpoint/close: reopen replays the WAL's analyze record
        recovered = Database(data_directory=tmp_path)
        stats = recovered.catalog.stats_for("t")
        assert stats is not None and stats.row_count == 3
        assert stats.column("a").ndv == 3

    def test_stats_survive_checkpoint_and_reopen(self, tmp_path):
        db = Database(data_directory=tmp_path)
        db.execute("CREATE TABLE t (a integer)")
        db.execute("INSERT INTO t VALUES (1), (1), (2)")
        db.execute("ANALYZE t")
        db.close()  # checkpoint: WAL reset, stats move to the meta file
        recovered = Database(data_directory=tmp_path)
        stats = recovered.catalog.stats_for("t")
        assert stats is not None and stats.row_count == 3
        assert stats.column("a").ndv == 2

    def test_drop_table_drops_its_stats(self):
        db = Database()
        db.execute("CREATE TABLE t (a integer)")
        db.execute("ANALYZE t")
        assert db.catalog.stats_for("t") is not None
        db.execute("DROP TABLE t")
        assert db.catalog.stats_for("t") is None


# -- plan choices -------------------------------------------------------------


def skewed_three_table_db(flag_cutoff=10):
    """Fact × fan-out junction × selective dimension."""
    db = Database()
    db.execute("CREATE TABLE f (k integer, d1 integer, d2 integer)")
    db.execute("CREATE TABLE j (d1 integer, payload integer)")
    db.execute("CREATE TABLE s (d2 integer, flag integer)")
    rng = random.Random(11)
    bulk_insert(db, "f", [(k, rng.randrange(100), rng.randrange(300))
                          for k in range(3000)])
    bulk_insert(db, "j", [(d1, p) for d1 in range(100)
                          for p in range(5)])
    bulk_insert(db, "s", [(d2, rng.randrange(1000))
                          for d2 in range(300)])
    sql = ("SELECT count(*) FROM f, j, s WHERE f.d1 = j.d1 "
           f"AND f.d2 = s.d2 AND s.flag < {flag_cutoff}")
    return db, sql


class TestJoinOrdering:
    def test_rote_planner_joins_in_from_order(self):
        db, sql = skewed_three_table_db()
        plan = explain(db, sql)
        # deeper operators print later: the f⋈j join executes first
        assert plan.index("f.d1 = j.d1") > plan.index("f.d2 = s.d2")

    def test_analyze_moves_the_selective_dimension_first(self):
        db, sql = skewed_three_table_db()
        expected = db.query(sql)
        db.execute("ANALYZE")
        plan = explain(db, sql)
        # the 1%-selective s-join now executes before the fan-out
        # j-join (deeper in the tree, later in the rendering)
        assert plan.index("f.d2 = s.d2") > plan.index("f.d1 = j.d1")
        assert db.query(sql) == expected

    def test_estimates_appear_in_plain_explain_only_after_analyze(self):
        db, sql = skewed_three_table_db()
        assert "est=" not in explain(db, sql)
        db.execute("ANALYZE")
        assert "est=" in explain(db, sql)


class TestBuildSide:
    def test_overlay_insert_flips_the_build_side(self):
        """Satellite regression: `_estimate_rows` must see the
        session's MVCC overlay, not just the shared heap — a
        transaction that bulk-inserts into the small join side must
        get the flipped build side for its own plans."""
        db = Database()
        db.execute("CREATE TABLE small (k integer)")
        db.execute("CREATE TABLE big (k integer, v integer)")
        bulk_insert(db, "small", [(k,) for k in range(5)])
        bulk_insert(db, "big", [(k % 5, k) for k in range(100)])
        sql = "SELECT count(*) FROM small, big WHERE small.k = big.k"
        assert "build=left" in explain(db, sql)

        session = db.create_session()
        db.execute("BEGIN", session=session)
        values = ", ".join(f"({k})" for k in range(500))
        db.execute(f"INSERT INTO small VALUES {values}", session=session)
        # inside the transaction `small` is now the big side
        assert "build=right" in explain(db, sql, session=session)
        # …while other sessions still see five rows and build left
        assert "build=left" in explain(db, sql)
        db.execute("ROLLBACK", session=session)
        assert "build=left" in explain(db, sql)

    def test_stats_scaled_build_side_beats_raw_counts(self):
        """A filtered big side can hash fewer rows than the raw-count
        choice would: with stats the build side follows the estimate."""
        db = Database()
        db.execute("CREATE TABLE a (k integer, flag integer)")
        db.execute("CREATE TABLE b (k integer)")
        bulk_insert(db, "a", [(k, k % 100) for k in range(1000)])
        bulk_insert(db, "b", [(k,) for k in range(200)])
        sql = ("SELECT count(*) FROM a, b "
               "WHERE a.k = b.k AND a.flag = 0")
        # raw counts: a(1000) > b(200) → build right
        assert "build=right" in explain(db, sql)
        expected = db.query(sql)
        db.execute("ANALYZE")
        # est(a, flag=0) = 10 < 200 → build left
        assert "build=left" in explain(db, sql)
        assert db.query(sql) == expected


class TestIndexVersusScan:
    def make_db(self):
        db = Database()
        db.execute("CREATE TABLE t (k integer, v integer)")
        bulk_insert(db, "t", [(k, k % 7) for k in range(200)])
        db.execute("CREATE INDEX idx_k ON t (k)")
        return db

    def test_short_in_list_stays_an_index_probe(self):
        db = self.make_db()
        db.execute("ANALYZE t")
        sql = "SELECT v FROM t WHERE k IN (1, 2, 3)"
        plan = explain(db, sql)
        assert "IndexScan on t using idx_k" in plan
        assert "cost" in plan  # the winning cost is shown

    def test_giant_in_list_falls_back_to_the_scan(self):
        db = self.make_db()
        items = ", ".join(str(k) for k in range(0, 200, 2))
        sql = f"SELECT v FROM t WHERE k IN ({items})"
        # rote planner: always probes, no matter the list
        assert "IndexScan" in explain(db, sql)
        expected = sorted(db.query(sql))
        db.execute("ANALYZE t")
        plan = explain(db, sql)
        assert "IndexScan" not in plan
        assert "idx_k skipped" in plan  # EXPLAIN says why scan won
        assert sorted(db.query(sql)) == expected

    def test_unselective_eq_probe_falls_back_to_the_scan(self):
        db = Database()
        db.execute("CREATE TABLE t (flag integer)")
        bulk_insert(db, "t", [(k % 2,) for k in range(100)])
        db.execute("CREATE INDEX idx_flag ON t (flag)")
        sql = "SELECT count(*) FROM t WHERE flag = 1"
        assert "IndexScan" in explain(db, sql)
        db.execute("ANALYZE t")
        plan = explain(db, sql)
        assert "IndexScan" not in plan and "idx_flag skipped" in plan
        assert db.query(sql) == [(50,)]


class TestPlanCacheInvalidation:
    def test_re_analyze_after_skew_shift_changes_the_cached_plan(self):
        """Satellite regression: the plan cache key must include a
        stats version — a plan chosen before ANALYZE (or before a
        skew shift) must not be served forever after."""
        db, sql = skewed_three_table_db()
        db.execute("ANALYZE")
        expected = db.query(sql)
        plan = explain(db, sql)
        assert plan.index("s.d2") > plan.index("j.d1")  # s joins first
        db.query(sql)
        assert db.plan_cache.hits >= 1  # cached while stats are stable

        # skew shift: s becomes totally unselective, j becomes tiny
        db.execute("UPDATE s SET flag = 0")
        db.execute("DELETE FROM j WHERE d1 >= 2")
        shifted = db.query(sql)  # still served from the stale plan
        db.execute("ANALYZE")
        plan = explain(db, sql)
        # the cached pre-shift plan is unreachable: j (now 10 rows)
        # joins before the no-longer-selective s
        assert plan.index("j.d1") > plan.index("s.d2")
        assert db.query(sql) == shifted
        assert expected != shifted  # the shift really changed the data

    def test_stats_version_is_part_of_the_cache_key(self):
        db = Database()
        db.execute("CREATE TABLE t (a integer)")
        db.execute("INSERT INTO t VALUES (1)")
        db.query("SELECT a FROM t")
        keys_before = db.plan_cache.keys()
        db.execute("ANALYZE t")
        db.query("SELECT a FROM t")
        keys_after = db.plan_cache.keys()
        assert keys_before != keys_after
        assert keys_before[0][:3] == keys_after[0][:3]


class TestExplainEstimates:
    def test_estimated_vs_actual_rows_per_operator(self):
        db, sql = skewed_three_table_db()
        db.execute("ANALYZE")
        result = db.execute("EXPLAIN ANALYZE " + sql)
        text = "\n".join(row[0] for row in result.rows)
        assert "est=" in text and "rows=" in text
        operators = result.stats["analyze"]["operators"]
        scans = [entry for entry in operators
                 if entry["operator"] == "SeqScan"]
        assert scans and all("est_rows" in entry for entry in scans)
        for entry in scans:
            if entry["est_rows"] >= 100:  # unfiltered base tables
                assert entry["est_rows"] == entry["rows"]

    def test_without_stats_explain_analyze_is_unchanged(self):
        db, sql = skewed_three_table_db()
        result = db.execute("EXPLAIN ANALYZE " + sql)
        text = "\n".join(row[0] for row in result.rows)
        assert "est=" not in text
        assert all("est_rows" not in entry
                   for entry in result.stats["analyze"]["operators"])
