"""Write-ahead log unit tests and engine-level durability tests."""

import pytest

from repro.db import Database
from repro.db.wal import WAL_MAGIC, WriteAheadLog, encode_record
from repro.errors import TransactionError, WALCorruptionError


def make_wal(tmp_path):
    wal = WriteAheadLog(tmp_path / "wal.log")
    wal.open()
    return wal


def put(table, rowid, value, version=1):
    return {"op": "put", "table": table, "rowid": rowid,
            "version": version, "values": [value]}


class TestWALFormat:
    def test_open_creates_magic_only_file(self, tmp_path):
        make_wal(tmp_path)
        assert (tmp_path / "wal.log").read_bytes() == WAL_MAGIC

    def test_committed_batch_round_trips(self, tmp_path):
        wal = make_wal(tmp_path)
        wal.append(put("t", 1, "a"))
        wal.append(put("t", 2, "b"))
        wal.commit(tick=7)
        recovery = WriteAheadLog(tmp_path / "wal.log").open()
        assert recovery.records == [put("t", 1, "a"), put("t", 2, "b")]
        assert recovery.last_tick == 7
        assert recovery.committed_batches == 1
        assert not recovery.truncated

    def test_append_buffers_without_io(self, tmp_path):
        wal = make_wal(tmp_path)
        wal.append(put("t", 1, "a"))
        assert (tmp_path / "wal.log").read_bytes() == WAL_MAGIC
        assert wal.pending_records == [put("t", 1, "a")]

    def test_abort_discards_buffer(self, tmp_path):
        wal = make_wal(tmp_path)
        wal.append(put("t", 1, "a"))
        wal.abort()
        wal.append(put("t", 2, "b"))
        wal.commit(tick=3)
        recovery = WriteAheadLog(tmp_path / "wal.log").open()
        assert recovery.records == [put("t", 2, "b")]

    def test_reset_empties_log(self, tmp_path):
        wal = make_wal(tmp_path)
        wal.append(put("t", 1, "a"))
        wal.commit(tick=1)
        wal.reset()
        assert (tmp_path / "wal.log").read_bytes() == WAL_MAGIC

    def test_multiple_batches_accumulate(self, tmp_path):
        wal = make_wal(tmp_path)
        for tick in (1, 2, 3):
            wal.append(put("t", tick, "v", version=tick))
            wal.commit(tick=tick)
        recovery = WriteAheadLog(tmp_path / "wal.log").open()
        assert len(recovery.records) == 3
        assert recovery.last_tick == 3
        assert recovery.committed_batches == 3


class TestTornTails:
    def _committed_log(self, tmp_path):
        wal = make_wal(tmp_path)
        wal.append(put("t", 1, "a"))
        wal.commit(tick=5)
        return tmp_path / "wal.log", (tmp_path / "wal.log").read_bytes()

    def test_partial_frame_is_truncated(self, tmp_path):
        path, good = self._committed_log(tmp_path)
        torn = encode_record(put("t", 2, "b"))[:-3]
        path.write_bytes(good + torn)
        recovery = WriteAheadLog(path).open()
        assert recovery.records == [put("t", 1, "a")]
        assert recovery.torn_bytes == len(torn)
        assert path.read_bytes() == good

    def test_partial_header_is_truncated(self, tmp_path):
        path, good = self._committed_log(tmp_path)
        path.write_bytes(good + b"\x05")
        recovery = WriteAheadLog(path).open()
        assert recovery.torn_bytes == 1
        assert path.read_bytes() == good

    def test_checksum_mismatch_is_truncated(self, tmp_path):
        path, good = self._committed_log(tmp_path)
        frame = bytearray(encode_record(put("t", 2, "b")))
        frame[-1] ^= 0xFF  # corrupt the payload, not the header
        path.write_bytes(good + bytes(frame))
        recovery = WriteAheadLog(path).open()
        assert recovery.records == [put("t", 1, "a")]
        assert path.read_bytes() == good

    def test_uncommitted_records_are_dropped(self, tmp_path):
        path, good = self._committed_log(tmp_path)
        # a complete, checksummed record that never got its marker
        path.write_bytes(good + encode_record(put("t", 2, "b")))
        recovery = WriteAheadLog(path).open()
        assert recovery.records == [put("t", 1, "a")]
        assert recovery.dropped_records == 1
        assert path.read_bytes() == good

    def test_torn_magic_is_rewritten(self, tmp_path):
        path = tmp_path / "wal.log"
        path.write_bytes(WAL_MAGIC[:3])
        recovery = WriteAheadLog(path).open()
        assert recovery.torn_bytes == 3
        assert path.read_bytes() == WAL_MAGIC

    def test_recovery_is_idempotent(self, tmp_path):
        path, good = self._committed_log(tmp_path)
        path.write_bytes(good + b"garbage-tail")
        first = WriteAheadLog(path).open()
        second = WriteAheadLog(path).open()
        assert first.records == second.records
        assert not second.truncated


class TestCorruption:
    def test_bad_magic_raises(self, tmp_path):
        path = tmp_path / "wal.log"
        path.write_bytes(b"NOTAWAL!" + b"rest")
        with pytest.raises(WALCorruptionError):
            WriteAheadLog(path).open()

    def test_checksummed_garbage_payload_raises(self, tmp_path):
        import struct
        import zlib
        path = tmp_path / "wal.log"
        payload = b"{this is not json"
        frame = struct.pack("<II", len(payload),
                            zlib.crc32(payload)) + payload
        path.write_bytes(WAL_MAGIC + frame)
        with pytest.raises(WALCorruptionError):
            WriteAheadLog(path).open()

    def test_record_without_op_raises(self, tmp_path):
        path = tmp_path / "wal.log"
        path.write_bytes(WAL_MAGIC + encode_record({"x": 1}))
        with pytest.raises(WALCorruptionError):
            WriteAheadLog(path).open()


class TestEngineDurability:
    """Committed statements survive without any checkpoint."""

    def test_committed_rows_survive_without_checkpoint(self, tmp_path):
        db = Database(data_directory=tmp_path / "d")
        db.execute("CREATE TABLE t (id integer PRIMARY KEY, v text)")
        db.execute("INSERT INTO t VALUES (1, 'a'), (2, 'b')")
        # no checkpoint, no close: the WAL alone must carry the data
        reopened = Database(data_directory=tmp_path / "d")
        assert reopened.query("SELECT id, v FROM t ORDER BY id") == [
            (1, "a"), (2, "b")]

    def test_uncommitted_transaction_is_invisible_after_reopen(
            self, tmp_path):
        db = Database(data_directory=tmp_path / "d")
        db.execute("CREATE TABLE t (id integer)")
        db.execute("INSERT INTO t VALUES (1)")
        db.execute("BEGIN")
        db.execute("INSERT INTO t VALUES (2)")
        # crash before COMMIT: just abandon the instance
        reopened = Database(data_directory=tmp_path / "d")
        assert reopened.query("SELECT id FROM t") == [(1,)]

    def test_committed_transaction_survives(self, tmp_path):
        db = Database(data_directory=tmp_path / "d")
        db.execute("CREATE TABLE t (id integer)")
        db.execute("BEGIN")
        db.execute("INSERT INTO t VALUES (1)")
        db.execute("INSERT INTO t VALUES (2)")
        db.execute("COMMIT")
        reopened = Database(data_directory=tmp_path / "d")
        assert reopened.query("SELECT id FROM t ORDER BY id") == [
            (1,), (2,)]

    def test_rolled_back_work_never_reaches_the_log(self, tmp_path):
        db = Database(data_directory=tmp_path / "d")
        db.execute("CREATE TABLE t (id integer)")
        db.execute("BEGIN")
        db.execute("INSERT INTO t VALUES (9)")
        db.execute("ROLLBACK")
        db.execute("INSERT INTO t VALUES (1)")
        reopened = Database(data_directory=tmp_path / "d")
        assert reopened.query("SELECT id FROM t") == [(1,)]

    def test_deletes_and_updates_replay(self, tmp_path):
        db = Database(data_directory=tmp_path / "d")
        db.execute("CREATE TABLE t (id integer PRIMARY KEY, v text)")
        db.execute("INSERT INTO t VALUES (1, 'a'), (2, 'b'), (3, 'c')")
        db.checkpoint()
        db.execute("UPDATE t SET v = 'z' WHERE id = 2")
        db.execute("DELETE FROM t WHERE id = 1")
        reopened = Database(data_directory=tmp_path / "d")
        assert reopened.query("SELECT id, v FROM t ORDER BY id") == [
            (2, "z"), (3, "c")]

    def test_ddl_replays(self, tmp_path):
        db = Database(data_directory=tmp_path / "d")
        db.execute("CREATE TABLE a (id integer)")
        db.execute("CREATE TABLE b (id integer)")
        db.execute("CREATE INDEX ix_a ON a (id)")
        db.execute("DROP TABLE b")
        reopened = Database(data_directory=tmp_path / "d")
        assert reopened.catalog.table_names() == ["a"]
        assert "ix_a" in reopened.catalog.get_table("a").indexes

    def test_clock_resumes_past_recovered_ticks(self, tmp_path):
        db = Database(data_directory=tmp_path / "d")
        db.execute("CREATE TABLE t (id integer)")
        db.execute("INSERT INTO t VALUES (1)")
        before = db.clock.now
        reopened = Database(data_directory=tmp_path / "d")
        assert reopened.clock.now >= before

    def test_rowids_stay_monotonic_after_recovery(self, tmp_path):
        db = Database(data_directory=tmp_path / "d")
        db.execute("CREATE TABLE t (id integer)")
        db.execute("INSERT INTO t VALUES (1), (2), (3)")
        db.execute("DELETE FROM t WHERE id = 3")
        reopened = Database(data_directory=tmp_path / "d")
        table = reopened.catalog.get_table("t")
        assert table.next_rowid > max(table.rows, default=0)
        reopened.execute("INSERT INTO t VALUES (4)")
        assert len(set(table.rows)) == table.row_count

    def test_checkpoint_inside_transaction_raises(self, tmp_path):
        db = Database(data_directory=tmp_path / "d")
        db.execute("CREATE TABLE t (id integer)")
        db.execute("BEGIN")
        with pytest.raises(TransactionError):
            db.checkpoint()
        db.execute("ROLLBACK")

    def test_checkpoint_resets_wal(self, tmp_path):
        db = Database(data_directory=tmp_path / "d")
        db.execute("CREATE TABLE t (id integer)")
        db.execute("INSERT INTO t VALUES (1)")
        assert (tmp_path / "d" / "wal.log").stat().st_size > len(WAL_MAGIC)
        db.checkpoint()
        assert (tmp_path / "d" / "wal.log").read_bytes() == WAL_MAGIC
        reopened = Database(data_directory=tmp_path / "d")
        assert reopened.query("SELECT id FROM t") == [(1,)]

    def test_dropped_table_file_removed_at_checkpoint(self, tmp_path):
        db = Database(data_directory=tmp_path / "d")
        db.execute("CREATE TABLE t (id integer)")
        db.checkpoint()
        assert (tmp_path / "d" / "t.tbl").exists()
        db.execute("DROP TABLE t")
        assert (tmp_path / "d" / "t.tbl").exists()  # deferred
        db.checkpoint()
        assert not (tmp_path / "d" / "t.tbl").exists()

    def test_autoflush_mirrors_committed_state(self, tmp_path):
        db = Database(data_directory=tmp_path / "d", autoflush=True)
        db.execute("CREATE TABLE t (id integer)")
        db.execute("INSERT INTO t VALUES (1)")
        reopened = Database(data_directory=tmp_path / "d")
        assert reopened.query("SELECT id FROM t") == [(1,)]
