"""UNION / UNION ALL tests."""

import pytest

from repro.db import Database
from repro.db.sql import ast
from repro.db.sql.parser import parse_one
from repro.db.sql.render import render_statement
from repro.errors import ExecutionError


@pytest.fixture
def db():
    database = Database()
    database.execute("CREATE TABLE a (x integer)")
    database.execute("CREATE TABLE b (x integer)")
    database.execute("INSERT INTO a VALUES (1), (2), (3)")
    database.execute("INSERT INTO b VALUES (3), (4)")
    return database


class TestParsing:
    def test_union_parses_to_setop(self):
        tree = parse_one("SELECT x FROM a UNION SELECT x FROM b")
        assert isinstance(tree, ast.SetOp)
        assert tree.all is False

    def test_union_all(self):
        tree = parse_one("SELECT x FROM a UNION ALL SELECT x FROM b")
        assert tree.all is True

    def test_chain_left_associative(self):
        tree = parse_one("SELECT 1 UNION SELECT 2 UNION SELECT 3")
        assert isinstance(tree.left, ast.SetOp)
        assert isinstance(tree.right, ast.Select)

    def test_render_round_trip(self):
        for sql in ("SELECT x FROM a UNION SELECT x FROM b",
                    "SELECT x FROM a UNION ALL SELECT x FROM b",
                    "SELECT 1 UNION SELECT 2 UNION ALL SELECT 3"):
            tree = parse_one(sql)
            assert parse_one(render_statement(tree)) == tree


class TestExecution:
    def test_union_deduplicates(self, db):
        rows = db.query("SELECT x FROM a UNION SELECT x FROM b")
        assert sorted(rows) == [(1,), (2,), (3,), (4,)]

    def test_union_all_keeps_duplicates(self, db):
        rows = db.query("SELECT x FROM a UNION ALL SELECT x FROM b")
        assert sorted(rows) == [(1,), (2,), (3,), (3,), (4,)]

    def test_union_of_expressions(self, db):
        rows = db.query("SELECT x * 10 FROM a WHERE x = 1 "
                        "UNION SELECT x FROM b WHERE x = 4")
        assert sorted(rows) == [(4,), (10,)]

    def test_union_schema_from_first_branch(self, db):
        result = db.execute(
            "SELECT x AS left_name FROM a UNION SELECT x FROM b")
        assert result.column_names == ["left_name"]

    def test_arity_mismatch_raises(self, db):
        with pytest.raises(ExecutionError):
            db.query("SELECT x FROM a UNION SELECT x, x FROM b")

    def test_three_way_chain(self, db):
        rows = db.query("SELECT 1 UNION SELECT 2 UNION SELECT 1")
        assert sorted(rows) == [(1,), (2,)]


class TestUnionLineage:
    def test_union_all_passes_lineage_through(self, db):
        result = db.execute(
            "SELECT x FROM a WHERE x = 1 UNION ALL "
            "SELECT x FROM b WHERE x = 4", provenance=True)
        tables = sorted(ref.table for lineage in result.lineages
                        for ref in lineage)
        assert tables == ["a", "b"]

    def test_union_merges_duplicate_lineages(self, db):
        result = db.execute(
            "SELECT x FROM a WHERE x = 3 UNION "
            "SELECT x FROM b WHERE x = 3", provenance=True)
        assert len(result.rows) == 1
        tables = sorted(ref.table for ref in result.lineages[0])
        assert tables == ["a", "b"]  # both branches contributed

    def test_union_in_audited_application(self, tmp_path):
        from repro.core import ldv_audit, ldv_exec
        from repro.db import DBServer
        from repro.vos import VirtualOS

        vos = VirtualOS()
        database = Database(clock=vos.clock)
        database.execute("CREATE TABLE a (x integer)")
        database.execute("CREATE TABLE b (x integer)")
        database.execute("INSERT INTO a VALUES (1), (2)")
        database.execute("INSERT INTO b VALUES (2), (9)")
        vos.register_db_server("main", DBServer(database).transport())
        vos.fs.write_file("/usr/lib/dbms/pg", b"\x7fELF" + b"\0" * 512,
                          create_parents=True)

        def app(ctx):
            client = ctx.connect_db("main")
            rows = client.query(
                "SELECT x FROM a UNION SELECT x FROM b")
            ctx.write_file("/out.txt", str(sorted(rows)))
            client.close()

        vos.register_program("/bin/app", app)
        report = ldv_audit(vos, "/bin/app", tmp_path / "pkg",
                           mode="server-included", database=database,
                           server_name="main",
                           server_binary_paths=["/usr/lib/dbms/pg"])
        # all four source tuples are relevant (both tables sliced)
        tables = {ref.table
                  for ref in report.session.relevant_tuples.refs()}
        assert tables == {"a", "b"}
        original = vos.fs.read_file("/out.txt")
        result = ldv_exec(tmp_path / "pkg", {"/bin/app": app},
                          scratch_dir=tmp_path / "scratch")
        assert result.outputs["/out.txt"] == original
