"""Crash-recovery matrix for *concurrent* committers.

Two sessions run interleaved BEGIN..COMMIT transactions; a tracing run
discovers every IO injection point the workload passes through, and the
matrix re-runs it with a crash scheduled at each. Recovery must land on
a state containing exactly the transactions whose COMMIT completed —
the one mid-commit either applied entirely or not at all, never as a
torn mixture of two sessions' writes.

Durability IO happens only at commit boundaries (overlays keep
uncommitted writes off the WAL entirely), so the valid post-recovery
states are precisely the shadow snapshots taken after each durable
statement of the interleaving.
"""

from __future__ import annotations

import shutil
import tempfile
from pathlib import Path

import pytest

from repro.db import Database
from repro.errors import WriteConflictError
from repro.faults import FaultInjector, FaultyIO, SimulatedCrash

pytestmark = pytest.mark.crash

# Each entry: (session, sql, durable). ``durable`` marks statements
# that end a durability unit (autocommit DDL/DML, successful COMMIT);
# BEGIN and in-transaction statements never touch the disk.
DISJOINT = [
    (None, "CREATE TABLE accounts "
           "(id integer PRIMARY KEY, owner text, balance float)", True),
    (None, "INSERT INTO accounts VALUES "
           "(1, 'ada', 10.0), (2, 'bob', 20.0)", True),
    ("a", "BEGIN", False),
    ("b", "BEGIN", False),
    ("a", "UPDATE accounts SET balance = 11.0 WHERE id = 1", False),
    ("b", "INSERT INTO accounts VALUES (3, 'cyd', 30.0)", False),
    ("a", "INSERT INTO accounts VALUES (4, 'dee', 40.0)", False),
    ("b", "UPDATE accounts SET balance = 22.0 WHERE id = 2", False),
    ("a", "COMMIT", True),
    ("b", "COMMIT", True),
    (None, "INSERT INTO accounts VALUES (5, 'eve', 50.0)", True),
]

# Overlapping write-sets: b loses first-committer-wins at COMMIT, so
# only a's transaction ever reaches the WAL.
CONFLICTING = [
    (None, "CREATE TABLE accounts "
           "(id integer PRIMARY KEY, owner text, balance float)", True),
    (None, "INSERT INTO accounts VALUES "
           "(1, 'ada', 10.0), (2, 'bob', 20.0)", True),
    ("a", "BEGIN", False),
    ("b", "BEGIN", False),
    ("a", "UPDATE accounts SET balance = 11.0 WHERE id = 1", False),
    ("b", "UPDATE accounts SET balance = 99.0 WHERE id = 1", False),
    ("a", "COMMIT", True),
    ("b", "COMMIT", False),  # WriteConflictError: nothing durable
    (None, "INSERT INTO accounts VALUES (5, 'eve', 50.0)", True),
]

WORKLOADS = {"disjoint": DISJOINT, "conflicting": CONFLICTING}


def apply_entry(database, sessions, entry):
    target, sql, _durable = entry
    try:
        database.execute(sql, session=sessions.get(target))
    except WriteConflictError:
        pass  # the conflicting workload expects exactly this


def run_workload(database, script):
    sessions = {"a": database.create_session("a"),
                "b": database.create_session("b")}
    for entry in script:
        apply_entry(database, sessions, entry)


def dump(database):
    state = {}
    for name in sorted(database.catalog.table_names()):
        table = database.catalog.get_table(name)
        state[name] = (sorted(table.rows.values()),
                       sorted(table.indexes))
    return state


def crash_run(data_dir, injector, script):
    """Run until the injected crash; count completed statements."""
    completed = 0
    try:
        database = Database(data_directory=data_dir,
                            io=FaultyIO(injector), autoflush=True)
        sessions = {"a": database.create_session("a"),
                    "b": database.create_session("b")}
        for entry in script:
            apply_entry(database, sessions, entry)
            completed += 1
    except SimulatedCrash:
        return completed, True
    return completed, False


def _discover_trace(script):
    root = tempfile.mkdtemp(prefix="ldv-concurrent-crash-")
    try:
        injector = FaultInjector()
        database = Database(data_directory=Path(root) / "d",
                            io=FaultyIO(injector), autoflush=True)
        run_workload(database, script)
        return list(injector.trace)
    finally:
        shutil.rmtree(root, ignore_errors=True)


TRACES = {name: _discover_trace(script)
          for name, script in WORKLOADS.items()}


def _shadow_snapshots(script):
    """Committed state after each durable statement: SNAPSHOTS[k] is
    the only legal recovery outcome once exactly k durable units have
    been fsynced (the unit in flight may add one more)."""
    snapshots = [{}]
    shadow = Database()
    sessions = {"a": shadow.create_session("a"),
                "b": shadow.create_session("b")}
    for entry in script:
        apply_entry(shadow, sessions, entry)
        if entry[2]:
            snapshots.append(dump(shadow))
    return snapshots


SNAPSHOTS = {name: _shadow_snapshots(script)
             for name, script in WORKLOADS.items()}


def durable_units(script, completed):
    return sum(1 for entry in script[:completed] if entry[2])


def assert_concurrent_recovery(data_dir, workload, completed):
    script = WORKLOADS[workload]
    snapshots = SNAPSHOTS[workload]
    units = durable_units(script, completed)
    recovered = Database(data_directory=data_dir)
    state = dump(recovered)
    legal = snapshots[units:units + 2]  # in-flight unit: all or nothing
    assert state in legal, (
        f"recovered state is a torn mixture: not snapshot {units} "
        f"nor {units + 1}")
    # structural invariants survive concurrent commits too
    for name in recovered.catalog.table_names():
        table = recovered.catalog.get_table(name)
        assert table.next_rowid > max(table.rows, default=0)
        for version in table.versions.values():
            assert recovered.clock.now >= version
    # recovery is a fixed point
    assert dump(Database(data_directory=data_dir)) == state
    return state


class TestDiscovery:
    @pytest.mark.parametrize("workload", sorted(WORKLOADS))
    def test_workloads_reach_commit_io(self, workload):
        points = {point for point, _ in TRACES[workload]}
        assert "wal.append" in points
        assert "wal.fsync" in points

    def test_conflicting_workload_commits_less(self):
        # b's aborted COMMIT must not add WAL traffic
        appends = {name: sum(1 for point, _ in TRACES[name]
                             if point == "wal.append")
                   for name in WORKLOADS}
        assert appends["conflicting"] < appends["disjoint"]

    @pytest.mark.parametrize("workload", sorted(WORKLOADS))
    def test_trace_is_deterministic(self, workload):
        assert _discover_trace(WORKLOADS[workload]) == TRACES[workload]


CASES = [(workload, point, occurrence)
         for workload in sorted(WORKLOADS)
         for point, occurrence in TRACES[workload]]


@pytest.mark.parametrize(
    ("workload", "point", "occurrence"), CASES,
    ids=[f"{workload}-{point}@{occurrence}"
         for workload, point, occurrence in CASES])
def test_crash_at_every_injection_point(tmp_path, workload, point,
                                        occurrence):
    data_dir = tmp_path / "d"
    injector = FaultInjector().crash_at(point, occurrence=occurrence)
    completed, crashed = crash_run(data_dir, injector, WORKLOADS[workload])
    assert crashed, f"scheduled crash at {point}@{occurrence} never fired"
    assert_concurrent_recovery(data_dir, workload, completed)


TORN = [(workload, point, occurrence)
        for workload, point, occurrence in CASES
        if point == "wal.append"]


@pytest.mark.parametrize(
    ("workload", "point", "occurrence"), TORN,
    ids=[f"torn-{workload}@{occurrence}"
         for workload, _, occurrence in TORN])
def test_torn_concurrent_commits_never_half_apply(tmp_path, workload,
                                                  point, occurrence):
    """Tear each commit batch mid-write: one session's transaction must
    never surface a subset of its statements, and never drag the other
    session's uncommitted work in with it."""
    data_dir = tmp_path / "d"
    injector = FaultInjector(seed=occurrence).torn_write_at(
        point, occurrence=occurrence)
    completed, crashed = crash_run(data_dir, injector, WORKLOADS[workload])
    assert crashed
    assert_concurrent_recovery(data_dir, workload, completed)


def test_post_crash_recovery_supports_new_transactions(tmp_path):
    """After recovering a crash that killed one of two committers, the
    reopened database accepts fresh concurrent transactions."""
    data_dir = tmp_path / "d"
    point, occurrence = [entry for entry in TRACES["disjoint"]
                         if entry[0] == "wal.fsync"][-1]
    injector = FaultInjector().crash_at(point, occurrence=occurrence)
    crash_run(data_dir, injector, DISJOINT)
    recovered = Database(data_directory=data_dir)
    a = recovered.create_session("a")
    b = recovered.create_session("b")
    recovered.execute("BEGIN", session=a)
    recovered.execute("BEGIN", session=b)
    recovered.execute(
        "UPDATE accounts SET balance = 1.0 WHERE id = 1", session=a)
    recovered.execute(
        "UPDATE accounts SET balance = 2.0 WHERE id = 2", session=b)
    recovered.execute("COMMIT", session=a)
    recovered.execute("COMMIT", session=b)
    assert recovered.query(
        "SELECT balance FROM accounts WHERE id = 1") == [(1.0,)]
    assert recovered.query(
        "SELECT balance FROM accounts WHERE id = 2") == [(2.0,)]
