"""Differential SQL oracle: repro.db vs stdlib sqlite3.

For each pinned seed, generate a small random schema and data set,
load both engines identically, and run a bounded family of generated
SELECTs — filters (with NULL three-valued logic), implicit and ON-style
equi-joins, LEFT JOIN, aggregates, GROUP BY/HAVING, DISTINCT (including
DISTINCT over joins), IN/NOT IN lists (with NULL items), ORDER BY and
ORDER BY + LIMIT/OFFSET — asserting identical result multisets
(identical *lists* where the query orders totally).

ORDER BY + LIMIT cases key only on non-nullable columns: sqlite sorts
NULLs first while this engine sorts them last, so a LIMIT over a
nullable key would truncate different rows even though both orders are
individually valid.

CI pins ``SEED_COUNT`` seeds; ``pytest --seeds N`` widens or narrows
the sweep locally without touching the code.
"""

from __future__ import annotations

import random
import sqlite3

import pytest

from repro.db import Database

pytestmark = pytest.mark.differential

SEED_COUNT = 30          # pinned for CI
QUERIES_PER_SEED = 11    # grammar families below


def pytest_generate_tests(metafunc):
    if "oracle_seed" in metafunc.fixturenames:
        count = metafunc.config.getoption("--seeds") or SEED_COUNT
        metafunc.parametrize("oracle_seed", range(count))


# -- random schema + data -----------------------------------------------------

COLORS = ["red", "green", "blue", "amber", "teal"]

TABLES = {
    # name -> (columns, nullable flags); column types: i = integer,
    # t = text. Column a doubles as the join key everywhere.
    "t0": [("a", "i", False), ("b", "i", True),
           ("c", "t", True), ("d", "i", False)],
    "t1": [("a", "i", False), ("e", "i", False), ("f", "t", True)],
}


def _random_value(rng, kind, nullable):
    if nullable and rng.random() < 0.25:
        return None
    if kind == "i":
        return rng.randint(0, 9)
    return rng.choice(COLORS)


def _random_rows(rng, columns, count):
    return [tuple(_random_value(rng, kind, nullable)
                  for _, kind, nullable in columns)
            for _ in range(count)]


def _literal(value):
    if value is None:
        return "NULL"
    if isinstance(value, str):
        return "'" + value + "'"
    return str(value)


def build_engines(seed):
    rng = random.Random(seed)
    database = Database()
    connection = sqlite3.connect(":memory:")
    for name, columns in TABLES.items():
        ddl_columns = ", ".join(
            f"{column} {'integer' if kind == 'i' else 'text'}"
            for column, kind, _ in columns)
        database.execute(f"CREATE TABLE {name} ({ddl_columns})")
        connection.execute(f"CREATE TABLE {name} ({ddl_columns})")
        rows = _random_rows(rng, columns, rng.randint(5, 12))
        values = ", ".join(
            "(" + ", ".join(_literal(v) for v in row) + ")"
            for row in rows)
        database.execute(f"INSERT INTO {name} VALUES {values}")
        placeholders = ", ".join("?" for _ in columns)
        connection.executemany(
            f"INSERT INTO {name} VALUES ({placeholders})", rows)
    return rng, database, connection


# -- random query grammar -----------------------------------------------------

INT_OPS = ["=", "!=", "<", "<=", ">", ">="]


def _atom(rng, prefix=""):
    """One predicate atom over t0's columns."""
    choice = rng.random()
    if choice < 0.5:
        column = rng.choice(["a", "b", "d"])
        return (f"{prefix}{column} {rng.choice(INT_OPS)} "
                f"{rng.randint(0, 9)}")
    if choice < 0.7:
        return f"{prefix}c = '{rng.choice(COLORS)}'"
    column = rng.choice(["b", "c"])
    negated = rng.random() < 0.5
    return f"{prefix}{column} IS {'NOT ' if negated else ''}NULL"


def _predicate(rng, prefix=""):
    atoms = [_atom(rng, prefix) for _ in range(rng.randint(1, 3))]
    glue = f" {rng.choice(['AND', 'OR'])} "
    return glue.join(atoms)


def generate_query(rng, family):
    """One SELECT from the bounded grammar. Returns (sql, ordered)
    where ``ordered`` means the result is a totally ordered list."""
    if family == 0:  # filtered scan
        return (f"SELECT a, b, c, d FROM t0 WHERE {_predicate(rng)}",
                False)
    if family == 1:  # expression projection + total ORDER BY
        # every projected column is an ORDER BY key, so equal sort
        # keys mean equal rows and the list compare is exact
        direction = rng.choice(["", " DESC"])
        return (f"SELECT d, a, a + d FROM t0 WHERE d <= "
                f"{rng.randint(2, 5)} "
                f"ORDER BY d{direction}, a, a + d", True)
    if family == 2:  # implicit equi-join
        return (f"SELECT t0.a, t0.d, t1.e FROM t0, t1 "
                f"WHERE t0.a = t1.a AND {_predicate(rng, 't0.')}",
                False)
    if family == 3:  # JOIN ... ON with a filter on the right table
        return (f"SELECT x.a, x.b, y.e FROM t0 x JOIN t1 y "
                f"ON x.a = y.a WHERE y.e > {rng.randint(0, 6)}",
                False)
    if family == 4:  # LEFT JOIN: unmatched rows surface NULLs
        return (f"SELECT x.a, x.d, y.e, y.f FROM t0 x LEFT JOIN t1 y "
                f"ON x.a = y.a WHERE x.d >= {rng.randint(0, 3)}",
                False)
    if family == 5:  # global aggregates, NULL-skipping included
        return (f"SELECT count(*), count(b), sum(d), min(d), max(d), "
                f"sum(b) FROM t0 WHERE {_predicate(rng)}", False)
    if family == 6:  # GROUP BY (+ HAVING half the time)
        having = (f" HAVING count(*) > {rng.randint(1, 2)}"
                  if rng.random() < 0.5 else "")
        key = rng.choice(["b", "c", "d", "a % 2"])
        return (f"SELECT {key}, count(*), sum(d), min(a) FROM t0 "
                f"GROUP BY {key}{having}", False)
    if family == 7:  # DISTINCT projection
        columns = rng.choice(["c", "b", "a % 3, c"])
        return f"SELECT DISTINCT {columns} FROM t0", False
    if family == 8:  # IN / NOT IN lists, occasionally with a NULL item
        column = rng.choice(["a", "b", "d"])
        items = [str(rng.randint(0, 9))
                 for _ in range(rng.randint(1, 4))]
        if rng.random() < 0.3:
            items.insert(rng.randrange(len(items) + 1), "NULL")
        negated = rng.random() < 0.4
        return (f"SELECT a, b, c, d FROM t0 WHERE {column} "
                f"{'NOT IN' if negated else 'IN'} ({', '.join(items)})",
                False)
    if family == 9:  # ORDER BY + LIMIT (+ OFFSET) over a total order
        # keys restricted to the non-nullable a and d: sqlite and this
        # engine disagree on NULL placement, and LIMIT would expose it
        direction = rng.choice(["", " DESC"])
        limit = rng.randint(1, 6)
        offset = f" OFFSET {rng.randint(0, 3)}" if rng.random() < 0.5 else ""
        where = (f"WHERE d <= {rng.randint(3, 7)} "
                 if rng.random() < 0.5 else "")
        return (f"SELECT d, a, a + d FROM t0 {where}"
                f"ORDER BY d{direction}, a, a + d LIMIT {limit}{offset}",
                True)
    # family == 10: DISTINCT over a join
    columns = rng.choice(["x.a", "y.e", "x.d, y.e"])
    return (f"SELECT DISTINCT {columns} FROM t0 x JOIN t1 y "
            f"ON x.a = y.a", False)


# -- the oracle ---------------------------------------------------------------

def canonical(rows, ordered):
    rendered = [repr(tuple(row)) for row in rows]
    return rendered if ordered else sorted(rendered)


def test_differential_oracle(oracle_seed):
    rng, database, connection = build_engines(oracle_seed)
    for case in range(QUERIES_PER_SEED):
        sql, ordered = generate_query(rng, case)
        mine = database.query(sql)
        reference = connection.execute(sql).fetchall()
        assert canonical(mine, ordered) == canonical(reference, ordered), (
            f"seed {oracle_seed}, family {case}: engines diverge on\n"
            f"  {sql}")


def test_oracle_covers_the_advertised_case_count(request):
    """CI runs at least 200 generated cases with the pinned seeds."""
    count = request.config.getoption("--seeds") or SEED_COUNT
    if count == SEED_COUNT:
        assert SEED_COUNT * QUERIES_PER_SEED >= 200


def test_generated_queries_are_deterministic_per_seed():
    """Same seed → same schema, same data, same SQL text (the oracle
    is reproducible, not merely random)."""
    def transcript(seed):
        rng, database, connection = build_engines(seed)
        lines = [database.query("SELECT count(*) FROM t0")[0][0]]
        for case in range(QUERIES_PER_SEED):
            lines.append(generate_query(rng, case))
        connection.close()
        return lines

    assert transcript(3) == transcript(3)


def test_oracle_catches_a_seeded_divergence():
    """Sanity: the comparison really can fail — skew one engine's data
    and the multisets must differ for a full-scan query."""
    _, database, connection = build_engines(0)
    database.execute("INSERT INTO t0 VALUES (99, 99, 'skew', 99)")
    mine = database.query("SELECT a, b, c, d FROM t0")
    reference = connection.execute("SELECT a, b, c, d FROM t0").fetchall()
    assert canonical(mine, False) != canonical(reference, False)
