"""The high-throughput serving layer: prepared statements, wire
pipelining, streamed result sets, the snapshot-correct result cache,
serving observability, protocol-version negotiation, and the
mid-statement cooperative timeout."""

import pytest

from repro.db import Database, DBClient, DBServer
from repro.db import protocol
from repro.db.client import Prepared
from repro.db.sql.params import bind_sql_text
from repro.errors import (
    CatalogError,
    ExecutionError,
    ProtocolError,
    StatementTimeout,
)


@pytest.fixture
def server():
    database = Database()
    database.execute("CREATE TABLE t (x integer, s text)")
    database.execute("CREATE TABLE u (y integer)")
    database.execute(
        "INSERT INTO t VALUES (1, 'a'), (2, 'b'), (3, 'c'), (4, 'd')")
    database.execute("INSERT INTO u VALUES (10), (20)")
    return DBServer(database)


@pytest.fixture
def client(server):
    db_client = DBClient(server.transport(), "test-app", "pid-1")
    db_client.connect()
    yield db_client
    if db_client.connected:
        db_client.close()


def second_client(server, name="other"):
    other = DBClient(server.transport(), name, f"pid-{name}")
    other.connect()
    return other


class TestParameters:
    def test_engine_prepare_and_execute(self):
        database = Database()
        database.execute("CREATE TABLE t (x integer)")
        database.execute("INSERT INTO t VALUES (1), (2), (3)")
        prepared = database.prepare("SELECT x FROM t WHERE x >= $1")
        assert prepared.param_count == 1
        assert database.execute_prepared(prepared, [2]).rows == [(2,), (3,)]
        assert database.execute_prepared(prepared, [3]).rows == [(3,)]

    def test_wrong_parameter_count_rejected(self):
        database = Database()
        database.execute("CREATE TABLE t (x integer)")
        prepared = database.prepare("SELECT x FROM t WHERE x = $1")
        with pytest.raises(ExecutionError):
            database.execute_prepared(prepared, [])

    def test_bind_sql_text_quotes_strings(self):
        assert (bind_sql_text("SELECT * FROM t WHERE s = $1", ["o'brien"])
                == "SELECT * FROM t WHERE s = 'o''brien'")

    def test_bind_sql_text_skips_literals_and_comments(self):
        sql = "SELECT '$1', x -- $1 here too\nFROM t WHERE x = $1"
        bound = bind_sql_text(sql, [7])
        assert bound.endswith("x = 7")
        assert "'$1'" in bound and "-- $1 here too" in bound

    def test_parameters_use_index_scans(self):
        database = Database()
        database.execute("CREATE TABLE t (x integer)")
        database.execute("CREATE INDEX ix ON t (x)")
        database.execute("INSERT INTO t VALUES (1), (2), (3)")
        prepared = database.prepare("SELECT x FROM t WHERE x = $1")
        explain = database.execute("EXPLAIN SELECT x FROM t WHERE x = $1")
        assert any("IndexScan" in row[0] for row in explain.rows)
        assert database.execute_prepared(prepared, [2]).rows == [(2,)]


class TestPreparedStatements:
    def test_prepare_execute_deallocate(self, client):
        prepared = client.prepare("SELECT s FROM t WHERE x = $1")
        assert prepared.param_count == 1
        assert prepared.query([2]) == [('b',)]
        assert prepared.query([4]) == [('d',)]
        prepared.deallocate()
        with pytest.raises(ProtocolError):
            prepared.execute([1])

    def test_prepared_dml(self, client):
        insert = client.prepare("INSERT INTO t VALUES ($1, $2)")
        insert.execute([9, 'nine'])
        assert client.query("SELECT s FROM t WHERE x = 9") == [('nine',)]

    def test_plan_is_reused_across_executions(self, server, client):
        prepared = client.prepare("SELECT x FROM t WHERE x = $1")
        before = dict(server.database.plan_cache.counters())
        prepared.execute([1])
        prepared.execute([2])
        prepared.execute([3])
        after = server.database.plan_cache.counters()
        assert after["hits"] >= before["hits"] + 2

    def test_unknown_statement_name_errors(self, client):
        response = protocol.decode_frame(client.transport(
            protocol.encode_frame(protocol.bind_execute_frame(
                client.connection_id, "nope", [1]))))
        assert response["frame"] == "error"
        assert "nope" in response["message"]

    def test_prepared_survive_other_connections(self, server, client):
        prepared = client.prepare("SELECT count(*) FROM t")
        other = second_client(server)
        other.execute("INSERT INTO t VALUES (50, 'z')")
        other.close()
        assert prepared.query([]) == [(5,)]


class TestPipelining:
    def test_pipeline_round_trip(self, client):
        with client.pipeline() as batch:
            first = batch.execute("SELECT x FROM t WHERE x = 1")
            second = batch.execute("INSERT INTO t VALUES (8, 'h')")
            third = batch.execute("SELECT count(*) FROM t")
        assert first.rows() == [(1,)]
        assert second.result().rowcount == 1
        assert third.rows() == [(5,)]

    def test_failing_frame_does_not_stop_later_frames(self, client):
        with client.pipeline() as batch:
            ok = batch.execute("INSERT INTO t VALUES (8, 'h')")
            bad = batch.execute("SELECT nope FROM missing")
            late = batch.execute("INSERT INTO t VALUES (9, 'i')")
        assert ok.result().rowcount == 1
        with pytest.raises(CatalogError):
            bad.result()
        assert late.result().rowcount == 1
        assert client.query("SELECT count(*) FROM t") == [(6,)]

    def test_pipeline_batch_fsyncs_once(self, tmp_path):
        server = DBServer(data_directory=tmp_path / "pgdata")
        client = DBClient(server.transport(), "app", "p1")
        client.connect()
        client.execute("CREATE TABLE t (x integer)")
        commits_before = server.database.commit_count
        fsyncs_before = server.database.fsync_count
        with client.pipeline() as batch:
            handles = [batch.execute(f"INSERT INTO t VALUES ({i})")
                       for i in range(6)]
        assert all(h.result().rowcount == 1 for h in handles)
        assert server.database.commit_count == commits_before + 6
        assert server.database.fsync_count == fsyncs_before + 1
        client.close()

    def test_pipeline_failure_mid_batch_still_one_fsync(self, tmp_path):
        server = DBServer(data_directory=tmp_path / "pgdata")
        client = DBClient(server.transport(), "app", "p1")
        client.connect()
        client.execute("CREATE TABLE t (x integer)")
        fsyncs_before = server.database.fsync_count
        with client.pipeline() as batch:
            batch.execute("INSERT INTO t VALUES (1)")
            bad = batch.execute("INSERT INTO missing VALUES (1)")
            batch.execute("INSERT INTO t VALUES (2)")
        with pytest.raises(CatalogError):
            bad.result()
        assert client.query("SELECT count(*) FROM t") == [(2,)]
        assert server.database.fsync_count == fsyncs_before + 1
        client.close()

    def test_pipeline_error_carries_txn_state(self, client):
        client.begin()
        with client.pipeline() as batch:
            batch.execute("INSERT INTO t VALUES (8, 'h')")
            batch.execute("SELECT nope FROM missing")
        # non-conflict errors leave the transaction open
        assert client.in_transaction
        client.rollback()

    def test_nested_pipeline_frame_rejected(self, client):
        inner = protocol.pipeline_frame(client.connection_id, [])
        response = protocol.decode_frame(client.transport(
            protocol.encode_frame(protocol.pipeline_frame(
                client.connection_id, [inner]))))
        assert response["frames"][0]["frame"] == "error"
        assert "nest" in response["frames"][0]["message"]

    def test_handle_wire_many_still_batches(self, server, client):
        frames = [protocol.encode_frame(protocol.query_frame(
            client.connection_id, f"INSERT INTO t VALUES ({i}, 'x')"))
            for i in (31, 32, 33)]
        responses = server.handle_wire_many(frames)
        assert len(responses) == 3
        assert client.query("SELECT count(*) FROM t") == [(7,)]


class TestStreaming:
    def test_chunked_fetch(self, client):
        cursor = client.execute_stream("SELECT x FROM t", fetch_size=2)
        assert cursor.fetch() == [(1,), (2,)]
        assert cursor.fetch() == [(3,), (4,)]
        assert cursor.fetch() == []
        assert cursor.done

    def test_iteration_and_fetch_all(self, client):
        cursor = client.execute_stream("SELECT x FROM t", fetch_size=3)
        assert cursor.fetch_all() == [(1,), (2,), (3,), (4,)]
        assert cursor.rows_fetched == 4

    def test_prepared_stream(self, client):
        prepared = client.prepare("SELECT x FROM t WHERE x >= $1")
        cursor = prepared.stream([2], fetch_size=1)
        assert cursor.fetch_all() == [(2,), (3,), (4,)]

    def test_cursor_pinned_to_snapshot(self, server, client):
        cursor = client.execute_stream("SELECT x FROM t", fetch_size=1)
        other = second_client(server)
        other.execute("INSERT INTO t VALUES (99, 'late')")
        other.close()
        # the concurrent commit is invisible to the open cursor...
        assert cursor.fetch_all() == [(1,), (2,), (3,), (4,)]
        # ...but visible to a fresh statement on the same connection
        assert client.query("SELECT count(*) FROM t") == [(5,)]

    def test_close_releases_server_cursor(self, server, client):
        cursor = client.execute_stream("SELECT x FROM t", fetch_size=1)
        assert server.server_counters()["open_cursors"] == 1
        cursor.close()
        assert server.server_counters()["open_cursors"] == 0
        with pytest.raises(ProtocolError):
            cursor.fetch()

    def test_transaction_end_reaps_cursor(self, client):
        client.begin()
        cursor = client.execute_stream("SELECT x FROM t", fetch_size=1)
        cursor.fetch()
        client.rollback()
        # the rollback reaped the snapshot-pinned cursor server-side;
        # whether the engine or the server notices first, the fetch
        # must fail rather than serve rows from a dead snapshot
        with pytest.raises((ExecutionError, ProtocolError)):
            cursor.fetch()

    def test_only_selects_stream(self, client):
        with pytest.raises(ExecutionError):
            client.execute_stream("INSERT INTO t VALUES (7, 'g')",
                                  fetch_size=2)

    def test_non_select_rejected_before_cursor_opens(self, server, client):
        client.execute_stream("SELECT x FROM t", fetch_size=1).close()
        assert server.server_counters()["open_cursors"] == 0


class TestResultCache:
    def test_repeated_read_hits_cache(self, server, client):
        sql = "SELECT sum(x) FROM t"
        first = client.query(sql)
        counters = server.result_cache.counters()
        assert counters["misses"] >= 1
        assert client.query(sql) == first
        assert server.result_cache.counters()["hits"] == 1

    def test_write_invalidates_dependent_entry(self, server, client):
        sql = "SELECT sum(x) FROM t"
        assert client.query(sql) == [(10,)]
        client.execute("INSERT INTO t VALUES (100, 'z')")
        assert client.query(sql) == [(110,)]
        counters = server.result_cache.counters()
        assert counters["invalidations"] >= 1

    def test_invalidation_is_exact(self, server, client):
        client.query("SELECT sum(x) FROM t")
        client.query("SELECT sum(y) FROM u")
        assert server.result_cache.counters()["size"] == 2
        before = server.result_cache.counters()["invalidations"]
        client.execute("INSERT INTO t VALUES (5, 'e')")
        # only the t-dependent entry is dropped; u still answers
        # from cache
        hits_before = server.result_cache.counters()["hits"]
        assert client.query("SELECT sum(y) FROM u") == [(30,)]
        counters = server.result_cache.counters()
        assert counters["hits"] == hits_before + 1
        assert counters["invalidations"] == before + 1

    def test_cached_read_inside_snapshot_is_isolated(self, server, client):
        sql = "SELECT count(*) FROM t"
        assert client.query(sql) == [(4,)]  # warm the cache
        client.begin()
        assert client.query(sql) == [(4,)]
        other = second_client(server)
        other.execute("INSERT INTO t VALUES (99, 'late')")
        other.close()
        # the committed insert moved t's watermark past our snapshot:
        # the cache must not serve the refreshed entry to this
        # transaction, nor the stale one to anyone else
        assert client.query(sql) == [(4,)]
        client.commit()
        assert client.query(sql) == [(5,)]

    def test_own_uncommitted_writes_bypass_cache(self, client):
        sql = "SELECT count(*) FROM t"
        assert client.query(sql) == [(4,)]
        client.begin()
        client.execute("INSERT INTO t VALUES (77, 'mine')")
        # read-your-own-writes: the overlay makes the cached (committed)
        # answer wrong for this session only
        assert client.query(sql) == [(5,)]
        client.rollback()
        assert client.query(sql) == [(4,)]

    def test_prepared_executions_share_cache_entries(self, server, client):
        prepared = client.prepare("SELECT s FROM t WHERE x = $1")
        prepared.execute([2])
        prepared.execute([2])
        prepared.execute([3])
        counters = server.result_cache.counters()
        assert counters["hits"] == 1  # same params hit, new params miss

    def test_explain_analyze_reports_cache_counters(self, client):
        client.query("SELECT sum(x) FROM t")
        result = client.explain_analyze("SELECT sum(x) FROM t")
        assert "result_cache" in result.stats["server"]
        assert set(result.stats["server"]["result_cache"]) >= {
            "hits", "misses", "invalidations"}


class TestServingStats:
    def test_counters_accumulate(self, server, client):
        client.query("SELECT x FROM t")
        prepared = client.prepare("SELECT x FROM t WHERE x = $1")
        prepared.execute([1])
        cursor = client.execute_stream("SELECT x FROM t", fetch_size=2)
        stats = client.server_stats()
        assert stats["server"]["frames_served"] >= 4
        assert stats["server"]["bytes_in"] > 0
        assert stats["server"]["bytes_out"] > 0
        assert stats["connection"]["open_cursors"] == 1
        assert stats["connection"]["prepared_statements"] == 1
        assert stats["connection"]["protocol_version"] == 2
        cursor.close()

    def test_per_connection_counters_are_separate(self, server, client):
        other = second_client(server)
        other.query("SELECT x FROM t")
        mine = client.server_stats()["connection"]
        assert mine["connection_id"] == client.connection_id
        assert mine["open_cursors"] == 0
        other.close()


class TestVersionNegotiation:
    def test_negotiated_version_is_minimum(self, client):
        assert client.protocol_version == 2

    def test_v1_connect_frame_negotiates_v1(self, server):
        transport = server.transport()
        response = protocol.decode_frame(transport(protocol.encode_frame(
            {"frame": "connect", "client_name": "old", "process_id": "p"})))
        assert response["frame"] == "connected"
        assert response["version"] == 1

    def test_v1_connection_cannot_use_v2_frames(self, server):
        transport = server.transport()
        connected = protocol.decode_frame(transport(protocol.encode_frame(
            {"frame": "connect", "client_name": "old", "process_id": "p"})))
        connection_id = connected["connection_id"]
        for frame in (
                protocol.prepare_frame(connection_id, "p1", "SELECT 1"),
                protocol.pipeline_frame(connection_id, []),
                protocol.stats_frame(connection_id),
                protocol.query_frame(connection_id, "SELECT x FROM t",
                                     fetch=2)):
            response = protocol.decode_frame(transport(
                protocol.encode_frame(frame)))
            assert response["frame"] == "error"
            assert "protocol version" in response["message"]

    def test_v1_connected_frame_still_decodes(self):
        # a v1 server's connected frame has no version field
        def v1_transport(request_text):
            frame = protocol.decode_frame(request_text)
            if frame["frame"] == "connect":
                return protocol.encode_frame(
                    {"frame": "connected", "connection_id": 7})
            return protocol.encode_frame(protocol.closed_frame())

        old = DBClient(v1_transport, "app", "p")
        old.connect()
        assert old.protocol_version == 1

    def test_v1_query_frames_still_serve(self, server):
        transport = server.transport()
        connected = protocol.decode_frame(transport(protocol.encode_frame(
            {"frame": "connect", "client_name": "old", "process_id": "p"})))
        response = protocol.decode_frame(transport(protocol.encode_frame(
            {"frame": "query", "connection_id":
             connected["connection_id"], "sql": "SELECT count(*) FROM t",
             "provenance": False})))
        assert response["frame"] == "result"
        assert response["rows"] == [[4]]


class TestMidStatementTimeout:
    def test_long_scan_is_cancelled_cooperatively(self):
        database = Database()
        database.execute("CREATE TABLE big (x integer)")
        for start in range(0, 6000, 1000):
            values = ", ".join(f"({i})" for i in range(start, start + 1000))
            database.execute(f"INSERT INTO big VALUES {values}")

        calls = {"n": 0}

        def timer():
            # the statement "runs" 0.4s per observation: the deadline
            # passes while the scan is still producing batches
            calls["n"] += 1
            return calls["n"] * 0.4

        server = DBServer(database, statement_timeout=1.0, timer=timer)
        client = DBClient(server.transport(), "app", "p1")
        client.connect()
        with pytest.raises(StatementTimeout) as excinfo:
            client.query("SELECT x FROM big WHERE x >= 0")
        assert "cancelled mid-statement" in str(excinfo.value)
        # the engine stayed usable afterwards
        server.timer = lambda: 0.0
        assert client.query("SELECT count(*) FROM big") == [(6000,)]
        client.close()

    def test_fast_statement_not_cancelled(self):
        database = Database()
        database.execute("CREATE TABLE t (x integer)")
        database.execute("INSERT INTO t VALUES (1)")
        ticks = iter([0.0, 0.5])
        server = DBServer(database, statement_timeout=1.0,
                          timer=lambda: next(ticks, 0.5))
        client = DBClient(server.transport(), "app", "p1")
        client.connect()
        assert client.query("SELECT x FROM t") == [(1,)]
        client.close()


class TestReplayLogCompat:
    def test_text_entries_serialize_without_kind(self):
        from repro.monitor.dbmonitor import ReplayLog, ReplayLogEntry
        database = Database()
        database.execute("CREATE TABLE t (x integer)")
        result = database.execute("SELECT x FROM t")
        log = ReplayLog()
        log.append("SELECT x FROM t", False, result)
        entry_json = log.entries[0].to_json()
        assert "kind" not in entry_json
        restored = ReplayLogEntry.from_json(entry_json)
        assert restored.kind == "text"

    def test_prepared_entries_round_trip_kind(self):
        from repro.monitor.dbmonitor import ReplayLog, ReplayLogEntry
        database = Database()
        database.execute("CREATE TABLE t (x integer)")
        result = database.execute("SELECT x FROM t")
        log = ReplayLog()
        log.append("SELECT x FROM t", False, result, kind="prepared")
        entry_json = log.entries[0].to_json()
        assert entry_json["kind"] == "prepared"
        assert ReplayLogEntry.from_json(entry_json).kind == "prepared"
