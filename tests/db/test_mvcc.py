"""MVCC snapshot isolation: visibility, conflicts, and bookkeeping.

These are the engine-level unit tests for concurrent sessions; the
end-to-end anomaly matrix (driven through the wire by the interleaving
scheduler) lives in ``test_anomalies.py``.
"""

import pytest

from repro.db import Database, DBClient, DBServer
from repro.db import protocol
from repro.errors import (
    IntegrityError,
    TransactionError,
    WriteConflictError,
)

pytestmark = pytest.mark.concurrency


@pytest.fixture
def db():
    database = Database()
    database.execute(
        "CREATE TABLE accounts (id integer PRIMARY KEY, balance integer)")
    database.execute("INSERT INTO accounts VALUES (1, 10), (2, 20)")
    return database


@pytest.fixture
def two_sessions(db):
    return db, db.create_session("a"), db.create_session("b")


def balance(db, session, account_id):
    rows = db.query(f"SELECT balance FROM accounts WHERE id = {account_id}",
                    session=session)
    return rows[0][0] if rows else None


class TestSnapshotVisibility:
    def test_reader_sees_state_as_of_begin(self, two_sessions):
        db, a, b = two_sessions
        db.execute("BEGIN", session=a)
        assert balance(db, a, 1) == 10
        db.execute("UPDATE accounts SET balance = 99 WHERE id = 1",
                   session=b)
        assert balance(db, a, 1) == 10
        assert balance(db, b, 1) == 99

    def test_snapshot_refreshes_after_commit(self, two_sessions):
        db, a, b = two_sessions
        db.execute("BEGIN", session=a)
        db.execute("UPDATE accounts SET balance = 99 WHERE id = 1",
                   session=b)
        db.execute("COMMIT", session=a)
        assert balance(db, a, 1) == 99

    def test_other_sessions_uncommitted_writes_invisible(self, two_sessions):
        db, a, b = two_sessions
        db.execute("BEGIN", session=b)
        db.execute("INSERT INTO accounts VALUES (3, 30)", session=b)
        db.execute("UPDATE accounts SET balance = 0 WHERE id = 1", session=b)
        db.execute("DELETE FROM accounts WHERE id = 2", session=b)
        # autocommit reads of another session see none of it
        assert db.query("SELECT id, balance FROM accounts ORDER BY id",
                        session=a) == [(1, 10), (2, 20)]

    def test_snapshot_covers_inserts_and_deletes(self, two_sessions):
        db, a, b = two_sessions
        db.execute("BEGIN", session=a)
        db.execute("INSERT INTO accounts VALUES (3, 30)", session=b)
        db.execute("DELETE FROM accounts WHERE id = 2", session=b)
        assert db.query("SELECT id FROM accounts ORDER BY id",
                        session=a) == [(1,), (2,)]
        db.execute("COMMIT", session=a)
        assert db.query("SELECT id FROM accounts ORDER BY id",
                        session=a) == [(1,), (3,)]

    def test_aggregates_respect_snapshot(self, two_sessions):
        db, a, b = two_sessions
        db.execute("BEGIN", session=a)
        db.execute("INSERT INTO accounts VALUES (3, 70)", session=b)
        assert db.query("SELECT sum(balance) FROM accounts",
                        session=a) == [(30,)]
        db.execute("ROLLBACK", session=a)

    def test_index_scan_respects_snapshot(self, two_sessions):
        db, a, b = two_sessions
        db.execute("CREATE INDEX ix_bal ON accounts (balance)")
        db.execute("BEGIN", session=a)
        db.execute("UPDATE accounts SET balance = 77 WHERE id = 1",
                   session=b)
        # equality probe on the indexed column, inside the snapshot
        assert db.query("SELECT id FROM accounts WHERE balance = 10",
                        session=a) == [(1,)]
        assert db.query("SELECT id FROM accounts WHERE balance = 77",
                        session=a) == []
        db.execute("COMMIT", session=a)
        assert db.query("SELECT id FROM accounts WHERE balance = 77",
                        session=a) == [(1,)]


class TestReadYourOwnWrites:
    def test_overlay_merges_over_snapshot(self, two_sessions):
        db, a, _ = two_sessions
        db.execute("BEGIN", session=a)
        db.execute("INSERT INTO accounts VALUES (3, 30)", session=a)
        db.execute("UPDATE accounts SET balance = 11 WHERE id = 1",
                   session=a)
        db.execute("DELETE FROM accounts WHERE id = 2", session=a)
        assert db.query("SELECT id, balance FROM accounts ORDER BY id",
                        session=a) == [(1, 11), (3, 30)]
        db.execute("COMMIT", session=a)
        assert db.query("SELECT id, balance FROM accounts ORDER BY id"
                        ) == [(1, 11), (3, 30)]

    def test_update_of_own_insert(self, two_sessions):
        db, a, _ = two_sessions
        db.execute("BEGIN", session=a)
        db.execute("INSERT INTO accounts VALUES (3, 30)", session=a)
        db.execute("UPDATE accounts SET balance = 31 WHERE id = 3",
                   session=a)
        db.execute("COMMIT", session=a)
        assert balance(db, a, 3) == 31

    def test_delete_of_own_insert_leaves_no_trace(self, two_sessions):
        db, a, _ = two_sessions
        db.execute("BEGIN", session=a)
        db.execute("INSERT INTO accounts VALUES (3, 30)", session=a)
        db.execute("DELETE FROM accounts WHERE id = 3", session=a)
        db.execute("COMMIT", session=a)
        assert db.query("SELECT id FROM accounts ORDER BY id"
                        ) == [(1,), (2,)]

    def test_rollback_drops_everything(self, two_sessions):
        db, a, _ = two_sessions
        db.execute("BEGIN", session=a)
        db.execute("INSERT INTO accounts VALUES (3, 30)", session=a)
        db.execute("UPDATE accounts SET balance = 0 WHERE id = 1",
                   session=a)
        db.execute("DELETE FROM accounts WHERE id = 2", session=a)
        db.execute("ROLLBACK", session=a)
        assert db.query("SELECT id, balance FROM accounts ORDER BY id",
                        session=a) == [(1, 10), (2, 20)]


class TestFirstCommitterWins:
    def test_eager_conflict_on_concurrently_updated_row(self, two_sessions):
        db, a, b = two_sessions
        db.execute("BEGIN", session=a)
        db.execute("UPDATE accounts SET balance = 99 WHERE id = 1",
                   session=b)
        with pytest.raises(WriteConflictError):
            db.execute("UPDATE accounts SET balance = 11 WHERE id = 1",
                       session=a)
        # the losing transaction was rolled back automatically
        assert not a.in_transaction
        assert balance(db, a, 1) == 99

    def test_commit_time_conflict_between_open_transactions(
            self, two_sessions):
        db, a, b = two_sessions
        db.execute("BEGIN", session=a)
        db.execute("BEGIN", session=b)
        db.execute("UPDATE accounts SET balance = 11 WHERE id = 1",
                   session=a)
        db.execute("UPDATE accounts SET balance = 12 WHERE id = 1",
                   session=b)
        db.execute("COMMIT", session=a)  # first committer wins
        with pytest.raises(WriteConflictError):
            db.execute("COMMIT", session=b)
        assert not b.in_transaction
        assert balance(db, b, 1) == 11

    def test_delete_conflicts_with_concurrent_update(self, two_sessions):
        db, a, b = two_sessions
        db.execute("BEGIN", session=a)
        db.execute("UPDATE accounts SET balance = 99 WHERE id = 1",
                   session=b)
        with pytest.raises(WriteConflictError):
            db.execute("DELETE FROM accounts WHERE id = 1", session=a)

    def test_disjoint_write_sets_both_commit(self, two_sessions):
        db, a, b = two_sessions
        db.execute("BEGIN", session=a)
        db.execute("BEGIN", session=b)
        db.execute("UPDATE accounts SET balance = 11 WHERE id = 1",
                   session=a)
        db.execute("UPDATE accounts SET balance = 22 WHERE id = 2",
                   session=b)
        db.execute("COMMIT", session=a)
        db.execute("COMMIT", session=b)
        assert db.query("SELECT id, balance FROM accounts ORDER BY id"
                        ) == [(1, 11), (2, 22)]

    def test_duplicate_pk_inside_transaction_is_integrity_error(
            self, two_sessions):
        db, a, _ = two_sessions
        db.execute("BEGIN", session=a)
        with pytest.raises(IntegrityError):
            db.execute("INSERT INTO accounts VALUES (1, 0)", session=a)

    def test_concurrent_pk_insert_is_write_conflict(self, two_sessions):
        db, a, b = two_sessions
        db.execute("BEGIN", session=a)
        db.execute("INSERT INTO accounts VALUES (3, 30)", session=b)
        # id=3 is invisible to a's snapshot, so this is a race (not a
        # statement the application could have avoided): conflict, not
        # integrity violation
        with pytest.raises(WriteConflictError):
            db.execute("INSERT INTO accounts VALUES (3, 33)", session=a)

    def test_write_conflict_is_transient(self):
        from repro.errors import TransientError
        assert issubclass(WriteConflictError, TransientError)


class TestTransactionRules:
    def test_ddl_inside_transaction_is_rejected(self, two_sessions):
        db, a, _ = two_sessions
        db.execute("BEGIN", session=a)
        for ddl in ("CREATE TABLE z (x integer)",
                    "DROP TABLE accounts",
                    "CREATE INDEX ix ON accounts (balance)"):
            with pytest.raises(TransactionError):
                db.execute(ddl, session=a)
        db.execute("ROLLBACK", session=a)
        db.execute("CREATE TABLE z (x integer)", session=a)  # fine now

    def test_checkpoint_refused_while_any_transaction_open(
            self, two_sessions, tmp_path):
        db = Database(data_directory=tmp_path / "d")
        db.execute("CREATE TABLE t (x integer)")
        a = db.create_session("a")
        db.execute("BEGIN", session=a)
        with pytest.raises(TransactionError):
            db.checkpoint()
        db.execute("ROLLBACK", session=a)
        db.checkpoint()

    def test_nested_begin_and_stray_commit_are_errors(self, two_sessions):
        db, a, _ = two_sessions
        with pytest.raises(TransactionError):
            db.execute("COMMIT", session=a)
        with pytest.raises(TransactionError):
            db.execute("ROLLBACK", session=a)
        db.execute("BEGIN", session=a)
        with pytest.raises(TransactionError):
            db.execute("BEGIN", session=a)
        db.execute("ROLLBACK", session=a)

    def test_sessions_are_isolated_objects(self, db):
        a = db.create_session("a")
        b = db.create_session("b")
        assert a.session_id != b.session_id
        db.execute("BEGIN", session=a)
        assert a.in_transaction and not b.in_transaction
        db.execute("ROLLBACK", session=a)


class TestBookkeepingBounds:
    def test_commit_map_pruned_when_no_snapshot_needs_it(self, two_sessions):
        db, a, b = two_sessions
        db.execute("BEGIN", session=a)
        db.execute("UPDATE accounts SET balance = 11 WHERE id = 1",
                   session=a)
        db.execute("COMMIT", session=a)
        assert db.mvcc.commit_map_size() == 0
        assert db.mvcc.active_count() == 0

    def test_history_pruned_after_last_reader_leaves(self, two_sessions):
        db, a, b = two_sessions
        table = db.catalog.get_table("accounts")
        db.execute("BEGIN", session=a)
        db.execute("UPDATE accounts SET balance = 99 WHERE id = 1",
                   session=b)
        assert table.history  # superseded version kept for a's snapshot
        assert balance(db, a, 1) == 10
        db.execute("COMMIT", session=a)
        assert not table.history

    def test_autocommit_writes_record_no_history(self, db):
        table = db.catalog.get_table("accounts")
        db.execute("UPDATE accounts SET balance = 99 WHERE id = 1")
        assert not table.history
        assert db.mvcc.commit_map_size() == 0


class TestSnapshotLineage:
    def test_lineage_references_the_snapshots_tuple_versions(
            self, two_sessions):
        """Regression: provenance of a snapshot read must cite the
        tuple versions that snapshot sees — not whatever version is
        currently committed."""
        db, a, b = two_sessions
        before = db.execute("SELECT balance FROM accounts WHERE id = 1",
                            provenance=True)
        (old_ref,) = before.lineages[0]
        db.execute("BEGIN", session=a)
        db.execute("UPDATE accounts SET balance = 99 WHERE id = 1",
                   session=b)
        inside = db.execute("SELECT balance FROM accounts WHERE id = 1",
                            provenance=True, session=a)
        assert inside.rows == [(10,)]
        (snap_ref,) = inside.lineages[0]
        assert snap_ref == old_ref
        after = db.execute("SELECT balance FROM accounts WHERE id = 1",
                           provenance=True, session=b)
        (new_ref,) = after.lineages[0]
        assert new_ref.rowid == old_ref.rowid
        assert new_ref.version > old_ref.version
        db.execute("COMMIT", session=a)

    def test_own_writes_lineage_uses_provisional_versions(
            self, two_sessions):
        db, a, _ = two_sessions
        db.execute("BEGIN", session=a)
        result = db.execute(
            "UPDATE accounts SET balance = 11 WHERE id = 1", session=a)
        (written_ref,) = result.written_lineage
        inside = db.execute("SELECT balance FROM accounts WHERE id = 1",
                            provenance=True, session=a)
        assert inside.rows == [(11,)]
        (ref,) = inside.lineages[0]
        assert ref == written_ref
        db.execute("COMMIT", session=a)
        # the TupleRef recorded mid-transaction stays valid after commit
        after = db.execute("SELECT balance FROM accounts WHERE id = 1",
                           provenance=True)
        assert after.lineages[0] == frozenset([written_ref])


class TestGroupCommit:
    def test_group_window_shares_one_fsync(self, tmp_path):
        db = Database(data_directory=tmp_path / "d")
        db.execute("CREATE TABLE t (x integer)")
        commits, fsyncs = db.wal.commit_count, db.wal.fsync_count
        with db.group_commit():
            db.execute("INSERT INTO t VALUES (1)")
            db.execute("INSERT INTO t VALUES (2)")
            db.execute("INSERT INTO t VALUES (3)")
        assert db.wal.commit_count == commits + 3
        assert db.wal.fsync_count == fsyncs + 1
        # durable: a reopen replays all three
        assert Database(data_directory=tmp_path / "d").query(
            "SELECT x FROM t ORDER BY x") == [(1,), (2,), (3,)]

    def test_nested_group_windows_fsync_once(self, tmp_path):
        db = Database(data_directory=tmp_path / "d")
        db.execute("CREATE TABLE t (x integer)")
        fsyncs = db.wal.fsync_count
        with db.group_commit():
            with db.group_commit():
                db.execute("INSERT INTO t VALUES (1)")
            db.execute("INSERT INTO t VALUES (2)")
        assert db.wal.fsync_count == fsyncs + 1

    def test_empty_group_window_does_not_fsync(self, tmp_path):
        db = Database(data_directory=tmp_path / "d")
        fsyncs = db.wal.fsync_count
        with db.group_commit():
            pass
        assert db.wal.fsync_count == fsyncs

    def test_handle_wire_many_batches_sessions_commits(self, tmp_path):
        server = DBServer(data_directory=tmp_path / "d")
        alice = DBClient(server.transport(), "alice", "1")
        bob = DBClient(server.transport(), "bob", "2")
        alice.connect()
        bob.connect()
        alice.execute("CREATE TABLE t (x integer)")
        wal = server.database.wal
        commits, fsyncs = wal.commit_count, wal.fsync_count

        def frame(client, sql):
            return protocol.encode_frame(
                protocol.query_frame(client.connection_id, sql))

        responses = server.handle_wire_many([
            frame(alice, "INSERT INTO t VALUES (1)"),
            frame(bob, "INSERT INTO t VALUES (2)"),
            frame(alice, "INSERT INTO t VALUES (3)"),
        ])
        assert all(protocol.decode_frame(r)["frame"] == "result"
                   for r in responses)
        assert wal.commit_count == commits + 3
        assert wal.fsync_count == fsyncs + 1
        assert server.database.query("SELECT x FROM t ORDER BY x"
                                     ) == [(1,), (2,), (3,)]


class TestWireTransactions:
    @pytest.fixture
    def wired(self, db):
        server = DBServer(db)
        alice = DBClient(server.transport(), "alice", "1")
        bob = DBClient(server.transport(), "bob", "2")
        alice.connect()
        bob.connect()
        return server, alice, bob

    def test_txn_status_stamped_on_responses(self, wired):
        _, alice, _ = wired
        assert not alice.in_transaction
        alice.begin()
        assert alice.in_transaction
        alice.execute("UPDATE accounts SET balance = 11 WHERE id = 1")
        assert alice.in_transaction
        alice.commit()
        assert not alice.in_transaction

    def test_transaction_context_manager(self, wired):
        _, alice, bob = wired
        with alice.transaction():
            alice.execute("UPDATE accounts SET balance = 11 WHERE id = 1")
            assert bob.query("SELECT balance FROM accounts WHERE id = 1"
                             ) == [(10,)]
        assert bob.query("SELECT balance FROM accounts WHERE id = 1"
                         ) == [(11,)]

    def test_conflict_frame_is_not_frame_transient(self, wired):
        """A WriteConflictError frame must not carry the frame-level
        retry flag: resending the statement verbatim would run outside
        any transaction."""
        server, alice, bob = wired
        alice.begin()
        bob.execute("UPDATE accounts SET balance = 99 WHERE id = 1")
        request = protocol.encode_frame(protocol.query_frame(
            alice.connection_id,
            "UPDATE accounts SET balance = 11 WHERE id = 1"))
        response = protocol.decode_frame(server.handle_wire(request))
        assert response["error_type"] == "WriteConflictError"
        assert not response.get("transient", False)
        assert response["txn"] == "idle"  # server already rolled back

    def test_client_tracks_conflict_auto_abort(self, wired):
        _, alice, bob = wired
        alice.begin()
        bob.execute("UPDATE accounts SET balance = 99 WHERE id = 1")
        with pytest.raises(WriteConflictError):
            alice.execute("UPDATE accounts SET balance = 11 WHERE id = 1")
        assert not alice.in_transaction

    def test_run_transaction_retries_conflict_to_success(self, db):
        from repro.db import RetryPolicy
        server = DBServer(db)
        naps: list[float] = []
        policy = RetryPolicy(max_attempts=4, sleep=naps.append)
        alice = DBClient(server.transport(), "alice", "1",
                         retry_policy=policy)
        bob = DBClient(server.transport(), "bob", "2")
        alice.connect()
        bob.connect()
        poisoned = [False]

        def body(client):
            rows = client.query("SELECT balance FROM accounts WHERE id = 1")
            if not poisoned[0]:
                # sneak a competing committed write under alice's snapshot
                poisoned[0] = True
                bob.execute(
                    "UPDATE accounts SET balance = 50 WHERE id = 1")
            client.execute(f"UPDATE accounts SET balance = "
                           f"{rows[0][0] + 1} WHERE id = 1")

        alice.run_transaction(body)
        assert alice.transactions_retried == 1
        assert naps  # backoff went through the policy's sleep hook
        assert db.query("SELECT balance FROM accounts WHERE id = 1"
                        ) == [(51,)]

    def test_close_aborts_open_transaction(self, wired):
        server, alice, bob = wired
        alice.begin()
        alice.execute("UPDATE accounts SET balance = 0 WHERE id = 1")
        alice.close()
        assert server.database.mvcc.active_count() == 0
        assert bob.query("SELECT balance FROM accounts WHERE id = 1"
                         ) == [(10,)]
