"""Crash-matrix regression: indexes after WAL recovery.

Recovery replays committed ``put``/``delete`` records through
``put_row``/``remove_row``, which must leave the primary-key index and
every secondary :class:`HashIndex` *identical* to a database that never
crashed. The matrix crashes an index-heavy workload (secondary-index
churn, PK updates, a rolled-back transaction) at every injection point
it passes through, recovers, and asserts:

* IndexScan answers match a clean run at the same committed state,
* duplicate-PK rejection matches the clean run (every live id is
  rejected, a fresh id is accepted),
* the in-memory index structures equal a rebuild from the heap rows.
"""

from __future__ import annotations

import shutil
import tempfile
from pathlib import Path

import pytest

from repro.db import Database
from repro.errors import IntegrityError
from repro.faults import FaultInjector, FaultyIO, SimulatedCrash

pytestmark = pytest.mark.crash

OWNERS = ("ada", "bob", "cyd", "dan", "nobody")

# Every unit churns the secondary index (owner) or the PK index: owner
# reassignments move rowids between buckets, deletes must empty
# buckets, the PK update must re-key _pk_index, and the rollback must
# leave no index trace of its inserts.
STEPS = [
    ["CREATE TABLE accounts "
     "(id integer PRIMARY KEY, owner text, balance float)"],
    ["INSERT INTO accounts VALUES "
     "(1, 'ada', 10.0), (2, 'ada', 20.0), (3, 'bob', 30.0)"],
    ["CREATE INDEX ix_owner ON accounts (owner)"],
    ["CHECKPOINT"],
    ["UPDATE accounts SET owner = 'cyd' WHERE id = 2"],
    ["INSERT INTO accounts VALUES (4, 'bob', 40.0)"],
    ["DELETE FROM accounts WHERE id = 3"],
    ["UPDATE accounts SET id = 30 WHERE id = 4"],
    ["BEGIN",
     "INSERT INTO accounts VALUES (5, 'dan', 50.0)",
     "UPDATE accounts SET owner = 'dan' WHERE id = 1",
     "COMMIT"],
    ["BEGIN",
     "INSERT INTO accounts VALUES (6, 'eve', 60.0)",
     "DELETE FROM accounts WHERE id = 5",
     "ROLLBACK"],
    ["CHECKPOINT"],
    ["INSERT INTO accounts VALUES (7, 'ada', 70.0)"],
]


def apply_step(database, step):
    for sql in step:
        if sql == "CHECKPOINT":
            database.checkpoint()
        else:
            database.execute(sql)


def observe(database):
    """Everything an application could see through the indexes."""
    if not database.catalog.has_table("accounts"):
        return {"tables": []}
    table = database.catalog.get_table("accounts")
    lookups = {
        owner: database.query(
            f"SELECT id, balance FROM accounts WHERE owner = '{owner}' "
            f"ORDER BY id")
        for owner in OWNERS}
    return {
        "tables": ["accounts"],
        "rows": sorted(table.rows.values()),
        "indexes": sorted(table.indexes),
        "lookups": lookups,
        "live_ids": sorted(row[0] for row in table.rows.values()),
    }


def crash_run(data_dir, injector):
    completed = 0
    try:
        database = Database(data_directory=data_dir,
                            io=FaultyIO(injector), autoflush=True)
        for step in STEPS:
            apply_step(database, step)
            completed += 1
    except SimulatedCrash:
        return completed, True
    return completed, False


def _discover_trace():
    root = tempfile.mkdtemp(prefix="ldv-index-crash-discovery-")
    try:
        injector = FaultInjector()
        database = Database(data_directory=Path(root) / "d",
                            io=FaultyIO(injector), autoflush=True)
        for step in STEPS:
            apply_step(database, step)
        return list(injector.trace)
    finally:
        shutil.rmtree(root, ignore_errors=True)


TRACE = _discover_trace()

# Shadow run (no crash, no disk): the observable state after each
# completed unit, against which every recovery is compared.
SNAPSHOTS = [{"tables": []}]
_shadow = Database()
for _step in STEPS:
    apply_step(_shadow, _step)
    SNAPSHOTS.append(observe(_shadow))
del _shadow


def assert_indexes_match_clean_rebuild(table):
    """The recovered in-memory index structures must equal what a
    from-scratch build over the heap rows produces."""
    expected_pk = {}
    for rowid, values in table.rows.items():
        key = tuple(values[i] for i in table._pk_positions)
        expected_pk[key] = rowid
    assert table._pk_index == expected_pk
    for index in table.indexes.values():
        expected_buckets = {}
        for rowid, values in table.rows.items():
            value = values[index.position]
            if value is not None:
                expected_buckets.setdefault(value, set()).add(rowid)
        assert index.buckets == expected_buckets, (
            f"index {index.name} diverged from the heap after recovery")


def assert_pk_rejection_matches(database, snapshot):
    """Duplicate-PK behavior equals the uncrashed run: every live id
    is rejected, an unused id is accepted."""
    for live_id in snapshot["live_ids"]:
        with pytest.raises(IntegrityError):
            database.execute(
                f"INSERT INTO accounts VALUES ({live_id}, 'dup', 0.0)")
    database.execute("BEGIN")
    database.execute("INSERT INTO accounts VALUES (999, 'tmp', 0.0)")
    database.execute("ROLLBACK")


class TestDiscovery:
    def test_workload_exercises_index_churn(self):
        points = {point for point, _ in TRACE}
        assert "wal.append" in points
        assert "checkpoint.table.write" in points
        assert len(TRACE) > 20

    def test_clean_run_uses_index_scans(self):
        db = Database()
        for step in STEPS:
            apply_step(db, step)
        lines = [row[0] for row in db.execute(
            "EXPLAIN SELECT id FROM accounts WHERE owner = 'ada'").rows]
        assert any("IndexScan" in line and "ix_owner" in line
                   for line in lines)


@pytest.mark.parametrize(
    ("point", "occurrence"), TRACE,
    ids=[f"{point}@{occurrence}" for point, occurrence in TRACE])
def test_indexes_consistent_after_crash_everywhere(tmp_path, point,
                                                   occurrence):
    data_dir = tmp_path / "d"
    injector = FaultInjector().crash_at(point, occurrence=occurrence)
    completed, crashed = crash_run(data_dir, injector)
    assert crashed, f"scheduled crash at {point}@{occurrence} never fired"

    recovered = Database(data_directory=data_dir)
    state = observe(recovered)
    # the unit that died committed entirely or not at all…
    assert state in (SNAPSHOTS[completed], SNAPSHOTS[completed + 1])
    if state["tables"]:
        snapshot = (SNAPSHOTS[completed]
                    if state == SNAPSHOTS[completed]
                    else SNAPSHOTS[completed + 1])
        table = recovered.catalog.get_table("accounts")
        # …and the recovered index structures are exactly a clean build
        assert_indexes_match_clean_rebuild(table)
        assert_pk_rejection_matches(recovered, snapshot)
        if "ix_owner" in table.indexes:
            lines = [row[0] for row in recovered.execute(
                "EXPLAIN SELECT id FROM accounts "
                "WHERE owner = 'ada'").rows]
            assert any("IndexScan" in line for line in lines)
