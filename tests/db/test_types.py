"""Value types, coercion, and Schema resolution tests."""

import pytest

from repro.db.types import (
    Column,
    Schema,
    SQLType,
    coerce_row,
    coerce_value,
    value_from_csv,
    value_to_csv,
)
from repro.errors import CatalogError, TypeError_


class TestTypeNames:
    @pytest.mark.parametrize("name,expected", [
        ("integer", SQLType.INTEGER),
        ("INT", SQLType.INTEGER),
        ("bigint", SQLType.INTEGER),
        ("serial", SQLType.INTEGER),
        ("float", SQLType.FLOAT),
        ("double precision", SQLType.FLOAT),
        ("decimal(15,2)", SQLType.FLOAT),
        ("numeric", SQLType.FLOAT),
        ("text", SQLType.TEXT),
        ("varchar(25)", SQLType.TEXT),
        ("character varying", SQLType.TEXT),
        ("boolean", SQLType.BOOLEAN),
        ("date", SQLType.DATE),
    ])
    def test_aliases(self, name, expected):
        assert SQLType.from_name(name) is expected

    def test_unknown_type_raises(self):
        with pytest.raises(TypeError_):
            SQLType.from_name("blob")


class TestCoercion:
    def test_null_passes_any_type(self):
        for sql_type in SQLType:
            assert coerce_value(None, sql_type) is None

    def test_integer_accepts_integral_float(self):
        assert coerce_value(3.0, SQLType.INTEGER) == 3

    def test_integer_rejects_fractional(self):
        with pytest.raises(TypeError_):
            coerce_value(3.5, SQLType.INTEGER)

    def test_float_widens_int(self):
        value = coerce_value(3, SQLType.FLOAT)
        assert value == 3.0 and isinstance(value, float)

    def test_float_rejects_bool(self):
        with pytest.raises(TypeError_):
            coerce_value(True, SQLType.FLOAT)

    def test_text_rejects_numbers(self):
        with pytest.raises(TypeError_):
            coerce_value(42, SQLType.TEXT)

    def test_boolean_accepts_int_and_text_forms(self):
        assert coerce_value(1, SQLType.BOOLEAN) is True
        assert coerce_value("false", SQLType.BOOLEAN) is False
        with pytest.raises(TypeError_):
            coerce_value(2, SQLType.BOOLEAN)

    def test_date_validates_shape(self):
        assert coerce_value("1998-12-31", SQLType.DATE) == "1998-12-31"
        for bad in ("1998-13-01", "1998-1-1", "not a date"):
            with pytest.raises(TypeError_):
                coerce_value(bad, SQLType.DATE)

    def test_csv_round_trip_by_type(self):
        cases = [(SQLType.INTEGER, -42), (SQLType.FLOAT, 2.5),
                 (SQLType.TEXT, "a,b"), (SQLType.BOOLEAN, True),
                 (SQLType.DATE, "1995-06-01")]
        for sql_type, value in cases:
            assert value_from_csv(value_to_csv(value), sql_type) == value

    def test_csv_null_is_empty_string(self):
        assert value_to_csv(None) == ""
        assert value_from_csv("", SQLType.INTEGER) is None


class TestSchema:
    @pytest.fixture
    def schema(self):
        return Schema([Column("a", SQLType.INTEGER),
                       Column("b", SQLType.TEXT)])

    def test_index_of_unqualified(self, schema):
        assert schema.index_of("a") == 0
        assert schema.index_of("B") == 1  # case-insensitive

    def test_unknown_column(self, schema):
        with pytest.raises(CatalogError):
            schema.index_of("c")

    def test_qualified_lookup(self, schema):
        qualified = schema.qualified("t")
        assert qualified.index_of("a", "t") == 0
        with pytest.raises(CatalogError):
            qualified.index_of("a", "u")

    def test_concat_detects_ambiguity(self, schema):
        joined = schema.qualified("x").concat(schema.qualified("y"))
        with pytest.raises(CatalogError):
            joined.index_of("a")
        assert joined.index_of("a", "y") == 2

    def test_of_shorthand(self):
        schema = Schema.of(("k", SQLType.INTEGER), ("v", SQLType.TEXT))
        assert schema.column_names() == ["k", "v"]

    def test_qualifier_length_mismatch(self, schema):
        with pytest.raises(CatalogError):
            Schema(schema.columns, ["t"])

    def test_equality_ignores_qualifiers(self, schema):
        assert schema == Schema(schema.columns)
        assert schema.qualified("t") == schema

    def test_coerce_row_arity_and_not_null(self):
        schema = Schema([Column("a", SQLType.INTEGER, not_null=True)])
        assert coerce_row((5,), schema) == (5,)
        with pytest.raises(TypeError_):
            coerce_row((None,), schema)
        with pytest.raises(TypeError_):
            coerce_row((1, 2), schema)

    def test_empty_column_name_rejected(self):
        with pytest.raises(CatalogError):
            Column("", SQLType.INTEGER)
