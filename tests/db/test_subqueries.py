"""Uncorrelated subquery tests: scalar and IN subqueries."""

import pytest

from repro.db import Database
from repro.db.sql import ast
from repro.db.sql.parser import parse_expression, parse_one
from repro.db.sql.render import render_statement
from repro.errors import CatalogError, ExecutionError


@pytest.fixture
def db():
    database = Database()
    database.execute("CREATE TABLE t (id integer, v integer)")
    database.execute("CREATE TABLE u (id integer, w integer)")
    database.execute(
        "INSERT INTO t VALUES (1, 10), (2, 20), (3, 30)")
    database.execute("INSERT INTO u VALUES (1, 100), (3, 300)")
    return database


class TestParsing:
    def test_scalar_subquery(self):
        tree = parse_expression("(SELECT max(v) FROM t)")
        assert isinstance(tree, ast.ScalarSubquery)

    def test_in_subquery(self):
        tree = parse_expression("id IN (SELECT id FROM u)")
        assert isinstance(tree, ast.InSubquery)
        assert not tree.negated

    def test_not_in_subquery(self):
        assert parse_expression("id NOT IN (SELECT id FROM u)").negated

    def test_parenthesized_expression_still_works(self):
        tree = parse_expression("(1 + 2)")
        assert tree == ast.BinaryOp("+", ast.Literal(1), ast.Literal(2))

    @pytest.mark.parametrize("sql", [
        "SELECT id FROM t WHERE v > (SELECT avg(v) FROM t)",
        "SELECT id FROM t WHERE id IN (SELECT id FROM u)",
        "SELECT id FROM t WHERE id NOT IN (SELECT id FROM u)",
        "DELETE FROM t WHERE id IN (SELECT id FROM u)",
        "UPDATE t SET v = (SELECT max(w) FROM u) WHERE id = 1",
    ])
    def test_render_round_trip(self, sql):
        tree = parse_one(sql)
        assert parse_one(render_statement(tree)) == tree


class TestExecution:
    def test_scalar_subquery_in_where(self, db):
        rows = db.query(
            "SELECT id FROM t WHERE v > (SELECT avg(v) FROM t)")
        assert rows == [(3,)]

    def test_scalar_subquery_in_select_list(self, db):
        rows = db.query("SELECT id, (SELECT max(w) FROM u) FROM t "
                        "WHERE id = 1")
        assert rows == [(1, 300)]

    def test_in_subquery(self, db):
        rows = db.query(
            "SELECT id FROM t WHERE id IN (SELECT id FROM u) "
            "ORDER BY id")
        assert rows == [(1,), (3,)]

    def test_not_in_subquery(self, db):
        rows = db.query(
            "SELECT id FROM t WHERE id NOT IN (SELECT id FROM u)")
        assert rows == [(2,)]

    def test_empty_in_subquery_matches_nothing(self, db):
        rows = db.query(
            "SELECT id FROM t WHERE id IN (SELECT id FROM u "
            "WHERE w > 999)")
        assert rows == []

    def test_empty_scalar_subquery_is_null(self, db):
        rows = db.query(
            "SELECT id FROM t WHERE v > (SELECT v FROM t WHERE id = 99)")
        assert rows == []  # NULL comparison filters everything

    def test_nested_subqueries(self, db):
        rows = db.query(
            "SELECT id FROM t WHERE v > (SELECT avg(w) FROM u WHERE "
            "id IN (SELECT id FROM t WHERE v < 15))")
        # inner: t ids with v<15 -> {1}; avg(w) over u id in {1} = 100
        assert rows == []

    def test_delete_with_in_subquery(self, db):
        db.execute("DELETE FROM t WHERE id IN (SELECT id FROM u)")
        assert db.query("SELECT id FROM t") == [(2,)]

    def test_update_with_scalar_subquery(self, db):
        db.execute("UPDATE t SET v = (SELECT max(w) FROM u) "
                   "WHERE id = 2")
        assert db.query("SELECT v FROM t WHERE id = 2") == [(300,)]

    def test_multi_row_scalar_subquery_raises(self, db):
        with pytest.raises(ExecutionError):
            db.query("SELECT id FROM t WHERE v > (SELECT v FROM t)")

    def test_multi_column_subquery_raises(self, db):
        with pytest.raises(ExecutionError):
            db.query("SELECT id FROM t WHERE id IN "
                     "(SELECT id, w FROM u)")

    def test_correlated_subquery_rejected(self, db):
        # t.v is not visible inside the inner query: correlated
        # subqueries are outside the dialect
        with pytest.raises(CatalogError):
            db.query("SELECT id FROM t WHERE v > "
                     "(SELECT avg(w) FROM u WHERE u.id = t.id)")


class TestSubqueryLineage:
    def test_subquery_lineage_flows_to_results(self, db):
        result = db.execute(
            "SELECT id FROM t WHERE v > (SELECT avg(v) FROM t)",
            provenance=True)
        assert result.rows == [(3,)]
        tables_read = {ref.rowid for ref in result.lineages[0]
                       if ref.table == "t"}
        # row 3 (the match) plus all rows the avg() read
        assert tables_read == {1, 2, 3}

    def test_in_subquery_lineage_includes_inner_table(self, db):
        result = db.execute(
            "SELECT id FROM t WHERE id IN (SELECT id FROM u)",
            provenance=True)
        inner = {ref.table for lineage in result.lineages
                 for ref in lineage}
        assert inner == {"t", "u"}

    def test_update_lineage_includes_subquery(self, db):
        result = db.execute(
            "UPDATE t SET v = (SELECT max(w) FROM u) WHERE id = 2")
        (new_ref,) = result.written
        tables = {ref.table for ref in result.written_lineage[new_ref]}
        assert "u" in tables  # the subquery inputs
        assert "t" in tables  # the old version

    def test_audited_app_with_subquery_round_trips(self, tmp_path):
        from repro.core import ldv_audit, ldv_exec
        from repro.db import DBServer
        from repro.vos import VirtualOS

        vos = VirtualOS()
        database = Database(clock=vos.clock)
        database.execute("CREATE TABLE t (id integer, v integer)")
        database.execute("INSERT INTO t VALUES (1, 10), (2, 20), (3, 30)")
        vos.register_db_server("main", DBServer(database).transport())
        vos.fs.write_file("/usr/lib/dbms/pg", b"\x7fELF" + b"\0" * 128,
                          create_parents=True)

        def app(ctx):
            client = ctx.connect_db("main")
            rows = client.query(
                "SELECT id FROM t WHERE v > (SELECT avg(v) FROM t)")
            ctx.write_file("/out.txt", str(rows))
            client.close()

        vos.register_program("/bin/app", app)
        report = ldv_audit(vos, "/bin/app", tmp_path / "pkg",
                           mode="server-included", database=database,
                           server_name="main",
                           server_binary_paths=["/usr/lib/dbms/pg"])
        # the avg() inputs are relevant: all three rows ship
        assert report.packaging.tuple_count == 3
        original = vos.fs.read_file("/out.txt")
        result = ldv_exec(tmp_path / "pkg", {"/bin/app": app},
                          scratch_dir=tmp_path / "s")
        assert result.outputs["/out.txt"] == original
