"""Differential coverage for the columnar scan cache.

The cache is only allowed to be a *performance* artifact: every answer
it serves must be byte-identical to the uncached walk — rows, lineage,
wire frames, packaged directory bytes — across cold, warm, and
mid-invalidation states, and across every MVCC situation (open-txn
overlay reads via the delta pass, stale snapshots via fallback,
concurrent commits via watermark keying). On top of the parity
referees this file pins the bounded-memory/LRU behavior, the
observability surface (counters, EXPLAIN ANALYZE notes, the planner's
cached-scan cost flip), and the two satellite micro-fixes (the
candidate-rowid list reuse and the lineage-vector allocation
discipline).
"""

from __future__ import annotations

import pytest

from repro.db import Database, DBServer
from repro.db import parallel, vector
from repro.db.chaos import tree_bytes
from repro.db.protocol import encode_frame, result_to_wire
from repro.db.scancache import ScanCache

from tests.db.test_differential_parallel import build_parity_db
from tests.db.test_vectorized import PARITY_QUERIES


def frame_bytes(result) -> bytes:
    return encode_frame(result_to_wire(result))


def run_modes(database, sql, provenance):
    """(uncached baseline frame, cold frame, warm frame) plus results."""
    cache = database.scan_cache
    cache.enabled = False
    try:
        baseline = database.execute(sql, provenance)
    finally:
        cache.enabled = True
    cold = database.execute(sql, provenance)
    warm = database.execute(sql, provenance)
    return baseline, cold, warm


# -- the 23 parity shapes, cache on vs off ------------------------------------

@pytest.fixture(scope="module")
def parity_db():
    return build_parity_db(False)


@pytest.mark.parametrize("sql", PARITY_QUERIES)
def test_parity_shapes_cache_on_off(parity_db, sql):
    for provenance in (False, True):
        baseline, cold, warm = run_modes(parity_db, sql, provenance)
        reference = frame_bytes(baseline)
        for result in (cold, warm):
            assert result.rows == baseline.rows
            assert result.lineages == baseline.lineages
            assert frame_bytes(result) == reference


@pytest.mark.parametrize(
    "sql", [PARITY_QUERIES[0], PARITY_QUERIES[11], PARITY_QUERIES[15]])
def test_parity_under_mid_invalidation(sql):
    """Warm the cache, mutate the table (stranding the segments), and
    re-verify against a cache-disabled twin of the new state."""
    database = build_parity_db(False)
    for provenance in (False, True):
        database.execute(sql, provenance)  # warm
        database.execute("UPDATE t SET a = a + 1 WHERE k % 13 = 0")
        baseline, cold, warm = run_modes(database, sql, provenance)
        reference = frame_bytes(baseline)
        assert frame_bytes(cold) == reference
        assert frame_bytes(warm) == reference


@pytest.mark.parametrize("workers", (2, 4))
def test_parity_parallel_partition_scans(workers):
    """Partition scans served from cached segments gather back into
    the exact serial answer."""
    database = build_parity_db(True)
    subset = [PARITY_QUERIES[0], PARITY_QUERIES[11], PARITY_QUERIES[15],
              PARITY_QUERIES[18]]
    for sql in subset:
        for provenance in (False, True):
            database.set_parallel_workers(1)
            baseline = database.execute(sql, provenance)
            database.set_parallel_workers(
                workers, pool_factory=parallel.InProcessPool, min_rows=0)
            cold = database.execute(sql, provenance)
            warm = database.execute(sql, provenance)
            for result in (cold, warm):
                assert result.rows == baseline.rows
                assert result.lineages == baseline.lineages
                assert frame_bytes(result) == frame_bytes(baseline)
    assert database.scan_cache.hits > 0


def test_packaged_bytes_identical_cache_on_off(tmp_path):
    """A workload served warm from the cache packages byte-identically
    to a cache-disabled twin — reads never touch durable state."""

    def run(directory, enabled):
        database = Database(data_directory=directory)
        database.scan_cache.enabled = enabled
        database.execute("CREATE TABLE t (k integer, grp integer)")
        database.execute("INSERT INTO t VALUES " + ", ".join(
            f"({k}, {k % 5})" for k in range(300)))
        answers = []
        for _ in range(3):
            answers.append(database.query(
                "SELECT grp, count(*) FROM t GROUP BY grp ORDER BY grp"))
        database.execute("UPDATE t SET grp = grp + 1 WHERE k % 11 = 0")
        answers.append(database.query(
            "SELECT grp, count(*) FROM t GROUP BY grp ORDER BY grp"))
        database.checkpoint()
        database.close()
        return answers

    on_dir = tmp_path / "cache_on"
    off_dir = tmp_path / "cache_off"
    assert run(on_dir, True) == run(off_dir, False)
    assert tree_bytes(on_dir) == tree_bytes(off_dir)


# -- MVCC: overlay delta pass, stale snapshots, concurrent commits ------------

class TestMVCC:
    def make_db(self):
        database = Database()
        database.execute("CREATE TABLE t (k integer, v integer)")
        database.execute("INSERT INTO t VALUES " + ", ".join(
            f"({k}, {k * 10})" for k in range(50)))
        return database

    def uncached(self, database, sql, provenance=False, session=None):
        cache = database.scan_cache
        cache.enabled = False
        try:
            return database.execute(sql, provenance, session=session)
        finally:
            cache.enabled = True

    def test_open_txn_overlay_reads_use_delta_pass(self):
        database = self.make_db()
        database.query("SELECT * FROM t")  # warm the full segment
        session = database.create_session("writer")
        database.execute("BEGIN", session=session)
        database.execute("INSERT INTO t VALUES (100, 1000)",
                         session=session)
        database.execute("UPDATE t SET v = -1 WHERE k = 3",
                         session=session)
        database.execute("DELETE FROM t WHERE k = 7", session=session)
        before = database.scan_cache.delta_merges
        for provenance in (False, True):
            sql = "SELECT k, v FROM t"
            expected = self.uncached(database, sql, provenance,
                                     session=session)
            result = database.execute(sql, provenance, session=session)
            assert result.rows == expected.rows
            assert result.lineages == expected.lineages
            assert frame_bytes(result) == frame_bytes(expected)
        assert database.scan_cache.delta_merges > before
        database.execute("COMMIT", session=session)
        # after commit the watermark moved: committed state, cold+warm
        assert (100, 1000) in database.query("SELECT k, v FROM t")
        assert (7, 70) not in database.query("SELECT k, v FROM t")

    def test_stale_snapshot_falls_back_to_uncached_walk(self):
        database = self.make_db()
        reader = database.create_session("reader")
        database.execute("BEGIN", session=reader)
        old_rows = database.execute("SELECT k, v FROM t",
                                    session=reader).rows
        # an autocommit write from another session commits under the
        # open snapshot: the snapshot now predates the watermark
        database.execute("UPDATE t SET v = 0 WHERE k < 10")
        before = database.scan_cache.fallbacks
        stale = database.execute("SELECT k, v FROM t", session=reader)
        assert stale.rows == old_rows  # snapshot semantics, exact
        assert database.scan_cache.fallbacks > before
        expected = self.uncached(database, "SELECT k, v FROM t",
                                 session=reader)
        assert stale.rows == expected.rows
        database.execute("COMMIT", session=reader)

    def test_cache_hit_then_concurrent_commit_rebuilds(self):
        database = self.make_db()
        database.query("SELECT * FROM t")
        hits_before = database.scan_cache.hits
        database.query("SELECT * FROM t")
        assert database.scan_cache.hits == hits_before + 1
        database.execute("INSERT INTO t VALUES (500, 5000)")
        result = database.query("SELECT k, v FROM t WHERE k = 500")
        assert result == [(500, 5000)]
        expected = self.uncached(database, "SELECT k, v FROM t")
        assert (database.execute("SELECT k, v FROM t").rows
                == expected.rows)

    def test_snapshot_at_watermark_serves_segment_directly(self):
        """A transaction with no private writes and no concurrent
        commits reads the committed-latest segment as-is (no delta, no
        fallback)."""
        database = self.make_db()
        database.query("SELECT * FROM t")
        session = database.create_session("reader")
        database.execute("BEGIN", session=session)
        before = (database.scan_cache.delta_merges,
                  database.scan_cache.fallbacks)
        result = database.execute("SELECT k, v FROM t", session=session)
        expected = self.uncached(database, "SELECT k, v FROM t",
                                 session=session)
        assert result.rows == expected.rows
        assert (database.scan_cache.delta_merges,
                database.scan_cache.fallbacks) == before
        database.execute("COMMIT", session=session)


# -- bounded memory / LRU -----------------------------------------------------

class TestEviction:
    def test_resident_cells_never_exceed_budget(self):
        database = Database()
        for number in range(4):
            database.execute(
                f"CREATE TABLE t{number} (k integer, v integer)")
            database.execute(
                f"INSERT INTO t{number} VALUES " + ", ".join(
                    f"({k}, {k})" for k in range(100)))
        cache = database.scan_cache
        # each full segment costs 100 * (2 + 2) = 400 cells; allow two
        cache.max_cells = 800
        for number in range(4):
            database.query(f"SELECT * FROM t{number}")
        assert cache.resident_cells <= cache.max_cells
        assert cache.evictions >= 2
        counters = cache.counters()
        assert counters["segments"] == 2
        assert counters["resident_bytes"] > 0
        # evicted tables still answer correctly (rebuild on demand)
        assert database.query("SELECT count(*) FROM t0") == [(100,)]

    def test_lru_keeps_the_recently_scanned_segment(self):
        database = Database()
        for name in ("a", "b"):
            database.execute(f"CREATE TABLE {name} (k integer)")
            database.execute(f"INSERT INTO {name} VALUES " + ", ".join(
                f"({k})" for k in range(100)))
        cache = database.scan_cache
        cache.max_cells = 400  # one 100 * 3 segment plus slack
        database.query("SELECT * FROM a")
        database.query("SELECT * FROM b")  # evicts a
        hits = cache.hits
        database.query("SELECT * FROM b")
        assert cache.hits == hits + 1

    def test_oversized_segment_does_not_stick(self):
        table_like = Database()
        table_like.execute("CREATE TABLE big (k integer, v integer)")
        table_like.execute("INSERT INTO big VALUES " + ", ".join(
            f"({k}, {k})" for k in range(200)))
        cache = table_like.scan_cache
        cache.max_cells = 100  # smaller than any big segment
        expected = table_like.query("SELECT count(*) FROM big")
        assert expected == [(200,)]
        assert cache.resident_cells <= cache.max_cells
        assert cache.counters()["segments"] == 0

    def test_unit_lru_order(self):
        """Direct ScanCache exercise against catalog tables."""
        database = Database()
        database.execute("CREATE TABLE t (k integer)")
        database.execute("INSERT INTO t VALUES (1), (2), (3)")
        cache = ScanCache(max_cells=50)
        table = database.catalog.get_table("t")
        segment, hit = cache._segment(table, None, None, None)
        assert not hit and segment.count == 3
        again, hit = cache._segment(table, None, None, None)
        assert hit and again is segment
        assert cache.counters()["hits"] == 1


# -- invalidation paths -------------------------------------------------------

class TestInvalidation:
    def test_every_ddl_path_strands_segments(self):
        database = Database()
        database.execute("CREATE TABLE t (k integer, grp integer)")
        database.execute("INSERT INTO t VALUES " + ", ".join(
            f"({k}, {k % 4})" for k in range(40)))
        cache = database.scan_cache

        def warm():
            database.query("SELECT * FROM t")
            assert cache.counters()["segments"] > 0

        warm()
        database.execute("CREATE INDEX idx_k ON t (k)")
        assert cache.counters()["segments"] == 0
        warm()
        database.execute("DROP INDEX idx_k")
        assert cache.counters()["segments"] == 0
        warm()
        database.execute("ANALYZE t")
        assert cache.counters()["segments"] == 0
        warm()
        database.set_table_partitioning("t", "grp", 4)
        assert cache.counters()["segments"] == 0
        warm()
        database.execute("DROP TABLE t")
        assert cache.counters()["segments"] == 0

    def test_recovery_starts_cold_and_exact(self, tmp_path):
        database = Database(data_directory=tmp_path)
        database.execute("CREATE TABLE t (k integer)")
        database.execute("INSERT INTO t VALUES (1), (2), (3)")
        database.query("SELECT * FROM t")
        database.close()
        recovered = Database(data_directory=tmp_path)
        assert recovered.scan_cache.counters()["segments"] == 0
        assert recovered.query("SELECT k FROM t") == [(1,), (2,), (3,)]
        recovered.close()

    def test_direct_heap_writes_invalidate_without_watermark(self):
        """Bulk loads via HeapTable.insert never call note_write; the
        mutator hook must strand segments anyway."""
        database = Database()
        database.execute("CREATE TABLE t (k integer)")
        table = database.catalog.get_table("t")
        table.insert((1,), tick=1)
        assert database.query("SELECT k FROM t") == [(1,)]
        table.insert((2,), tick=1)  # same watermark, heap changed
        assert database.query("SELECT k FROM t") == [(1,), (2,)]


# -- observability ------------------------------------------------------------

def test_explain_analyze_notes_hit_and_miss():
    database = Database()
    database.execute("CREATE TABLE t (k integer)")
    database.execute("INSERT INTO t VALUES (1), (2)")

    def plan_text():
        result = database.execute(
            "EXPLAIN ANALYZE SELECT count(*) FROM t")
        return "\n".join(row[0] for row in result.rows), result

    database.scan_cache.invalidate_all()
    text, result = plan_text()
    assert "[scan cache: miss]" in text
    text, result = plan_text()
    assert "[scan cache: hit]" in text
    assert result.stats["analyze"]["scan_cache"]["hits"] > 0
    # plain EXPLAIN never executes, so it carries no note
    plain = "\n".join(
        row[0] for row in
        database.execute("EXPLAIN SELECT count(*) FROM t").rows)
    assert "scan cache" not in plain


def test_server_stats_expose_scan_cache_counters():
    database = Database()
    database.execute("CREATE TABLE t (k integer)")
    database.execute("INSERT INTO t VALUES (1), (2)")
    server = DBServer(database)
    counters = server.server_counters()["scan_cache"]
    for key in ("hits", "misses", "evictions", "invalidations",
                "resident_cells", "resident_bytes"):
        assert key in counters


def test_planner_cost_flip_prefers_warm_cached_scan():
    """With ~25% selectivity on 100 rows an index probe costs 54 and
    the scan 100 — the index wins cold. A warm segment re-costs the
    scan at 25, flipping the choice, and ANALYZE (which strands the
    cache) flips it back."""
    database = Database()
    database.execute("CREATE TABLE t (k integer, grp integer)")
    database.execute("INSERT INTO t VALUES " + ", ".join(
        f"({k}, {k % 4})" for k in range(100)))
    database.execute("CREATE INDEX idx_grp ON t (grp)")
    database.execute("ANALYZE t")

    def plan():
        return "\n".join(
            row[0] for row in database.execute(
                "EXPLAIN SELECT k FROM t WHERE grp = 2").rows)

    cold = plan()
    assert "IndexScan" in cold and "cost 54 < scan 100" in cold
    database.query("SELECT * FROM t")  # warm the full segment
    warm = plan()
    assert "IndexScan" not in warm
    assert "idx_grp skipped" in warm and "cached scan is cheaper" in warm
    database.execute("ANALYZE t")  # strands segments: cold costs again
    assert "IndexScan" in plan()


# -- satellite: candidate_rowids reuse ----------------------------------------

class TestRowidCacheReuse:
    def test_rebuilds_only_after_rowid_mutation(self):
        database = Database()
        database.execute("CREATE TABLE t (k integer)")
        database.execute("INSERT INTO t VALUES (1), (2), (3)")
        table = database.catalog.get_table("t")
        builds = table.rowid_cache_builds
        first = table.candidate_rowids()
        assert table.rowid_cache_builds == builds + 1
        second = table.candidate_rowids()
        assert second is first  # reused, not rebuilt
        assert table.rowid_cache_builds == builds + 1
        database.execute("INSERT INTO t VALUES (4)")
        third = table.candidate_rowids()
        assert third is not first
        assert table.rowid_cache_builds == builds + 2
        assert third == sorted(table.rows)

    def test_update_keeps_the_rowid_list(self):
        database = Database()
        database.execute("CREATE TABLE t (k integer)")
        database.execute("INSERT INTO t VALUES (1), (2)")
        table = database.catalog.get_table("t")
        first = table.candidate_rowids()
        database.execute("UPDATE t SET k = k + 10")
        assert table.candidate_rowids() is first

    def test_view_path_is_uncached_and_exact(self):
        database = Database()
        database.execute("CREATE TABLE t (k integer)")
        database.execute("INSERT INTO t VALUES (1), (2)")
        session = database.create_session("writer")
        database.execute("BEGIN", session=session)
        database.execute("INSERT INTO t VALUES (3)", session=session)
        result = database.execute("SELECT k FROM t", session=session)
        assert result.rows == [(1,), (2,), (3,)]
        database.execute("ROLLBACK", session=session)


# -- satellite: lineage vectors only when provenance is requested -------------

class TestLineageAllocation:
    def test_no_provenance_scans_allocate_zero_lineage_vectors(self):
        database = Database()
        database.execute("CREATE TABLE t (k integer)")
        database.execute("INSERT INTO t VALUES " + ", ".join(
            f"({k})" for k in range(3000)))
        before = vector.LINEAGE_VECTOR_BUILDS
        for _ in range(3):
            database.query("SELECT k FROM t WHERE k % 2 = 0")
        assert vector.LINEAGE_VECTOR_BUILDS == before

    def test_cached_segments_allocate_once_not_per_scan(self):
        database = Database()
        database.execute("CREATE TABLE t (k integer)")
        database.execute("INSERT INTO t VALUES " + ", ".join(
            f"({k})" for k in range(3000)))  # 3 chunks per scan
        sql = "SELECT k FROM t"
        # uncached: every provenance scan rebuilds its lineage vectors
        database.scan_cache.enabled = False
        try:
            start = vector.LINEAGE_VECTOR_BUILDS
            uncached_results = [database.execute(sql, True) for _ in range(2)]
            per_scan = (vector.LINEAGE_VECTOR_BUILDS - start) // 2
            assert per_scan == 3
        finally:
            database.scan_cache.enabled = True
        # cached: the segment's lineage variant is built exactly once
        start = vector.LINEAGE_VECTOR_BUILDS
        cached_results = [database.execute(sql, True) for _ in range(3)]
        assert vector.LINEAGE_VECTOR_BUILDS - start == per_scan
        for result in cached_results:
            assert result.rows == uncached_results[0].rows
            assert result.lineages == uncached_results[0].lineages
