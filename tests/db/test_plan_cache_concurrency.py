"""PlanCache under concurrent use.

Two angles: scheduler-driven sessions sharing cached plans through the
engine (LRU order and counters must stay coherent, and cached plans
must stay snapshot-correct per session), and a raw thread hammer on the
cache object itself — the regression for the counters/eviction race
that a single internal lock now prevents.
"""

import threading

import pytest

from repro.db import Database, InterleavingScheduler
from repro.db import parallel
from repro.db.engine import PlanCache

pytestmark = pytest.mark.concurrency


def setup():
    database = Database()
    database.execute("CREATE TABLE t (id integer PRIMARY KEY, v integer)")
    database.execute("INSERT INTO t VALUES (1, 10), (2, 20)")
    return database


class TestScheduledSessions:
    def test_two_sessions_planning_the_same_sql_share_one_entry(self):
        def probe():
            yield "SELECT v FROM t WHERE id = 1"
            yield "SELECT v FROM t WHERE id = 2"
            yield "SELECT v FROM t WHERE id = 1"

        scheduler = InterleavingScheduler(
            setup, {"a": probe, "b": probe}, through_wire=False)
        for outcome in scheduler.explore(limit=12, seed=3):
            cache = outcome.database.plan_cache
            keys = cache.keys()
            # same normalized SQL from both sessions → one entry each
            assert len(keys) == len(set(keys)), "duplicate cache entries"
            assert len(keys) == 2
            counters = cache.counters()
            gets = counters["hits"] + counters["misses"]
            assert gets >= 6  # both sessions, every statement consulted
            assert counters["misses"] == 2
            assert len(cache) == len(keys)

    def test_lru_order_reflects_the_schedule_not_the_session(self):
        def a():
            yield "SELECT v FROM t WHERE id = 1"

        def b():
            yield "SELECT v FROM t WHERE id = 2"

        scheduler = InterleavingScheduler(
            setup, {"a": a, "b": b}, through_wire=False)
        first = scheduler.run("a b").database.plan_cache.keys()
        second = scheduler.run("b a").database.plan_cache.keys()
        # keys() yields least-recently-used first
        assert first != second
        assert sorted(first) == sorted(second)

    def test_cached_plan_stays_snapshot_correct_across_sessions(self):
        """The regression the ambient read-view exists for: session b
        re-executes a *cached* plan inside its snapshot and must not
        see a's later committed write."""
        def b():
            yield "BEGIN"
            first = yield "SELECT v FROM t WHERE id = 1"
            second = yield "SELECT v FROM t WHERE id = 1"
            yield "COMMIT"
            return (first.rows[0][0], second.rows[0][0])

        def a():
            # warms the cache, then writes through the same plan shape
            yield "SELECT v FROM t WHERE id = 1"
            yield "UPDATE t SET v = 99 WHERE id = 1"

        scheduler = InterleavingScheduler(
            setup, {"a": a, "b": b}, through_wire=False)
        outcome = scheduler.run("a b b a b b")
        assert outcome.value("b") == (10, 10)
        assert outcome.query("SELECT v FROM t WHERE id = 1") == [(99,)]


class TestThreadHammer:
    def test_concurrent_get_put_never_corrupts_the_lru(self):
        cache = PlanCache(capacity=8)
        errors: list[BaseException] = []
        barrier = threading.Barrier(4)

        def hammer(worker: int) -> None:
            try:
                barrier.wait()
                for round_number in range(300):
                    key = (f"q{(worker + round_number) % 12}",)
                    if cache.get(key) is None:
                        cache.put(key, object())
                    if round_number % 97 == 0:
                        cache.clear()
            except BaseException as exc:  # pragma: no cover - on failure
                errors.append(exc)

        threads = [threading.Thread(target=hammer, args=(worker,))
                   for worker in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        keys = cache.keys()
        assert len(keys) == len(set(keys)), "LRU order corrupted"
        assert len(keys) <= 8, "eviction failed to hold capacity"
        assert len(cache) == len(keys)
        counters = cache.counters()
        assert counters["hits"] >= 0 and counters["misses"] >= 0
        assert counters["hits"] + counters["misses"] == 4 * 300

    def test_eviction_and_counters_agree_under_threads(self):
        cache = PlanCache(capacity=4)
        barrier = threading.Barrier(8)

        def fill(worker: int) -> None:
            barrier.wait()
            for round_number in range(200):
                cache.put((worker, round_number), object())

        threads = [threading.Thread(target=fill, args=(worker,))
                   for worker in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(cache) == 4
        assert len(cache.keys()) == 4


class CountingPool:
    """Deterministic pool that records how many times it dispatched."""

    dispatches = 0

    def run(self, thunks):
        type(self).dispatches += 1
        return [thunk() for thunk in thunks]


@pytest.mark.parallel
class TestWorkerSettingKeysTheCache:
    """Regression: a plan costed (and shaped) under one worker setting
    must never be served to a session running under another. The cache
    key carries the worker setting, so serial and parallel compilations
    of the same SQL coexist as distinct entries."""

    def big_db(self):
        database = Database()
        database.execute("CREATE TABLE t (id integer, v integer)")
        database.execute("INSERT INTO t VALUES " + ", ".join(
            f"({i}, {i % 10})" for i in range(400)))
        return database

    def test_serial_entry_is_not_served_to_a_parallel_setting(self):
        database = self.big_db()
        CountingPool.dispatches = 0
        sql = "SELECT v, count(*) FROM t GROUP BY v"
        # pin min_rows first so switching workers later does not clear
        # the cache: the stale serial entry must still be *in* there
        database.set_parallel_workers(1, min_rows=0)
        baseline = database.query(sql)  # caches the serial plan
        assert len(database.plan_cache) == 1
        database.set_parallel_workers(2, pool_factory=CountingPool)
        assert database.query(sql) == baseline
        # the cached serial plan must NOT have satisfied this: the
        # parallel compilation really ran on the pool
        assert CountingPool.dispatches >= 1

    def test_parallel_entry_is_not_served_to_a_serial_setting(self):
        database = self.big_db()
        CountingPool.dispatches = 0
        sql = "SELECT id FROM t WHERE v = 3"
        database.set_parallel_workers(
            2, pool_factory=CountingPool, min_rows=0)
        parallel_rows = database.query(sql)
        dispatched = CountingPool.dispatches
        assert dispatched >= 1
        database.set_parallel_workers(1)
        assert database.query(sql) == parallel_rows
        # back to serial: no pool dispatch may have happened
        assert CountingPool.dispatches == dispatched

    def test_keys_carry_the_worker_setting(self):
        database = self.big_db()
        sql = "SELECT count(*) FROM t"
        database.set_parallel_workers(1, min_rows=0)
        database.query(sql)
        database.set_parallel_workers(
            4, pool_factory=parallel.InProcessPool)
        database.query(sql)
        keys = database.plan_cache.keys()
        assert len(keys) == 2  # same SQL, two worker settings
        assert {key[-1] for key in keys} == {1, 4}

    def test_hammered_sessions_never_cross_settings(self):
        """Thread hammer: serial threads and parallel threads race on
        the same SQL; every answer must match and the pool must only
        ever be driven by the parallel setting's entries."""
        database = self.big_db()
        sql = "SELECT v, count(*) FROM t GROUP BY v"
        expected = database.query(sql)
        parallel_db = self.big_db()
        parallel_db.set_parallel_workers(
            2, pool_factory=parallel.InProcessPool, min_rows=0)
        errors: list[BaseException] = []
        barrier = threading.Barrier(4)

        def hammer(engine):
            try:
                barrier.wait()
                for _ in range(40):
                    assert engine.query(sql) == expected
            except BaseException as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=hammer, args=(engine,))
                   for engine in (database, database,
                                  parallel_db, parallel_db)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        assert {key[-1] for key in database.plan_cache.keys()} == {1}
        assert {key[-1] for key in parallel_db.plan_cache.keys()} == {2}
