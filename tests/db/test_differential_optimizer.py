"""Differential oracle for the cost-based optimizer.

Statistics must be advisory: whatever plan shape ANALYZE steers the
planner into — a different join order, a flipped build side, an
index probe demoted to a scan, an IN-list cutoff — the rows AND the
per-row lineage must be byte-for-byte what the rote plan produced,
and the rows must match stdlib sqlite3 on the same data.

For each pinned seed we generate a skewed three-table star (fact ×
fan-out junction × selective dimension) plus an indexed probe table,
run a fixed family of optimizer-sensitive queries before and after
ANALYZE on the same engine, and compare both against each other and
against sqlite. A canary asserts the plans really do change for the
queries built to flip, so the comparison is between different plan
shapes, not a tautology.

CI pins ``SEED_COUNT`` seeds; ``pytest --seeds N`` widens the sweep.
"""

from __future__ import annotations

import random
import sqlite3

import pytest

from repro.db import Database

pytestmark = pytest.mark.differential

SEED_COUNT = 10


def pytest_generate_tests(metafunc):
    if "optimizer_seed" in metafunc.fixturenames:
        count = metafunc.config.getoption("--seeds") or SEED_COUNT
        metafunc.parametrize("optimizer_seed", range(count))


# -- skewed schema + data -----------------------------------------------------

def build_engines(seed):
    """Same skewed star + indexed probe table in both engines."""
    rng = random.Random(seed)
    database = Database()
    connection = sqlite3.connect(":memory:")
    ddl = [
        "CREATE TABLE f (k integer, d1 integer, d2 integer)",
        "CREATE TABLE j (d1 integer, payload integer)",
        "CREATE TABLE s (d2 integer, flag integer)",
        "CREATE TABLE probe (k integer, v integer)",
        "CREATE INDEX idx_probe_k ON probe (k)",
    ]
    for statement in ddl:
        database.execute(statement)
        connection.execute(statement)

    fanout = rng.randint(4, 7)
    tables = {
        "f": [(k, rng.randrange(40), rng.randrange(120))
              for k in range(rng.randint(350, 450))],
        "j": [(d1, p) for d1 in range(40) for p in range(fanout)],
        "s": [(d2, rng.randrange(200)) for d2 in range(120)],
        "probe": [(k % 80, rng.randrange(10)) for k in range(240)],
    }
    for name, rows in tables.items():
        values = ", ".join(f"({', '.join(str(v) for v in row)})"
                           for row in rows)
        database.execute(f"INSERT INTO {name} VALUES {values}")
        width = len(rows[0])
        connection.executemany(
            f"INSERT INTO {name} VALUES ({', '.join('?' * width)})",
            rows)
    return rng, database, connection


def optimizer_queries(rng):
    """(label, sql) pairs — each one leans on a stats-driven choice."""
    cutoff = rng.randint(3, 12)
    long_list = ", ".join(str(k) for k in range(0, 80, 2))
    short_list = ", ".join(str(rng.randrange(80)) for _ in range(3))
    return [
        # 3-table join order: selective s-filter should join first
        ("join-order",
         f"SELECT f.k, j.payload FROM f, j, s WHERE f.d1 = j.d1 "
         f"AND f.d2 = s.d2 AND s.flag < {cutoff}"),
        # build side: the filtered big side hashes fewer rows
        ("build-side",
         f"SELECT f.k, s.flag FROM f, s WHERE f.d2 = s.d2 "
         f"AND s.flag < {cutoff}"),
        # short IN-list: stays an index probe under the cost model
        ("in-probe",
         f"SELECT v FROM probe WHERE k IN ({short_list})"),
        # IN-list rivaling the table: cost model demotes to a scan
        ("in-cutoff",
         f"SELECT v FROM probe WHERE k IN ({long_list})"),
        # left join keeps its preserved side regardless of estimates
        ("left-join",
         f"SELECT s.d2, f.k FROM s LEFT JOIN f ON s.d2 = f.d2 "
         f"WHERE s.flag < {cutoff}"),
    ]


# -- canonical forms ----------------------------------------------------------

def canonical_rows(rows):
    return sorted(repr(tuple(row)) for row in rows)


def canonical_traced(result):
    """(row bytes, lineage bytes) pairs, order-independent."""
    return sorted(
        (repr(tuple(row)), repr(sorted(repr(ref) for ref in lineage)))
        for row, lineage in zip(result.rows, result.lineages))


def plan_text(database, sql):
    return "\n".join(
        row[0] for row in database.execute("EXPLAIN " + sql).rows)


# -- the oracle ---------------------------------------------------------------

def test_stats_driven_plans_preserve_rows_and_lineage(optimizer_seed):
    rng, database, connection = build_engines(optimizer_seed)
    cases = optimizer_queries(rng)

    rote = {}
    for label, sql in cases:
        rote[label] = (plan_text(database, sql),
                       database.execute(sql, provenance=True))

    database.execute("ANALYZE")

    flipped = 0
    for label, sql in cases:
        rote_plan, rote_result = rote[label]
        informed_plan = plan_text(database, sql)
        informed_result = database.execute(sql, provenance=True)
        flipped += informed_plan != rote_plan

        reference = connection.execute(sql).fetchall()
        context = f"seed {optimizer_seed}, case {label}:\n  {sql}"
        assert canonical_rows(informed_result.rows) == \
            canonical_rows(reference), f"diverged from sqlite on {context}"
        assert canonical_traced(informed_result) == \
            canonical_traced(rote_result), \
            f"plan change altered rows/lineage on {context}"

    # canary: the oracle must compare *different* plan shapes — the
    # in-cutoff case is constructed to flip on every seed
    assert flipped >= 1
    in_cutoff_sql = dict(cases)["in-cutoff"]
    assert "IndexScan" in rote["in-cutoff"][0]
    assert "IndexScan" not in plan_text(database, in_cutoff_sql)


def test_oracle_is_deterministic_per_seed():
    def transcript(seed):
        rng, database, connection = build_engines(seed)
        lines = [database.query("SELECT count(*) FROM f")[0][0]]
        lines.extend(sql for _, sql in optimizer_queries(rng))
        connection.close()
        return lines

    assert transcript(4) == transcript(4)


def test_oracle_catches_a_seeded_lineage_divergence():
    """Sanity: the traced comparison really can fail — the same rows
    with different lineage must not pass."""
    _, database, _ = build_engines(0)
    sql = "SELECT v FROM probe WHERE k IN (1, 2, 3)"
    first = database.execute(sql, provenance=True)
    forged = database.execute(sql, provenance=True)
    forged.lineages = [frozenset() for _ in forged.lineages]
    assert canonical_rows(first.rows) == canonical_rows(forged.rows)
    assert canonical_traced(first) != canonical_traced(forged)
