"""Query-engine fast path: compiled expressions, plan cache, EXPLAIN
ANALYZE — plus regression tests for the executor correctness fixes
that shipped with it (Decimal-safe rounding, LEFT-join WHERE vs ON
semantics, empty-input global aggregates).
"""

from __future__ import annotations

from decimal import Decimal

import pytest

from repro.db import protocol
from repro.db import expressions as exprs
from repro.db.client import DBClient
from repro.db.engine import Database, PlanCache
from repro.db.server import DBServer
from repro.db.sql.parser import parse_sql
from repro.db.sql.render import render_statement


def make_db() -> Database:
    db = Database()
    db.execute("CREATE TABLE emp (id integer, name text, dept text, "
               "salary float)")
    db.execute("CREATE TABLE dept (dept text, city text)")
    db.execute("INSERT INTO emp VALUES "
               "(1, 'ada', 'eng', 100.0), (2, 'bob', 'eng', 80.0), "
               "(3, 'cyd', 'ops', 60.0), (4, 'dan', 'hr', 50.0), "
               "(5, 'eve', NULL, NULL)")
    db.execute("INSERT INTO dept VALUES "
               "('eng', 'berlin'), ('ops', 'paris')")
    return db


PARITY_QUERIES = [
    "SELECT id, salary * 2 FROM emp WHERE salary > 55 ORDER BY id",
    "SELECT name FROM emp WHERE dept = 'eng' AND salary >= 80 "
    "OR name LIKE 'e%'",
    "SELECT dept, count(*), sum(salary) FROM emp GROUP BY dept "
    "ORDER BY dept",
    "SELECT e.name, d.city FROM emp e JOIN dept d ON e.dept = d.dept "
    "ORDER BY e.name",
    "SELECT e.name, d.city FROM emp e LEFT JOIN dept d "
    "ON e.dept = d.dept ORDER BY e.name",
    "SELECT CASE WHEN salary IS NULL THEN 'none' "
    "WHEN salary > 70 THEN 'high' ELSE 'low' END FROM emp ORDER BY id",
    "SELECT name FROM emp WHERE salary BETWEEN 55 AND 90 ORDER BY id",
    "SELECT name FROM emp WHERE dept IN ('eng', 'hr') ORDER BY id",
    "SELECT upper(name) || '-' || coalesce(dept, '?') FROM emp "
    "ORDER BY id",
    "SELECT dept, count(*) FROM emp GROUP BY dept "
    "HAVING count(*) > 1 ORDER BY dept",
    "SELECT -salary, NOT (salary > 70) FROM emp ORDER BY id",
]


class TestCompiledParity:
    """The compiled path is an optimization, not a semantics change:
    every query must return byte-identical rows to the interpreter."""

    @pytest.mark.parametrize("sql", PARITY_QUERIES)
    def test_compiled_matches_interpreted(self, sql):
        compiled = make_db().query(sql)
        with exprs.interpreted_expressions():
            interpreted = make_db().query(sql)
        assert compiled == interpreted

    def test_null_three_valued_logic(self):
        db = make_db()
        # NULL > 70 is unknown: eve must not appear in either branch
        high = db.query("SELECT name FROM emp WHERE salary > 70")
        low = db.query("SELECT name FROM emp WHERE NOT (salary > 70)")
        names = {name for (name,) in high} | {name for (name,) in low}
        assert "eve" not in names

    def test_type_mismatch_still_raises(self):
        from repro.errors import ExecutionError

        db = make_db()
        with pytest.raises(ExecutionError):
            db.query("SELECT name FROM emp WHERE name > 5")


class TestDecimalRounding:
    """round/floor/ceil must not coerce through binary float."""

    def test_round_half_up_on_decimal_boundary(self):
        # float 0.285 is really 0.28499999…; a float-based round gives
        # 0.28, the Decimal path honors the written literal
        db = Database()
        assert db.query("SELECT round(0.285, 2)") == [(0.29,)]

    def test_round_half_up_not_bankers(self):
        db = Database()
        assert db.query("SELECT round(2.5)") == [(3.0,)]
        assert db.query("SELECT round(3.5)") == [(4.0,)]

    def test_round_preserves_decimal_type(self):
        result = exprs.SCALAR_FUNCTIONS["round"](Decimal("19.995"), 2)
        assert result == Decimal("20.00")
        assert isinstance(result, Decimal)

    def test_floor_ceil_are_exact_ints(self):
        db = Database()
        assert db.query("SELECT floor(2.7), ceil(2.1)") == [(2, 3)]
        assert db.query("SELECT floor(-2.1), ceil(-2.9)") == [(-3, -2)]
        ceil = exprs.SCALAR_FUNCTIONS["ceil"]
        # a value float cannot represent: 10^16 + 1
        assert ceil(Decimal("10000000000000001")) == 10000000000000001

    def test_round_null_propagates(self):
        db = Database()
        assert db.query("SELECT round(NULL, 2)") == [(None,)]


class TestLeftJoinResidualSemantics:
    """A WHERE conjunct on a LEFT JOIN filters *results* (dropping
    null-padded rows that fail it); an ON conjunct only restricts the
    *match* (keeping the left row null-padded). The planner must never
    demote WHERE into a join residual."""

    @staticmethod
    def _db() -> Database:
        db = Database()
        db.execute("CREATE TABLE a (id integer)")
        db.execute("CREATE TABLE b (id integer, w integer)")
        db.execute("INSERT INTO a VALUES (1), (2), (3)")
        # b matches a.id=1 with small w, a.id=2 with large w; 3 unmatched
        db.execute("INSERT INTO b VALUES (1, 1), (2, 10)")
        return db

    def test_where_and_on_differ(self):
        db = self._db()
        where_rows = db.query(
            "SELECT a.id, b.w FROM a LEFT JOIN b ON a.id = b.id "
            "WHERE b.w > 5 ORDER BY a.id")
        on_rows = db.query(
            "SELECT a.id, b.w FROM a LEFT JOIN b "
            "ON a.id = b.id AND b.w > 5 ORDER BY a.id")
        # WHERE: only the row whose match satisfies it survives
        assert where_rows == [(2, 10)]
        # ON: every left row survives; failed matches are null-padded
        assert on_rows == [(1, None), (2, 10), (3, None)]
        assert where_rows != on_rows

    def test_where_is_a_filter_above_the_join(self):
        db = self._db()
        lines = [row[0] for row in db.execute(
            "EXPLAIN SELECT a.id, b.w FROM a LEFT JOIN b "
            "ON a.id = b.id WHERE b.w > 5").rows]
        join_depth = next(
            line.index("HashJoin") // 2 for line in lines
            if "HashJoin" in line)
        filter_depths = [line.index("Filter") // 2 for line in lines
                         if "Filter" in line and "w > 5" in line]
        assert filter_depths, "WHERE conjunct vanished from the plan"
        assert all(depth <= join_depth for depth in filter_depths), (
            "WHERE conjunct was pushed into/below the left join")

    def test_nested_loop_left_join_where_semantics(self):
        db = self._db()
        # a non-equi ON forces NestedLoopJoin; WHERE must still filter
        rows = db.query(
            "SELECT a.id, b.w FROM a LEFT JOIN b ON a.id < b.id "
            "WHERE b.w > 5 ORDER BY a.id")
        assert rows == [(1, 10)]


class TestEmptyInputGlobalAggregate:
    @staticmethod
    def _empty() -> Database:
        db = Database()
        db.execute("CREATE TABLE t (id integer, name text, v float)")
        return db

    def test_global_aggregate_yields_one_row(self):
        db = self._empty()
        assert db.query("SELECT count(*), sum(v), min(v), max(v), "
                        "avg(v) FROM t") == [(0, None, None, None, None)]

    def test_having_suppresses_synthesized_row(self):
        db = self._empty()
        assert db.query(
            "SELECT count(*) FROM t HAVING count(*) > 0") == []

    def test_scalar_expressions_over_null_representative(self):
        # outputs mixing aggregates with bare columns evaluate those
        # columns against an all-NULL row: they must yield NULL, not
        # raise
        db = self._empty()
        assert db.query("SELECT count(*), upper(name), v + 1, "
                        "length(name) FROM t") == [(0, None, None, None)]

    def test_group_by_empty_input_yields_no_rows(self):
        db = self._empty()
        assert db.query(
            "SELECT name, count(*) FROM t GROUP BY name") == []


class TestPlanCache:
    def test_repeats_hit(self):
        db = make_db()
        sql = "SELECT name FROM emp WHERE id = 3"
        first = db.query(sql)
        assert db.plan_cache.counters() == {
            "hits": 0, "misses": 1, "size": 1}
        for _ in range(3):
            assert db.query(sql) == first
        assert db.plan_cache.hits == 3
        assert db.plan_cache.misses == 1

    def test_whitespace_normalization(self):
        db = make_db()
        db.query("SELECT id   FROM emp\n WHERE id = 1")
        db.query("SELECT id FROM emp WHERE id = 1")
        assert db.plan_cache.hits == 1

    def test_string_literals_are_not_collapsed(self):
        db = Database()
        assert db.query("SELECT 'a  b'") == [("a  b",)]
        assert db.query("SELECT 'a b'") == [("a b",)]
        assert db.plan_cache.hits == 0

    def test_cached_plan_sees_new_data(self):
        db = make_db()
        sql = "SELECT count(*) FROM emp"
        assert db.query(sql) == [(5,)]
        db.execute("INSERT INTO emp VALUES (6, 'fin', 'eng', 70.0)")
        assert db.query(sql) == [(6,)]
        assert db.plan_cache.hits == 1

    def test_dml_does_not_pollute_counters(self):
        db = make_db()
        hits, misses = db.plan_cache.hits, db.plan_cache.misses
        db.execute("INSERT INTO emp VALUES (7, 'gil', 'hr', 40.0)")
        db.execute("UPDATE emp SET salary = 41 WHERE id = 7")
        db.execute("DELETE FROM emp WHERE id = 7")
        assert (db.plan_cache.hits, db.plan_cache.misses) == (hits, misses)

    def test_ddl_invalidates(self):
        db = make_db()
        sql = "SELECT name FROM emp WHERE id = 2"
        db.query(sql)
        db.execute("CREATE INDEX ix_emp_id ON emp (id)")
        assert len(db.plan_cache) == 0
        # the re-plan must pick up the new index, not the cached scan
        assert db.query(sql) == [("bob",)]
        lines = [row[0] for row in db.execute("EXPLAIN " + sql).rows]
        assert any("IndexScan" in line for line in lines)
        assert db.plan_cache.hits == 0

    def test_drop_and_recreate_table_is_not_served_stale(self):
        db = Database()
        db.execute("CREATE TABLE t (id integer)")
        db.execute("INSERT INTO t VALUES (1)")
        sql = "SELECT id FROM t"
        assert db.query(sql) == [(1,)]
        db.execute("DROP TABLE t")
        db.execute("CREATE TABLE t (id integer)")
        db.execute("INSERT INTO t VALUES (9)")
        assert db.query(sql) == [(9,)]

    def test_provenance_flag_is_part_of_the_key(self):
        db = make_db()
        sql = "SELECT name FROM emp WHERE id = 1"
        plain = db.execute(sql)
        tracked = db.execute(sql, provenance=True)
        assert plain.rows == tracked.rows
        assert plain.lineages == [frozenset()]
        assert tracked.lineages != plain.lineages
        # and repeats of each flavor hit their own entry
        db.execute(sql)
        db.execute(sql, provenance=True)
        assert db.plan_cache.hits == 2

    def test_lru_eviction(self):
        db = Database(plan_cache_size=2)
        db.execute("CREATE TABLE t (id integer)")
        db.query("SELECT 1")
        db.query("SELECT 2")
        db.query("SELECT 3")  # evicts "SELECT 1"
        assert len(db.plan_cache) == 2
        db.query("SELECT 1")
        assert db.plan_cache.hits == 0
        db.query("SELECT 1")
        assert db.plan_cache.hits == 1

    def test_subqueries_are_never_cached(self):
        db = make_db()
        sql = ("SELECT name FROM emp WHERE salary > "
               "(SELECT avg(salary) FROM emp)")
        before = db.query(sql)
        assert len(db.plan_cache) == 0
        # the subquery result is data-dependent: caching its inlined
        # literal would freeze the threshold
        db.execute("INSERT INTO emp VALUES (8, 'hal', 'eng', 1000.0)")
        after = db.query(sql)
        assert before != after

    def test_transaction_rollback_not_confused_by_cache(self):
        db = make_db()
        sql = "SELECT count(*) FROM emp"
        db.query(sql)
        db.execute("BEGIN")
        db.execute("INSERT INTO emp VALUES (9, 'ivy', 'ops', 10.0)")
        assert db.query(sql) == [(6,)]
        db.execute("ROLLBACK")
        assert db.query(sql) == [(5,)]


class FakeTimer:
    """A deterministic clock: each reading advances by ``step``."""

    def __init__(self, step: float = 0.5) -> None:
        self.now = 0.0
        self.step = step

    def __call__(self) -> float:
        self.now += self.step
        return self.now


class TestExplainAnalyze:
    def test_plain_explain_is_unchanged(self):
        db = make_db()
        result = db.execute("SELECT name FROM emp WHERE id = 1")
        explain = db.execute("EXPLAIN SELECT name FROM emp WHERE id = 1")
        assert explain.kind == "explain"
        assert explain.stats == {}
        assert all("rows=" not in row[0] for row in explain.rows)
        assert result.rows == [("ada",)]

    def test_analyze_reports_exact_row_counts(self):
        db = make_db()
        result = db.execute(
            "EXPLAIN ANALYZE SELECT name FROM emp WHERE salary > 55")
        text = "\n".join(row[0] for row in result.rows)
        assert "SeqScan on emp [scan cache: miss] (rows=5 " in text
        assert "Filter: salary > 55 (rows=3 " in text
        assert "Project" in text
        operators = result.stats["analyze"]["operators"]
        by_name = {entry["operator"]: entry for entry in operators}
        assert by_name["SeqScan"]["rows"] == 5
        assert by_name["Filter"]["rows"] == 3
        assert result.stats["analyze"]["rows"] == 3

    def test_analyze_uses_the_injected_clock(self):
        timer = FakeTimer(step=0.5)
        db = Database(timer=timer)
        db.execute("CREATE TABLE t (id integer)")
        db.execute("INSERT INTO t VALUES (1), (2)")
        result = db.execute("EXPLAIN ANALYZE SELECT id FROM t")
        operators = result.stats["analyze"]["operators"]
        # every measured interval is an exact multiple of the step
        for entry in operators:
            assert entry["seconds"] > 0
            assert (entry["seconds"] / 0.5) == int(
                entry["seconds"] / 0.5)
            assert entry["loops"] == 1
        assert result.stats["analyze"]["total_seconds"] > 0

    def test_analyze_join_aggregate_tree(self):
        db = make_db()
        result = db.execute(
            "EXPLAIN ANALYZE SELECT d.city, count(*) FROM emp e "
            "JOIN dept d ON e.dept = d.dept GROUP BY d.city")
        operators = result.stats["analyze"]["operators"]
        names = [entry["operator"] for entry in operators]
        assert "HashJoin" in names
        assert "GroupAggregate" in names
        # the join feeds 3 matched rows into the aggregate
        join = next(entry for entry in operators
                    if entry["operator"] == "HashJoin")
        assert join["rows"] == 3

    def test_analyze_render_round_trip(self):
        sql = "EXPLAIN ANALYZE SELECT id FROM t"
        (statement,) = parse_sql(sql)
        assert statement.analyze
        assert render_statement(statement) == sql
        (plain,) = parse_sql("EXPLAIN SELECT id FROM t")
        assert not plain.analyze

    def test_analyze_is_never_served_from_cache(self):
        db = make_db()
        sql = "EXPLAIN ANALYZE SELECT count(*) FROM emp"
        first = db.execute(sql)
        second = db.execute(sql)

        def counters(result):
            return [(entry["operator"], entry["rows"], entry["loops"])
                    for entry in result.stats["analyze"]["operators"]]

        # counters are fresh per run, not accumulated across runs
        assert counters(first) == counters(second)
        assert len(db.plan_cache) == 0


class TestExplainAnalyzeOverTheWire:
    def test_client_explain_analyze(self):
        server = DBServer(database=make_db())
        client = DBClient(server.transport())
        client.connect()
        result = client.explain_analyze(
            "SELECT dept, count(*) FROM emp GROUP BY dept")
        assert result.kind == "explain"
        assert any("GroupAggregate" in row[0] and "rows=" in row[0]
                   for row in result.rows)
        operators = result.stats["analyze"]["operators"]
        assert any(entry["operator"] == "SeqScan" and entry["rows"] == 5
                   for entry in operators)
        assert result.stats["server"]["seconds"] >= 0

    def test_stats_survive_the_wire_round_trip(self):
        db = make_db()
        result = db.execute("EXPLAIN ANALYZE SELECT count(*) FROM emp")
        frame = protocol.decode_frame(
            protocol.encode_frame(protocol.result_to_wire(result)))
        back = protocol.result_from_wire(frame)
        assert back.stats == result.stats
        assert back.rows == result.rows

    def test_old_frames_without_stats_still_decode(self):
        db = make_db()
        result = db.execute("SELECT 1")
        frame = protocol.result_to_wire(result)
        del frame["stats"]
        back = protocol.result_from_wire(frame)
        assert back.stats == {}
        assert back.rows == [(1,)]


class TestNormalizeKeySafety:
    def test_normalize_plain(self):
        assert PlanCache.normalize(" SELECT  1 \n") == "SELECT 1"

    def test_normalize_keeps_quoted_text_verbatim(self):
        sql = "SELECT 'a  b' FROM t"
        assert PlanCache.normalize(sql) == sql
