"""Lineage (Perm) semantics tests, mirroring paper Section VI-A."""

import pytest

from repro.db import Database
from repro.db.provenance import PermInterface
from repro.db.provtypes import TupleRef
from repro.db.sql.parser import parse_one


@pytest.fixture
def db():
    database = Database()
    database.execute("CREATE TABLE sales (id integer, price float)")
    database.execute("INSERT INTO sales VALUES (1, 5), (2, 11), (3, 14)")
    return database


def refs(lineage):
    return {(ref.table, ref.rowid) for ref in lineage}


class TestSelectionLineage:
    def test_each_result_row_has_singleton_lineage(self, db):
        result = db.execute("SELECT id FROM sales WHERE price > 10",
                            provenance=True)
        assert [len(lin) for lin in result.lineages] == [1, 1]

    def test_lineage_points_at_matching_rows(self, db):
        result = db.execute("SELECT id FROM sales WHERE price > 10",
                            provenance=True)
        assert refs(result.lineages[0]) == {("sales", 2)}
        assert refs(result.lineages[1]) == {("sales", 3)}

    def test_projection_preserves_lineage(self, db):
        result = db.execute("SELECT price * 2 FROM sales WHERE id = 1",
                            provenance=True)
        assert refs(result.lineages[0]) == {("sales", 1)}

    def test_no_provenance_means_empty_lineage(self, db):
        result = db.execute("SELECT id FROM sales")
        assert all(lin == frozenset() for lin in result.lineages)


class TestAggregationLineage:
    def test_paper_figure5_example(self, db):
        """Figure 5: Lineage of sum over price>10 is {t2, t3}."""
        result = db.execute(
            "SELECT sum(price) AS ttl FROM sales WHERE price > 10",
            provenance=True)
        assert result.rows == [(25.0,)]
        assert refs(result.lineages[0]) == {("sales", 2), ("sales", 3)}

    def test_group_lineage_partitions_input(self, db):
        db.execute("CREATE TABLE t (k text, v integer)")
        db.execute("INSERT INTO t VALUES ('a', 1), ('a', 2), ('b', 3)")
        result = db.execute(
            "SELECT k, sum(v) FROM t GROUP BY k ORDER BY k",
            provenance=True)
        assert [len(lin) for lin in result.lineages] == [2, 1]

    def test_filtered_out_rows_not_in_lineage(self, db):
        result = db.execute(
            "SELECT count(*) FROM sales WHERE price > 100",
            provenance=True)
        assert result.rows == [(0,)]
        assert result.lineages[0] == frozenset()


class TestJoinLineage:
    @pytest.fixture(autouse=True)
    def orders(self, db):
        db.execute("CREATE TABLE orders (oid integer, sid integer)")
        db.execute("INSERT INTO orders VALUES (10, 1), (11, 2)")

    def test_join_unions_both_sides(self, db):
        result = db.execute(
            "SELECT o.oid FROM sales s, orders o WHERE s.id = o.sid "
            "ORDER BY o.oid", provenance=True)
        assert refs(result.lineages[0]) == {("sales", 1), ("orders", 1)}
        assert refs(result.lineages[1]) == {("sales", 2), ("orders", 2)}

    def test_left_join_unmatched_has_left_lineage_only(self, db):
        result = db.execute(
            "SELECT s.id FROM sales s LEFT JOIN orders o ON s.id = o.sid "
            "ORDER BY s.id", provenance=True)
        assert refs(result.lineages[2]) == {("sales", 3)}

    def test_aggregate_over_join(self, db):
        result = db.execute(
            "SELECT count(*) FROM sales s, orders o WHERE s.id = o.sid",
            provenance=True)
        assert refs(result.lineages[0]) == {
            ("sales", 1), ("sales", 2), ("orders", 1), ("orders", 2)}


class TestDistinctLineage:
    def test_distinct_merges_duplicate_lineages(self, db):
        db.execute("INSERT INTO sales VALUES (4, 11)")
        result = db.execute(
            "SELECT DISTINCT price FROM sales WHERE price = 11",
            provenance=True)
        assert len(result.rows) == 1
        assert refs(result.lineages[0]) == {("sales", 2), ("sales", 4)}


class TestLineageReferencesVersions:
    def test_lineage_tracks_current_version(self, db):
        before = db.execute("SELECT id FROM sales WHERE id = 1",
                            provenance=True)
        db.execute("UPDATE sales SET price = 6 WHERE id = 1")
        after = db.execute("SELECT id FROM sales WHERE id = 1",
                           provenance=True)
        (old_ref,) = before.lineages[0]
        (new_ref,) = after.lineages[0]
        assert old_ref.rowid == new_ref.rowid
        assert new_ref.version > old_ref.version


class TestPermInterface:
    def test_provenance_query_from_text(self, db):
        perm = PermInterface(db)
        result = perm.provenance_query(
            "SELECT id FROM sales WHERE price > 10")
        assert all(len(lin) == 1 for lin in result.lineages)

    def test_provenance_query_rejects_dml_text(self, db):
        perm = PermInterface(db)
        with pytest.raises(Exception):
            perm.provenance_query("DELETE FROM sales")

    def test_reenact_update_captures_pre_state(self, db):
        perm = PermInterface(db)
        statement = parse_one("UPDATE sales SET price = 0 WHERE price > 10")
        reenactment = perm.reenact(statement)
        assert reenactment.statement_kind == "update"
        assert {ref.rowid for ref in reenactment.input_refs} == {2, 3}
        # pre-state values are captured before execution
        assert sorted(row[1] for row in reenactment.input_rows) == [11.0, 14.0]
        # and the database itself is untouched
        assert db.query("SELECT count(*) FROM sales WHERE price = 0") == [(0,)]

    def test_reenact_delete(self, db):
        perm = PermInterface(db)
        statement = parse_one("DELETE FROM sales WHERE id = 1")
        reenactment = perm.reenact(statement)
        assert reenactment.statement_kind == "delete"
        assert [ref.rowid for ref in reenactment.input_refs] == [1]

    def test_reenact_plain_insert_is_empty(self, db):
        perm = PermInterface(db)
        statement = parse_one("INSERT INTO sales VALUES (9, 1)")
        assert perm.reenact(statement).input_refs == []

    def test_reenact_insert_select(self, db):
        db.execute("CREATE TABLE archive (id integer, price float)")
        perm = PermInterface(db)
        statement = parse_one(
            "INSERT INTO archive SELECT id, price FROM sales "
            "WHERE price > 10")
        reenactment = perm.reenact(statement)
        assert {ref.rowid for ref in reenactment.input_refs} == {2, 3}
