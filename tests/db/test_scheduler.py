"""The deterministic interleaving scheduler itself.

The anomaly matrix (``test_anomalies.py``) trusts the scheduler to run
exactly the schedule it is given; these tests earn that trust — and
enforce the suite-wide ban on wall-clock sleeps in concurrency tests.
"""

from pathlib import Path

import pytest

from repro.db import Database, InterleavingScheduler
from repro.db.scheduler import SchedulerError
from repro.errors import SQLSyntaxError

pytestmark = pytest.mark.concurrency


def setup():
    database = Database()
    database.execute("CREATE TABLE t (id integer PRIMARY KEY, v integer)")
    database.execute("INSERT INTO t VALUES (1, 0)")
    return database


def reader():
    first = yield "SELECT v FROM t WHERE id = 1"
    second = yield "SELECT v FROM t WHERE id = 1"
    return (first.rows[0][0], second.rows[0][0])


def writer():
    yield "UPDATE t SET v = 7 WHERE id = 1"
    return "wrote"


class TestNamedSchedules:
    @pytest.mark.parametrize("through_wire", [True, False],
                             ids=["wire", "direct"])
    def test_schedule_order_decides_what_reads_see(self, through_wire):
        scheduler = InterleavingScheduler(
            setup, {"r": reader, "w": writer}, through_wire=through_wire)
        assert scheduler.run("r w r").value("r") == (0, 7)
        assert scheduler.run("w r r").value("r") == (7, 7)
        assert scheduler.run("r r w").value("r") == (0, 0)

    def test_each_run_starts_from_fresh_state(self):
        scheduler = InterleavingScheduler(setup, {"r": reader, "w": writer})
        scheduler.run("w r r")
        # the write from the first run must not leak into the second
        assert scheduler.run("r r w").value("r") == (0, 0)

    def test_same_schedule_is_exactly_reproducible(self):
        scheduler = InterleavingScheduler(setup, {"r": reader, "w": writer})
        first = scheduler.run("r w r")
        second = scheduler.run("r w r")
        assert [s.sql for s in first.steps("r")] == \
            [s.sql for s in second.steps("r")]
        assert first.value("r") == second.value("r")
        assert first.query("SELECT v FROM t") == \
            second.query("SELECT v FROM t")

    def test_outcome_exposes_traces_and_final_state(self):
        scheduler = InterleavingScheduler(setup, {"r": reader, "w": writer})
        outcome = scheduler.run("r w r")
        assert outcome.schedule == ("r", "w", "r")
        assert [s.sql for s in outcome.steps("w")] == \
            ["UPDATE t SET v = 7 WHERE id = 1"]
        assert outcome.value("w") == "wrote"
        assert outcome.errors() == []
        assert outcome.query("SELECT v FROM t") == [(7,)]


class TestStrictness:
    def test_unknown_session_rejected(self):
        scheduler = InterleavingScheduler(setup, {"w": writer})
        with pytest.raises(SchedulerError, match="unknown session"):
            scheduler.run("w x")

    def test_stepping_a_finished_script_rejected(self):
        scheduler = InterleavingScheduler(setup, {"w": writer})
        with pytest.raises(SchedulerError, match="already finished"):
            scheduler.run("w w")

    def test_unfinished_scripts_rejected(self):
        scheduler = InterleavingScheduler(setup, {"r": reader, "w": writer})
        with pytest.raises(SchedulerError, match="unfinished"):
            scheduler.run("r w")  # r still has one statement pending

    def test_empty_script_set_rejected(self):
        with pytest.raises(SchedulerError):
            InterleavingScheduler(setup, {})


class TestErrorCapture:
    def test_statement_errors_land_in_step_results(self):
        def clumsy():
            step = yield "SELEKT oops"
            return type(step.error).__name__

        scheduler = InterleavingScheduler(setup, {"c": clumsy})
        outcome = scheduler.run("c")
        assert outcome.value("c") == "SQLSyntaxError"
        [(name, index, error)] = outcome.errors()
        assert (name, index) == ("c", 0)
        assert isinstance(error, SQLSyntaxError)

    def test_rows_accessor_reraises_captured_error(self):
        def clumsy():
            step = yield "SELEKT oops"
            with pytest.raises(SQLSyntaxError):
                step.rows
            return "checked"

        scheduler = InterleavingScheduler(setup, {"c": clumsy})
        assert scheduler.run("c").value("c") == "checked"


class TestExploration:
    def test_explores_every_complete_interleaving(self):
        # two scripts of 2 and 1 statements: C(3,1) = 3 schedules
        def two():
            yield "SELECT v FROM t WHERE id = 1"
            yield "SELECT v FROM t WHERE id = 1"

        scheduler = InterleavingScheduler(setup, {"a": two, "b": writer})
        outcomes = scheduler.explore()
        schedules = sorted(o.schedule for o in outcomes)
        assert schedules == [("a", "a", "b"), ("a", "b", "a"),
                             ("b", "a", "a")]

    def test_limit_bounds_the_walk(self):
        scheduler = InterleavingScheduler(
            setup, {"a": reader, "b": writer})
        assert len(scheduler.explore(limit=2)) == 2

    def test_seed_makes_sampling_deterministic(self):
        def outcomes_for(seed):
            scheduler = InterleavingScheduler(
                setup, {"a": reader, "b": writer})
            return [o.schedule for o in scheduler.explore(limit=2,
                                                          seed=seed)]

        assert outcomes_for(7) == outcomes_for(7)

    def test_different_seeds_can_walk_different_corners(self):
        def outcomes_for(seed):
            scheduler = InterleavingScheduler(
                setup, {"a": reader, "b": writer})
            return [o.schedule for o in scheduler.explore(seed=seed)]

        # all seeds visit the same *set* of schedules
        assert {tuple(sorted(outcomes_for(s))) for s in range(5)} == \
            {tuple(sorted(outcomes_for(None)))}


def test_no_wall_clock_sleeps_in_the_concurrency_suite():
    """Concurrency tests control schedules; they never sleep and hope.
    Tests that exercise retry backoff inject their own sleep hook."""
    suite = Path(__file__).parent
    for name in ("test_scheduler.py", "test_anomalies.py", "test_mvcc.py",
                 "test_plan_cache_concurrency.py",
                 "test_concurrent_commit_recovery.py"):
        text = (suite / name).read_text()
        forbidden = "time." + "sleep("  # split so this file passes too
        assert forbidden not in text, f"{name} sleeps"
