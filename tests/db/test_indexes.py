"""Hash index tests: maintenance, planning, persistence, lineage."""

import pytest

from repro.db import Database
from repro.db.storage import HeapTable
from repro.errors import CatalogError


@pytest.fixture
def db():
    database = Database()
    database.execute(
        "CREATE TABLE t (id integer PRIMARY KEY, k integer, s text)")
    database.execute(
        "INSERT INTO t VALUES (1, 10, 'a'), (2, 20, 'b'), "
        "(3, 10, 'c'), (4, NULL, 'd')")
    database.execute("CREATE INDEX idx_k ON t (k)")
    return database


def plan_text(db, sql):
    return "\n".join(row[0] for row in db.execute(f"EXPLAIN {sql}").rows)


class TestIndexDDL:
    def test_create_and_drop(self, db):
        db.execute("CREATE INDEX idx_s ON t (s)")
        assert db.catalog.has_index("idx_s")
        db.execute("DROP INDEX idx_s")
        assert not db.catalog.has_index("idx_s")

    def test_duplicate_name_raises(self, db):
        with pytest.raises(CatalogError):
            db.execute("CREATE INDEX idx_k ON t (s)")

    def test_if_not_exists(self, db):
        db.execute("CREATE INDEX IF NOT EXISTS idx_k ON t (s)")

    def test_drop_missing_raises(self, db):
        with pytest.raises(CatalogError):
            db.execute("DROP INDEX ghost")
        db.execute("DROP INDEX IF EXISTS ghost")

    def test_unknown_column_raises(self, db):
        with pytest.raises(CatalogError):
            db.execute("CREATE INDEX idx_bad ON t (nope)")

    def test_render_round_trip(self):
        from repro.db.sql.parser import parse_one
        from repro.db.sql.render import render_statement
        for sql in ("CREATE INDEX i ON t (k)",
                    "CREATE INDEX IF NOT EXISTS i ON t (k)",
                    "DROP INDEX i", "DROP INDEX IF EXISTS i"):
            tree = parse_one(sql)
            assert parse_one(render_statement(tree)) == tree


class TestIndexPlanning:
    def test_equality_uses_index_scan(self, db):
        assert "IndexScan on t using idx_k" in plan_text(
            db, "SELECT * FROM t WHERE k = 10")

    def test_reversed_equality_uses_index(self, db):
        assert "IndexScan" in plan_text(
            db, "SELECT * FROM t WHERE 10 = k")

    def test_unindexed_column_scans(self, db):
        assert "SeqScan" in plan_text(db, "SELECT * FROM t WHERE s = 'a'")

    def test_range_predicate_scans(self, db):
        assert "IndexScan" not in plan_text(
            db, "SELECT * FROM t WHERE k > 10")

    def test_extra_conjunct_filters_on_top(self, db):
        text = plan_text(db, "SELECT * FROM t WHERE k = 10 AND s = 'a'")
        assert "IndexScan" in text
        assert "Filter" in text


class TestIndexCorrectness:
    def test_index_scan_results_match_seq_scan(self, db):
        indexed = db.query("SELECT id FROM t WHERE k = 10 ORDER BY id")
        db.execute("DROP INDEX idx_k")
        scanned = db.query("SELECT id FROM t WHERE k = 10 ORDER BY id")
        assert indexed == scanned == [(1,), (3,)]

    def test_null_key_never_matches(self, db):
        assert db.query("SELECT id FROM t WHERE k = NULL") == []

    def test_maintained_on_insert(self, db):
        db.execute("INSERT INTO t VALUES (5, 10, 'e')")
        assert db.query("SELECT count(*) FROM t WHERE k = 10") == [(3,)]

    def test_maintained_on_update(self, db):
        db.execute("UPDATE t SET k = 99 WHERE id = 1")
        assert db.query("SELECT id FROM t WHERE k = 99") == [(1,)]
        assert db.query("SELECT id FROM t WHERE k = 10") == [(3,)]

    def test_maintained_on_delete(self, db):
        db.execute("DELETE FROM t WHERE id = 1")
        assert db.query("SELECT id FROM t WHERE k = 10") == [(3,)]

    def test_maintained_on_rollback(self, db):
        db.execute("BEGIN")
        db.execute("UPDATE t SET k = 99 WHERE id = 1")
        db.execute("ROLLBACK")
        assert sorted(db.query("SELECT id FROM t WHERE k = 10")) == [
            (1,), (3,)]

    def test_lineage_through_index_scan(self, db):
        result = db.execute("SELECT id FROM t WHERE k = 10",
                            provenance=True)
        rowids = sorted(ref.rowid for lineage in result.lineages
                        for ref in lineage)
        assert rowids == [1, 3]

    def test_index_in_join_fragment(self, db):
        db.execute("CREATE TABLE u (k integer, note text)")
        db.execute("INSERT INTO u VALUES (10, 'ten'), (20, 'twenty')")
        rows = db.query(
            "SELECT t.id, u.note FROM t, u "
            "WHERE t.k = u.k AND t.k = 10 ORDER BY t.id")
        assert rows == [(1, "ten"), (3, "ten")]


class TestIndexPersistence:
    def test_index_definition_survives_restart(self, tmp_path):
        first = Database(data_directory=tmp_path / "d")
        first.execute("CREATE TABLE t (k integer)")
        first.execute("CREATE INDEX idx ON t (k)")
        first.execute("INSERT INTO t VALUES (5)")
        first.close()
        second = Database(data_directory=tmp_path / "d")
        assert second.catalog.has_index("idx")
        assert "IndexScan" in "\n".join(
            row[0] for row in second.execute(
                "EXPLAIN SELECT * FROM t WHERE k = 5").rows)
        assert second.query("SELECT * FROM t WHERE k = 5") == [(5,)]

    def test_serialize_round_trip_rebuilds_buckets(self):
        table = HeapTable.deserialize(
            _indexed_table().serialize())
        index = table.index_on("k")
        assert index is not None
        assert index.lookup(10) == frozenset({1, 3})


def _indexed_table():
    from repro.db.types import Column, Schema, SQLType
    table = HeapTable("t", Schema([Column("id", SQLType.INTEGER),
                                   Column("k", SQLType.INTEGER)]))
    table.insert((1, 10), tick=1)
    table.insert((2, 20), tick=1)
    table.insert((3, 10), tick=1)
    table.create_index("idx", "k")
    return table


class TestRollbackIndexConsistency:
    """Undoing a DELETE restores the row under its original rowid; the
    secondary indexes must follow that identity move (regression: they
    kept the temporary rowid, so a later IndexScan dereferenced a dead
    row)."""

    def test_rollback_of_delete_repoints_secondary_indexes(self, db):
        db.execute("BEGIN")
        db.execute("INSERT INTO t VALUES (5, 30, 'e')")
        db.execute("DELETE FROM t WHERE id = 3")
        db.execute("ROLLBACK")
        # rowids churned during the transaction: lookups must not
        # reference the temporary identity
        assert db.query("SELECT id, s FROM t WHERE k = 10 "
                        "ORDER BY id") == [(1, "a"), (3, "c")]
        assert db.query("SELECT id FROM t WHERE k = 30") == []
        table = db.catalog.get_table("t")
        index = table.index_on("k")
        assert set().union(*index.buckets.values()) <= set(table.rows)

    def test_rollback_restores_pk_rejection(self, db):
        from repro.errors import IntegrityError

        db.execute("BEGIN")
        db.execute("DELETE FROM t WHERE id = 2")
        db.execute("ROLLBACK")
        with pytest.raises(IntegrityError):
            db.execute("INSERT INTO t VALUES (2, 99, 'dup')")
