"""Expression evaluator tests, including SQL three-valued logic."""

import pytest

from repro.db.expressions import (
    Evaluator,
    columns_referenced,
    contains_aggregate,
    find_aggregates,
    make_accumulator,
    sql_like,
)
from repro.db.sql import ast
from repro.db.sql.parser import parse_expression
from repro.db.types import Column, Schema, SQLType
from repro.errors import ExecutionError

SCHEMA = Schema([
    Column("a", SQLType.INTEGER),
    Column("b", SQLType.FLOAT),
    Column("s", SQLType.TEXT),
    Column("flag", SQLType.BOOLEAN),
])


def ev(text, row=(1, 2.5, "hello", True), schema=SCHEMA):
    return Evaluator(schema).evaluate(parse_expression(text), row)


class TestArithmetic:
    def test_addition(self):
        assert ev("a + 1") == 2

    def test_float_math(self):
        assert ev("b * 2") == 5.0

    def test_integer_division_truncates(self):
        assert ev("7 / 2") == 3
        assert ev("-7 / 2") == -3

    def test_float_division(self):
        assert ev("7.0 / 2") == 3.5

    def test_modulo(self):
        assert ev("7 % 3") == 1

    def test_division_by_zero_raises(self):
        with pytest.raises(ExecutionError):
            ev("1 / 0")

    def test_unary_minus(self):
        assert ev("-a") == -1

    def test_concat_operator(self):
        assert ev("s || '!'") == "hello!"

    def test_null_propagates_through_arithmetic(self):
        assert ev("a + NULL") is None
        assert ev("NULL * 2") is None


class TestComparisons:
    def test_equality(self):
        assert ev("a = 1") is True
        assert ev("a = 2") is False

    def test_inequality_operators(self):
        assert ev("a < 2") is True
        assert ev("a >= 1") is True
        assert ev("a <> 1") is False

    def test_string_comparison(self):
        assert ev("s = 'hello'") is True
        assert ev("s < 'world'") is True

    def test_null_comparison_is_unknown(self):
        assert ev("a = NULL") is None
        assert ev("NULL = NULL") is None
        assert ev("a > NULL") is None


class TestBooleanLogic:
    def test_and_or(self):
        assert ev("a = 1 AND b > 2") is True
        assert ev("a = 2 OR b > 2") is True

    def test_kleene_and(self):
        # FALSE AND NULL = FALSE; TRUE AND NULL = NULL
        assert ev("a = 2 AND NULL = 1") is False
        assert ev("a = 1 AND NULL = 1") is None

    def test_kleene_or(self):
        # TRUE OR NULL = TRUE; FALSE OR NULL = NULL
        assert ev("a = 1 OR NULL = 1") is True
        assert ev("a = 2 OR NULL = 1") is None

    def test_not(self):
        assert ev("NOT a = 1") is False
        assert ev("NOT NULL = 1") is None

    def test_matches_treats_unknown_as_false(self):
        evaluator = Evaluator(SCHEMA)
        expr = parse_expression("a = NULL")
        assert evaluator.matches(expr, (1, 2.5, "x", True)) is False


class TestPredicates:
    def test_between(self):
        assert ev("a BETWEEN 0 AND 5") is True
        assert ev("a BETWEEN 2 AND 5") is False
        assert ev("a NOT BETWEEN 2 AND 5") is True

    def test_between_null_bound(self):
        assert ev("a BETWEEN NULL AND 5") is None
        # value above upper bound is FALSE regardless of NULL lower bound
        assert ev("a BETWEEN NULL AND 0") is False

    def test_like(self):
        assert ev("s LIKE 'he%'") is True
        assert ev("s LIKE '%lo'") is True
        assert ev("s LIKE 'h_llo'") is True
        assert ev("s LIKE 'x%'") is False
        assert ev("s NOT LIKE 'x%'") is True

    def test_like_special_chars_escaped(self):
        assert sql_like("a.b", "a.b") is True
        assert sql_like("axb", "a.b") is False  # '.' is literal

    def test_like_with_null(self):
        assert sql_like(None, "%") is None

    def test_in_list(self):
        assert ev("a IN (1, 2)") is True
        assert ev("a IN (2, 3)") is False
        assert ev("a NOT IN (2, 3)") is True

    def test_in_list_with_null_semantics(self):
        # 1 IN (2, NULL) is UNKNOWN; 1 IN (1, NULL) is TRUE
        assert ev("a IN (2, NULL)") is None
        assert ev("a IN (1, NULL)") is True
        assert ev("a NOT IN (2, NULL)") is None

    def test_is_null(self):
        assert ev("NULL IS NULL") is True
        assert ev("a IS NULL") is False
        assert ev("a IS NOT NULL") is True


class TestFunctionsAndCase:
    def test_scalar_functions(self):
        assert ev("upper(s)") == "HELLO"
        assert ev("lower('ABC')") == "abc"
        assert ev("length(s)") == 5
        assert ev("abs(-3)") == 3
        assert ev("round(2.567, 1)") == 2.6
        assert ev("coalesce(NULL, NULL, 7)") == 7
        assert ev("substr(s, 2, 3)") == "ell"

    def test_scalar_function_null_guard(self):
        assert ev("upper(NULL)") is None

    def test_unknown_function_raises(self):
        with pytest.raises(ExecutionError):
            ev("frobnicate(1)")

    def test_aggregate_outside_group_raises(self):
        with pytest.raises(ExecutionError):
            ev("sum(a)")

    def test_case_when(self):
        assert ev("CASE WHEN a = 1 THEN 'one' ELSE 'other' END") == "one"
        assert ev("CASE WHEN a = 9 THEN 'nine' END") is None

    def test_case_condition_null_falls_through(self):
        assert ev("CASE WHEN NULL = 1 THEN 'x' ELSE 'y' END") == "y"


class TestColumnResolution:
    def test_qualified_lookup(self):
        schema = SCHEMA.qualified("t")
        evaluator = Evaluator(schema)
        expr = parse_expression("t.a + 1")
        assert evaluator.evaluate(expr, (5, 0.0, "", False)) == 6

    def test_ambiguous_column_raises(self):
        joined = SCHEMA.qualified("x").concat(SCHEMA.qualified("y"))
        evaluator = Evaluator(joined)
        with pytest.raises(Exception):
            evaluator.evaluate(parse_expression("a"), (0,) * 8)


class TestAccumulators:
    def _run(self, text, values):
        call = parse_expression(text)
        accumulator = make_accumulator(call)
        for value in values:
            accumulator.add(value)
        return accumulator.result()

    def test_count_ignores_null(self):
        assert self._run("count(a)", [1, None, 3]) == 2

    def test_sum(self):
        assert self._run("sum(a)", [1, 2, None, 3]) == 6

    def test_sum_of_all_nulls_is_null(self):
        assert self._run("sum(a)", [None, None]) is None

    def test_avg(self):
        assert self._run("avg(a)", [2, 4, None]) == 3.0

    def test_avg_empty_is_null(self):
        assert self._run("avg(a)", []) is None

    def test_min_max(self):
        assert self._run("min(a)", [3, 1, 2]) == 1
        assert self._run("max(a)", [3, 1, 2]) == 3

    def test_count_distinct(self):
        assert self._run("count(DISTINCT a)", [1, 1, 2, None, 2]) == 2

    def test_sum_distinct(self):
        assert self._run("sum(DISTINCT a)", [5, 5, 3]) == 8


class TestAnalysisHelpers:
    def test_find_aggregates(self):
        expr = parse_expression("sum(a) + count(*) * 2")
        assert len(find_aggregates(expr)) == 2

    def test_contains_aggregate_negative(self):
        assert not contains_aggregate(parse_expression("a + b"))

    def test_columns_referenced(self):
        expr = parse_expression("t.a + b * length(s)")
        names = {ref.name for ref in columns_referenced(expr)}
        assert names == {"a", "b", "s"}
