"""Planner tests: pushdown, join strategy selection, star expansion,
ORDER BY handling, and output-type inference.

The planner emits *batch* operator classes by default, each a subclass
of its row twin (``BatchSort`` is a ``Sort``), and fuses
Scan→Filter→Project chains into ``FusedScanFilterProject`` — shape
assertions below use isinstance / :func:`has_filter` so they hold for
both engines.
"""

import pytest

from repro.db import Database
from repro.db.catalog import Catalog
from repro.db.executor import (
    Filter,
    GroupAggregate,
    HashJoin,
    IndexScan,
    NestedLoopJoin,
    Project,
    SeqScan,
    Sort,
    StripColumns,
)
from repro.db.planner import (
    conjoin,
    derive_column_name,
    infer_type,
    plan_select,
    split_conjuncts,
)
from repro.db.sql.parser import parse_expression, parse_one
from repro.db.types import SQLType
from repro.db.vector import FusedScanFilterProject, row_at_a_time_plans
from repro.errors import ExecutionError


@pytest.fixture
def db():
    database = Database()
    database.execute("CREATE TABLE a (x integer, y float, s text)")
    database.execute("CREATE TABLE b (x integer, z text)")
    database.execute("INSERT INTO a VALUES (1, 1.5, 'p'), (2, 2.5, 'q')")
    database.execute("INSERT INTO b VALUES (1, 'one'), (3, 'three')")
    return database


def plan(db, sql):
    return plan_select(parse_one(sql), db.catalog)


def operators_in(root):
    """Flatten the operator tree."""
    found = [root]
    for attr in ("child", "left", "right"):
        node = getattr(root, attr, None)
        if node is not None:
            found.extend(operators_in(node))
    return found


def has_filter(operators):
    """A predicate is being applied: a Filter node or a fused scan
    carrying pushed-down predicates."""
    return any(
        isinstance(op, Filter)
        or (isinstance(op, FusedScanFilterProject) and op.predicates)
        for op in operators)


def has_projection(operators):
    return any(
        isinstance(op, Project)
        or (isinstance(op, FusedScanFilterProject)
            and op.projections is not None)
        for op in operators)


class TestConjuncts:
    def test_split_flattens_ands(self):
        conjuncts = split_conjuncts(parse_expression("a = 1 AND b = 2 AND c = 3"))
        assert len(conjuncts) == 3

    def test_split_keeps_or_whole(self):
        conjuncts = split_conjuncts(parse_expression("a = 1 OR b = 2"))
        assert len(conjuncts) == 1

    def test_split_none(self):
        assert split_conjuncts(None) == []

    def test_conjoin_inverse(self):
        original = parse_expression("a = 1 AND b = 2")
        assert conjoin(split_conjuncts(original)) == original

    def test_conjoin_empty(self):
        assert conjoin([]) is None


class TestJoinPlanning:
    def test_equi_join_uses_hash_join(self, db):
        planned = plan(db, "SELECT 1 FROM a, b WHERE a.x = b.x")
        operators = operators_in(planned.root)
        assert any(isinstance(op, HashJoin) for op in operators)
        assert not any(isinstance(op, NestedLoopJoin) for op in operators)

    def test_no_predicate_uses_cross_join(self, db):
        planned = plan(db, "SELECT 1 FROM a, b")
        kinds = [type(op) for op in operators_in(planned.root)]
        assert NestedLoopJoin in kinds

    def test_explicit_join_on_equi(self, db):
        planned = plan(db, "SELECT 1 FROM a JOIN b ON a.x = b.x")
        assert any(isinstance(op, HashJoin)
                   for op in operators_in(planned.root))

    def test_non_equi_join_on_falls_back(self, db):
        planned = plan(db, "SELECT 1 FROM a JOIN b ON a.x < b.x")
        assert any(isinstance(op, NestedLoopJoin)
                   for op in operators_in(planned.root))

    def test_single_table_filter_pushed_below_join(self, db):
        planned = plan(
            db, "SELECT 1 FROM a, b WHERE a.x = b.x AND a.y > 2")
        joins = [op for op in operators_in(planned.root)
                 if isinstance(op, HashJoin)]
        assert joins
        # the filter must appear below the join, not above it
        below = operators_in(joins[0])
        assert has_filter(below)

    def test_constant_filter_pushed_to_first_fragment(self, db):
        planned = plan(db, "SELECT 1 FROM a, b WHERE 1 = 0")
        joins = [op for op in operators_in(planned.root)
                 if isinstance(op, NestedLoopJoin)]
        below_left = operators_in(joins[0].left)
        assert has_filter(below_left)
        assert planned.root.schema is not None
        assert list(planned.root) == []  # and it short-circuits

    def test_three_way_greedy_ordering(self, db):
        db.execute("CREATE TABLE c (z text, w integer)")
        planned = plan(
            db, "SELECT 1 FROM a, c, b WHERE a.x = b.x AND b.z = c.z")
        operators = operators_in(planned.root)
        # both joins become hash joins despite c being listed between
        assert sum(isinstance(op, HashJoin) for op in operators) == 2
        assert not any(isinstance(op, NestedLoopJoin) for op in operators)

    def test_source_tables_recorded(self, db):
        planned = plan(db, "SELECT 1 FROM a, b")
        assert planned.source_tables == ["a", "b"]


class TestProjectionAndAggregation:
    def test_star_expansion(self, db):
        planned = plan(db, "SELECT * FROM a")
        assert planned.schema.column_names() == ["x", "y", "s"]

    def test_qualified_star(self, db):
        planned = plan(db, "SELECT b.* FROM a, b WHERE a.x = b.x")
        assert planned.schema.column_names() == ["x", "z"]

    def test_unknown_star_qualifier(self, db):
        with pytest.raises(ExecutionError):
            plan(db, "SELECT ghost.* FROM a")

    def test_aggregate_detection(self, db):
        planned = plan(db, "SELECT sum(x) FROM a")
        assert any(isinstance(op, GroupAggregate)
                   for op in operators_in(planned.root))

    def test_plain_select_uses_project(self, db):
        planned = plan(db, "SELECT x + 1 FROM a")
        operators = operators_in(planned.root)
        assert has_projection(operators)
        assert not any(isinstance(op, GroupAggregate) for op in operators)

    def test_column_naming(self, db):
        planned = plan(db, "SELECT x, x AS renamed, x + 1, count(*) "
                           "FROM a GROUP BY x")
        assert planned.schema.column_names() == [
            "x", "renamed", "column3", "count"]

    def test_derive_column_name(self):
        assert derive_column_name(parse_expression("foo"), 0) == "foo"
        assert derive_column_name(parse_expression("sum(x)"), 1) == "sum"
        assert derive_column_name(parse_expression("1 + 2"), 2) == "column3"


class TestOrderByPlanning:
    def test_sort_on_projected_column(self, db):
        planned = plan(db, "SELECT x FROM a ORDER BY x")
        operators = operators_in(planned.root)
        assert any(isinstance(op, Sort) for op in operators)
        # no hidden column needed
        assert not any(isinstance(op, StripColumns) for op in operators)

    def test_hidden_sort_column_added_and_stripped(self, db):
        planned = plan(db, "SELECT s FROM a ORDER BY y DESC")
        operators = operators_in(planned.root)
        assert any(isinstance(op, StripColumns) for op in operators)
        assert planned.schema.column_names() == ["s"]
        assert [row for row, _lin in planned.root] == [("q",), ("p",)]

    def test_order_by_alias(self, db):
        planned = plan(db, "SELECT y AS v FROM a ORDER BY v DESC")
        assert [row for row, _lin in planned.root] == [(2.5,), (1.5,)]

    def test_order_by_position(self, db):
        planned = plan(db, "SELECT s, y FROM a ORDER BY 2 DESC")
        assert [row[0] for row, _lin in planned.root] == ["q", "p"]


class TestVectorizedPlanning:
    def test_scan_filter_project_fuses_into_one_operator(self, db):
        planned = plan(db, "SELECT x + 1 FROM a WHERE x > 1 AND y < 9")
        fused = [op for op in operators_in(planned.root)
                 if isinstance(op, FusedScanFilterProject)]
        assert len(fused) == 1
        assert len(fused[0].predicates) == 2
        assert fused[0].projections is not None
        assert [row for row, _lin in planned.root] == [(3,)]

    def test_row_mode_emits_classic_operators(self, db):
        with row_at_a_time_plans():
            planned = plan(db, "SELECT x + 1 FROM a WHERE x > 1 ORDER BY 1")
        kinds = [type(op) for op in operators_in(planned.root)]
        assert Sort in kinds
        assert Project in kinds
        assert Filter in kinds
        assert SeqScan in kinds

    def test_build_side_prefers_smaller_table(self, db):
        # a has 2 rows, b has 2; add rows so b is strictly larger
        db.execute("INSERT INTO b VALUES (5, 'five'), (6, 'six')")
        planned = plan(db, "SELECT 1 FROM b, a WHERE a.x = b.x")
        join = next(op for op in operators_in(planned.root)
                    if isinstance(op, HashJoin))
        sides = {"left": join.left, "right": join.right}
        built = sides[join.build_side]
        scans = [op for op in operators_in(built)
                 if isinstance(op, SeqScan)]
        assert scans and scans[0].table.name == "a"

    def test_left_join_always_builds_right(self, db):
        planned = plan(
            db, "SELECT 1 FROM b LEFT JOIN a ON a.x = b.x")
        join = next(op for op in operators_in(planned.root)
                    if isinstance(op, HashJoin))
        assert join.build_side == "right"

    def test_in_list_uses_hash_index(self, db):
        db.execute("CREATE INDEX a_x ON a (x)")
        planned = plan(db, "SELECT y FROM a WHERE x IN (1, 2, 7)")
        scans = [op for op in operators_in(planned.root)
                 if isinstance(op, IndexScan)]
        assert len(scans) == 1
        assert len(scans[0].value_expressions) == 3
        assert sorted(row[0] for row, _lin in planned.root) == [1.5, 2.5]

    def test_negated_in_list_does_not_use_index(self, db):
        db.execute("CREATE INDEX a_x ON a (x)")
        planned = plan(db, "SELECT y FROM a WHERE x NOT IN (1, 2)")
        assert not any(isinstance(op, IndexScan)
                       for op in operators_in(planned.root))


class TestTypeInference:
    @pytest.fixture
    def schema(self, db):
        return plan(db, "SELECT * FROM a").schema

    @pytest.mark.parametrize("text,expected", [
        ("1", SQLType.INTEGER),
        ("1.5", SQLType.FLOAT),
        ("'x'", SQLType.TEXT),
        ("TRUE", SQLType.BOOLEAN),
        ("x", SQLType.INTEGER),
        ("y", SQLType.FLOAT),
        ("x + 1", SQLType.INTEGER),
        ("x + y", SQLType.FLOAT),
        ("x / 2", SQLType.INTEGER),
        ("x > 1", SQLType.BOOLEAN),
        ("x BETWEEN 1 AND 2", SQLType.BOOLEAN),
        ("s LIKE 'a%'", SQLType.BOOLEAN),
        ("s || 'x'", SQLType.TEXT),
        ("count(*)", SQLType.INTEGER),
        ("avg(x)", SQLType.FLOAT),
        ("sum(y)", SQLType.FLOAT),
        ("min(s)", SQLType.TEXT),
        ("length(s)", SQLType.INTEGER),
        ("upper(s)", SQLType.TEXT),
        ("coalesce(y, 0)", SQLType.FLOAT),
        ("-x", SQLType.INTEGER),
        ("NOT TRUE", SQLType.BOOLEAN),
        ("CASE WHEN x > 1 THEN 'a' ELSE 'b' END", SQLType.TEXT),
    ])
    def test_infer(self, schema, text, expected):
        assert infer_type(parse_expression(text), schema) is expected

    def test_unknown_column_defaults_to_text(self, schema):
        assert infer_type(parse_expression("ghost"),
                          schema) is SQLType.TEXT

    def test_result_schema_types_flow_to_csv(self, db):
        """Types drive result-set serialization round trips."""
        planned = plan(db, "SELECT x + 1, y * 2, s FROM a")
        assert planned.schema.types() == [
            SQLType.INTEGER, SQLType.FLOAT, SQLType.TEXT]
