"""Parser tests: statements and the expression grammar."""

import pytest

from repro.db.sql import ast
from repro.db.sql.parser import parse_expression, parse_one, parse_sql
from repro.errors import SQLSyntaxError


class TestSelect:
    def test_simple_select(self):
        stmt = parse_one("SELECT a, b FROM t")
        assert isinstance(stmt, ast.Select)
        assert [item.expression for item in stmt.items] == [
            ast.ColumnRef("a"), ast.ColumnRef("b")]
        assert stmt.sources == (ast.TableRef("t"),)

    def test_select_star(self):
        stmt = parse_one("SELECT * FROM t")
        assert isinstance(stmt.items[0].expression, ast.Star)

    def test_select_qualified_star(self):
        stmt = parse_one("SELECT t.* FROM t")
        assert stmt.items[0].expression == ast.Star(qualifier="t")

    def test_alias_with_as(self):
        stmt = parse_one("SELECT a AS x FROM t")
        assert stmt.items[0].alias == "x"

    def test_alias_without_as(self):
        stmt = parse_one("SELECT a x FROM t")
        assert stmt.items[0].alias == "x"

    def test_table_alias(self):
        stmt = parse_one("SELECT l.a FROM lineitem l")
        assert stmt.sources[0] == ast.TableRef("lineitem", "l")

    def test_comma_join_sources(self):
        stmt = parse_one("SELECT 1 FROM a, b, c")
        assert len(stmt.sources) == 3

    def test_explicit_join(self):
        stmt = parse_one("SELECT 1 FROM a JOIN b ON a.x = b.x")
        join = stmt.sources[0]
        assert isinstance(join, ast.Join)
        assert join.kind == "inner"

    def test_left_join(self):
        stmt = parse_one("SELECT 1 FROM a LEFT JOIN b ON a.x = b.x")
        assert stmt.sources[0].kind == "left"

    def test_cross_join(self):
        stmt = parse_one("SELECT 1 FROM a CROSS JOIN b")
        assert stmt.sources[0].kind == "cross"
        assert stmt.sources[0].condition is None

    def test_where_group_having_order_limit(self):
        stmt = parse_one(
            "SELECT a, count(*) FROM t WHERE b > 1 GROUP BY a "
            "HAVING count(*) > 2 ORDER BY a DESC LIMIT 5 OFFSET 2")
        assert stmt.where is not None
        assert stmt.group_by == (ast.ColumnRef("a"),)
        assert stmt.having is not None
        assert stmt.order_by[0].descending is True
        assert stmt.limit == 5
        assert stmt.offset == 2

    def test_distinct(self):
        assert parse_one("SELECT DISTINCT a FROM t").distinct

    def test_provenance_keyword(self):
        stmt = parse_one("SELECT PROVENANCE a FROM t")
        assert stmt.provenance is True

    def test_provenance_with_distinct(self):
        stmt = parse_one("SELECT PROVENANCE DISTINCT a FROM t")
        assert stmt.provenance and stmt.distinct

    def test_select_without_from(self):
        stmt = parse_one("SELECT 1 + 2")
        assert stmt.sources == ()


class TestDML:
    def test_insert_values(self):
        stmt = parse_one("INSERT INTO t VALUES (1, 'x'), (2, 'y')")
        assert isinstance(stmt, ast.Insert)
        assert len(stmt.rows) == 2
        assert stmt.rows[0][1] == ast.Literal("x")

    def test_insert_with_columns(self):
        stmt = parse_one("INSERT INTO t (a, b) VALUES (1, 2)")
        assert stmt.columns == ("a", "b")

    def test_insert_select(self):
        stmt = parse_one("INSERT INTO t SELECT a FROM s WHERE a > 0")
        assert stmt.query is not None
        assert stmt.rows == ()

    def test_update(self):
        stmt = parse_one("UPDATE t SET a = a + 1, b = 'z' WHERE id = 3")
        assert isinstance(stmt, ast.Update)
        assert stmt.assignments[0][0] == "a"
        assert stmt.where is not None

    def test_update_without_where(self):
        assert parse_one("UPDATE t SET a = 1").where is None

    def test_delete(self):
        stmt = parse_one("DELETE FROM t WHERE id = 1")
        assert isinstance(stmt, ast.Delete)

    def test_delete_all(self):
        assert parse_one("DELETE FROM t").where is None


class TestDDLAndCopy:
    def test_create_table(self):
        stmt = parse_one(
            "CREATE TABLE t (id integer PRIMARY KEY, name varchar(25) "
            "NOT NULL, price decimal(15,2))")
        assert isinstance(stmt, ast.CreateTable)
        assert stmt.columns[0].primary_key
        assert stmt.columns[1].not_null
        assert stmt.columns[2].type_name == "decimal"

    def test_create_if_not_exists(self):
        stmt = parse_one("CREATE TABLE IF NOT EXISTS t (a integer)")
        assert stmt.if_not_exists

    def test_multi_word_type(self):
        stmt = parse_one("CREATE TABLE t (x double precision)")
        assert stmt.columns[0].type_name == "double precision"

    def test_drop_table(self):
        stmt = parse_one("DROP TABLE IF EXISTS t")
        assert isinstance(stmt, ast.DropTable)
        assert stmt.if_exists

    def test_copy_from(self):
        stmt = parse_one("COPY t FROM '/data/t.csv' WITH CSV HEADER")
        assert isinstance(stmt, ast.CopyFrom)
        assert stmt.path == "/data/t.csv"
        assert stmt.header

    def test_copy_to_with_delimiter(self):
        stmt = parse_one("COPY t TO '/x.csv' DELIMITER '|'")
        assert isinstance(stmt, ast.CopyTo)
        assert stmt.delimiter == "|"

    def test_transactions(self):
        assert isinstance(parse_one("BEGIN"), ast.Begin)
        assert isinstance(parse_one("COMMIT"), ast.Commit)
        assert isinstance(parse_one("ROLLBACK"), ast.Rollback)


class TestExpressions:
    def test_precedence_arithmetic(self):
        expr = parse_expression("1 + 2 * 3")
        assert expr == ast.BinaryOp(
            "+", ast.Literal(1),
            ast.BinaryOp("*", ast.Literal(2), ast.Literal(3)))

    def test_precedence_and_or(self):
        expr = parse_expression("a OR b AND c")
        assert isinstance(expr, ast.BinaryOp) and expr.op == "or"
        assert expr.right.op == "and"

    def test_not_binds_tighter_than_and(self):
        expr = parse_expression("NOT a AND b")
        assert expr.op == "and"
        assert isinstance(expr.left, ast.UnaryOp)

    def test_parentheses_override(self):
        expr = parse_expression("(1 + 2) * 3")
        assert expr.op == "*"

    def test_between(self):
        expr = parse_expression("x BETWEEN 1 AND 10")
        assert expr == ast.Between(
            ast.ColumnRef("x"), ast.Literal(1), ast.Literal(10))

    def test_not_between(self):
        assert parse_expression("x NOT BETWEEN 1 AND 2").negated

    def test_between_and_boolean_and(self):
        expr = parse_expression("x BETWEEN 1 AND 2 AND y = 3")
        assert expr.op == "and"
        assert isinstance(expr.left, ast.Between)

    def test_like(self):
        expr = parse_expression("name LIKE '%abc%'")
        assert isinstance(expr, ast.Like)

    def test_not_like(self):
        assert parse_expression("name NOT LIKE 'x'").negated

    def test_in_list(self):
        expr = parse_expression("x IN (1, 2, 3)")
        assert isinstance(expr, ast.InList)
        assert len(expr.items) == 3

    def test_is_null_and_is_not_null(self):
        assert not parse_expression("x IS NULL").negated
        assert parse_expression("x IS NOT NULL").negated

    def test_unary_minus(self):
        expr = parse_expression("-x + 1")
        assert expr.op == "+"
        assert isinstance(expr.left, ast.UnaryOp)

    def test_function_call(self):
        expr = parse_expression("sum(price * qty)")
        assert isinstance(expr, ast.FunctionCall)
        assert expr.name == "sum"

    def test_count_star(self):
        expr = parse_expression("COUNT(*)")
        assert expr.args == (ast.Star(),)

    def test_count_distinct(self):
        assert parse_expression("count(DISTINCT a)").distinct

    def test_case_when(self):
        expr = parse_expression(
            "CASE WHEN a > 1 THEN 'big' ELSE 'small' END")
        assert isinstance(expr, ast.CaseWhen)
        assert expr.otherwise == ast.Literal("small")

    def test_qualified_column(self):
        assert parse_expression("t.a") == ast.ColumnRef("a", "t")

    def test_string_concat(self):
        assert parse_expression("a || b").op == "||"


class TestErrors:
    @pytest.mark.parametrize("sql", [
        "SELECT FROM t",
        "SELECT a FROM",
        "INSERT t VALUES (1)",
        "UPDATE t a = 1",
        "CREATE TABLE t",
        "COPY t '/x'",
        "SELECT a FROM t WHERE",
        "FROB x",
    ])
    def test_malformed_statement_raises(self, sql):
        with pytest.raises(SQLSyntaxError):
            parse_sql(sql)

    def test_trailing_garbage_in_expression(self):
        with pytest.raises(SQLSyntaxError):
            parse_expression("1 + 2 extra")

    def test_parse_one_rejects_multiple(self):
        with pytest.raises(SQLSyntaxError):
            parse_one("SELECT 1; SELECT 2")

    def test_multiple_statements_with_semicolons(self):
        statements = parse_sql("SELECT 1; SELECT 2;")
        assert len(statements) == 2
