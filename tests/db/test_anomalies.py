"""Transaction-anomaly matrix under snapshot isolation.

Each classic anomaly is exercised through the wire by the deterministic
interleaving scheduler, under at least three distinct hand-named
schedules plus an exhaustive/seeded exploration. Exact SI semantics:

* dirty read        — forbidden (uncommitted writes are private)
* non-repeatable read — forbidden (statements read the BEGIN snapshot)
* lost update       — forbidden (first committer wins; loser aborts)
* write skew        — **permitted**: SI validates write-write overlap
  only, so two transactions reading a shared invariant and writing
  disjoint rows both commit. Serializability would need SSI-style
  read-set tracking, which this engine deliberately does not do; the
  write-skew tests document the anomaly instead of hiding it.

No statement here ever sleeps: schedules, not timing, decide every
interleaving, so each case is exactly reproducible.
"""

import pytest

from repro.db import Database, InterleavingScheduler

pytestmark = pytest.mark.concurrency


def bank(rows="(1, 100), (2, 100)"):
    def setup():
        database = Database()
        database.execute(
            "CREATE TABLE accounts (id integer PRIMARY KEY, "
            "balance integer)")
        database.execute(f"INSERT INTO accounts VALUES {rows}")
        return database
    return setup


class TestDirtyRead:
    """b must never observe a's uncommitted (later rolled back) write."""

    def scripts(self):
        def a():
            yield "BEGIN"
            yield "UPDATE accounts SET balance = 999 WHERE id = 1"
            yield "ROLLBACK"

        def b():
            step = yield "SELECT balance FROM accounts WHERE id = 1"
            return step.rows[0][0]

        return {"a": a, "b": b}

    @pytest.mark.parametrize("schedule", [
        "a a b a",   # read while the dirty write is pending
        "a b a a",   # read between BEGIN and the write
        "a a a b",   # read after the rollback
        "b a a a",   # read before the transaction starts
    ])
    def test_never_observed(self, schedule):
        scheduler = InterleavingScheduler(bank(), self.scripts())
        outcome = scheduler.run(schedule)
        assert outcome.value("b") == 100
        assert outcome.errors() == []
        assert outcome.query("SELECT balance FROM accounts WHERE id = 1"
                             ) == [(100,)]

    def test_never_observed_in_any_interleaving(self):
        scheduler = InterleavingScheduler(bank(), self.scripts())
        outcomes = scheduler.explore()
        assert len(outcomes) == 4  # C(4,1) placements of b's read
        assert {o.value("b") for o in outcomes} == {100}


class TestNonRepeatableRead:
    """Both of a's reads must return the BEGIN-snapshot value even when
    b commits an update between them."""

    def scripts(self):
        def a():
            yield "BEGIN"
            first = yield "SELECT balance FROM accounts WHERE id = 1"
            second = yield "SELECT balance FROM accounts WHERE id = 1"
            yield "COMMIT"
            return (first.rows[0][0], second.rows[0][0])

        def b():
            yield "UPDATE accounts SET balance = 250 WHERE id = 1"

        return {"a": a, "b": b}

    @pytest.mark.parametrize("schedule", [
        "a a b a a",   # update lands between the two reads
        "a b a a a",   # update lands before the first read
        "b a a a a",   # update commits before BEGIN: both reads see it
        "a a a b a",   # update lands after both reads
    ])
    def test_reads_are_repeatable(self, schedule):
        scheduler = InterleavingScheduler(bank(), self.scripts())
        outcome = scheduler.run(schedule)
        first, second = outcome.value("a")
        assert first == second, "read changed inside one transaction"
        # which value both reads saw depends only on commit-before-BEGIN
        expected = 250 if schedule.startswith("b") else 100
        assert first == expected
        assert outcome.errors() == []

    def test_repeatable_in_any_interleaving(self):
        scheduler = InterleavingScheduler(bank(), self.scripts())
        for outcome in scheduler.explore():
            first, second = outcome.value("a")
            assert first == second, outcome.schedule


class TestLostUpdate:
    """Two read-modify-write transactions on the same row: first
    committer wins, the loser aborts with a WriteConflictError, and no
    increment is ever silently overwritten."""

    def scripts(self):
        def deposit(amount):
            def script():
                yield "BEGIN"
                step = yield "SELECT balance FROM accounts WHERE id = 1"
                balance = step.rows[0][0]
                step = yield (f"UPDATE accounts SET balance = "
                              f"{balance + amount} WHERE id = 1")
                if step.error is not None:
                    return "conflicted"
                step = yield "COMMIT"
                return "conflicted" if step.error is not None else "committed"
            return script

        return {"a": deposit(10), "b": deposit(25)}

    @pytest.mark.parametrize("schedule,expected", [
        # fully overlapped: both read 100, first committer wins at COMMIT
        ("a a b b a b a b", {100 + 10, 100 + 25}),
        # b reads inside a's window, hits the conflict eagerly at UPDATE
        ("a a a b b a b", {100 + 10, 100 + 25}),
        # serial execution: no conflict, both commit
        ("a a a a b b b b", {100 + 10 + 25}),
        ("b b b b a a a a", {100 + 10 + 25}),
    ])
    def test_no_update_is_lost(self, schedule, expected):
        scheduler = InterleavingScheduler(bank(), self.scripts())
        outcome = scheduler.run(schedule)
        [(balance,)] = outcome.query(
            "SELECT balance FROM accounts WHERE id = 1")
        assert balance in expected
        values = {outcome.value("a"), outcome.value("b")}
        if balance == 100 + 10 + 25:
            assert values == {"committed"}
        else:
            assert values == {"committed", "conflicted"}
            errors = [type(e).__name__ for _, _, e in outcome.errors()]
            assert errors == ["WriteConflictError"]

    def test_never_lost_in_any_interleaving(self):
        scheduler = InterleavingScheduler(bank(), self.scripts())
        for outcome in scheduler.explore():
            [(balance,)] = outcome.query(
                "SELECT balance FROM accounts WHERE id = 1")
            assert balance != 100, f"lost update under {outcome.schedule}"
            committed = [n for n in "ab"
                         if outcome.value(n) == "committed"]
            expected = 100 + sum({"a": 10, "b": 25}[n] for n in committed)
            assert balance == expected, outcome.schedule

    def test_conflicted_transaction_retries_to_success(self):
        """A script-level retry loop (fresh BEGIN, fresh snapshot)
        recovers the conflicted deposit — both increments land."""
        def deposit(amount):
            def script():
                for _ in range(2):  # at most one retry needed here
                    yield "BEGIN"
                    step = yield ("SELECT balance FROM accounts "
                                  "WHERE id = 1")
                    balance = step.rows[0][0]
                    step = yield (f"UPDATE accounts SET balance = "
                                  f"{balance + amount} WHERE id = 1")
                    if step.error is not None:
                        continue
                    step = yield "COMMIT"
                    if step.error is None:
                        return "committed"
                return "gave up"
            return script

        scheduler = InterleavingScheduler(
            bank(), {"a": deposit(10), "b": deposit(25)})
        # overlapped start; b loses at COMMIT, then retries and wins
        outcome = scheduler.run("a a b b a a b b b b b")
        assert outcome.value("a") == "committed"
        assert outcome.value("b") == "committed"
        assert outcome.query("SELECT balance FROM accounts WHERE id = 1"
                             ) == [(135,)]


class TestWriteSkew:
    """The SI-permitted anomaly: both transactions check the invariant
    ``sum(balance) >= 100`` against their snapshots, write *different*
    rows, and both commit — leaving the invariant broken. Documented
    behavior, not a bug: write-sets are disjoint, so first-committer-
    wins has nothing to object to."""

    def scripts(self):
        def withdraw(account_id):
            def script():
                yield "BEGIN"
                step = yield "SELECT sum(balance) FROM accounts"
                total = step.rows[0][0]
                if total - 100 < 100:
                    yield "ROLLBACK"
                    return "refused"
                step = yield (f"UPDATE accounts SET balance = 0 "
                              f"WHERE id = {account_id}")
                step = yield "COMMIT"
                return "conflicted" if step.error is not None else "committed"
            return script

        return {"a": withdraw(1), "b": withdraw(2)}

    @pytest.mark.parametrize("schedule", [
        "a a b b a b a b",   # fully interleaved
        "a b a b a b a b",   # lock-step
        "a a a b b b a b",   # a writes before b reads
    ])
    def test_both_commit_and_invariant_breaks(self, schedule):
        scheduler = InterleavingScheduler(bank(), self.scripts())
        outcome = scheduler.run(schedule)
        assert outcome.value("a") == "committed"
        assert outcome.value("b") == "committed"
        assert outcome.errors() == []
        # the application invariant is gone: that *is* write skew
        assert outcome.query("SELECT sum(balance) FROM accounts"
                             ) == [(0,)]

    @pytest.mark.parametrize("schedule", [
        "a a a a b b b",     # serial: b sees a's commit and refuses
        "b b b b a a a",
    ])
    def test_serial_execution_preserves_the_invariant(self, schedule):
        scheduler = InterleavingScheduler(bank(), self.scripts())
        outcome = scheduler.run(schedule)
        assert sorted([outcome.value("a"), outcome.value("b")]) == \
            ["committed", "refused"]
        assert outcome.query("SELECT sum(balance) FROM accounts"
                             ) == [(100,)]

    def test_materializing_the_conflict_restores_safety(self):
        """The textbook fix: touch a shared row so the write-sets
        overlap, turning the skew into a first-committer-wins conflict
        the loser can observe."""
        def withdraw(account_id):
            def script():
                yield "BEGIN"
                step = yield "SELECT sum(balance) FROM accounts"
                total = step.rows[0][0]
                if total - 100 < 100:
                    yield "ROLLBACK"
                    return "refused"
                # materialize: every withdrawal also writes the shared
                # ledger row, forcing SI to serialize the pair
                step = yield ("UPDATE ledger SET withdrawals = "
                              "withdrawals + 1 WHERE id = 1")
                if step.error is not None:
                    return "conflicted"
                step = yield (f"UPDATE accounts SET balance = 0 "
                              f"WHERE id = {account_id}")
                step = yield "COMMIT"
                return "conflicted" if step.error is not None else "committed"
            return script

        def setup():
            database = bank()()
            database.execute(
                "CREATE TABLE ledger (id integer PRIMARY KEY, "
                "withdrawals integer)")
            database.execute("INSERT INTO ledger VALUES (1, 0)")
            return database

        scheduler = InterleavingScheduler(
            setup, {"a": withdraw(1), "b": withdraw(2)})
        for outcome in scheduler.explore(limit=40, seed=11):
            [(total,)] = outcome.query("SELECT sum(balance) FROM accounts")
            assert total >= 100, (
                f"invariant broken under {outcome.schedule} despite "
                f"materialized conflict")
