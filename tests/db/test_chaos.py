"""Chaos-hardened serving: exactly-once retries, admission control,
graceful drain, connection reaping, group-commit aborts, and the
seeded randomized fault-campaign harness.

Campaign tests are marked ``chaos``; every campaign failure message
(and the parametrized test id) carries the seed, so a red CI run is
reproducible with ``run_campaign(seed, ...)`` locally.
"""

import os

import pytest

from repro.db import Database, DBClient, DBServer, RetryPolicy
from repro.db import parallel
from repro.db import protocol
from repro.db.chaos import (
    CampaignSpec,
    FakeClock,
    expected_state,
    generate_workload,
    run_campaign,
    tree_bytes,
)
from repro.db.server import AdmissionControl
from repro.errors import (
    GroupCommitError,
    OverloadedError,
    ServerDrainingError,
    TransientError,
    WorkerCrashError,
)
from repro.faults import FaultInjector, FaultyIO


def make_server(**kwargs):
    database = Database()
    database.execute("CREATE TABLE t (x integer, y integer)")
    return DBServer(database, **kwargs)


def make_client(server_or_transport, **kwargs):
    transport = (server_or_transport.transport()
                 if isinstance(server_or_transport, DBServer)
                 else server_or_transport)
    kwargs.setdefault("retry_policy",
                      RetryPolicy(max_attempts=5, base_delay=0.01,
                                  sleep=lambda _: None))
    client = DBClient(transport, "app", "p1", **kwargs)
    client.connect()
    return client


def lossy_transport(server, should_drop):
    """A transport that *executes* each request but loses the response
    of every frame ``should_drop`` matches — the ambiguous-outcome
    failure (work done, acknowledgement gone) that makes naive retries
    double-apply."""
    real = server.transport()

    def transport(request_text):
        frame = protocol.decode_frame(request_text)
        response = real(request_text)
        if should_drop(frame):
            raise TransientError("response frame lost")
        return response

    return transport


def drop_once(predicate):
    """Wrap ``predicate`` so it only fires on its first match."""
    armed = {"live": True}

    def should_drop(frame):
        if armed["live"] and predicate(frame):
            armed["live"] = False
            return True
        return False

    return should_drop


class TestExactlyOnceRetries:
    """A retried mutation whose original response was lost must return
    the recorded result, not re-execute — on every execution path."""

    def test_lost_text_response_applies_once(self):
        server = make_server()
        drop = drop_once(lambda f: f.get("frame") == "query"
                         and "INSERT" in f.get("sql", ""))
        client = make_client(lossy_transport(server, drop))
        client.execute("INSERT INTO t VALUES (1, 10)")
        assert client.query("SELECT x FROM t") == [(1,)]
        assert server.database.dedupe_ledger.hits == 1

    def test_without_tokens_the_same_loss_double_applies(self):
        # the failure mode idempotency tokens exist to remove
        server = make_server()
        drop = drop_once(lambda f: f.get("frame") == "query"
                         and "INSERT" in f.get("sql", ""))
        client = make_client(lossy_transport(server, drop),
                             idempotency_tokens=False)
        client.execute("INSERT INTO t VALUES (1, 10)")
        assert client.query("SELECT x FROM t") == [(1,), (1,)]

    def test_lost_prepared_response_applies_once(self):
        server = make_server()
        drop = drop_once(lambda f: f.get("frame") == "bind-execute")
        client = make_client(lossy_transport(server, drop))
        prepared = client.prepare("INSERT INTO t VALUES ($1, $2)")
        prepared.execute((7, 70))
        assert client.query("SELECT x FROM t") == [(7,)]
        assert server.database.dedupe_ledger.hits == 1

    def test_lost_pipeline_response_applies_each_once(self):
        server = make_server()
        drop = drop_once(lambda f: f.get("frame") == "pipeline")
        client = make_client(lossy_transport(server, drop))
        with client.pipeline() as batch:
            first = batch.execute("INSERT INTO t VALUES (1, 10)")
            second = batch.execute("INSERT INTO t VALUES (2, 20)")
        assert first.result().rowcount == 1
        assert second.result().rowcount == 1
        assert client.query("SELECT x FROM t ORDER BY x") == [(1,), (2,)]
        assert server.database.dedupe_ledger.hits == 2

    def test_lost_stream_open_does_not_leak_a_cursor(self):
        server = make_server()
        for value in range(6):
            server.database.execute(
                f"INSERT INTO t VALUES ({value}, {value * 10})")
        drop = drop_once(lambda f: f.get("frame") == "query"
                         and f.get("fetch") is not None)
        client = make_client(lossy_transport(server, drop))
        cursor = client.execute_stream("SELECT x FROM t ORDER BY x",
                                       fetch_size=2)
        assert cursor.fetch_all() == [(x,) for x in range(6)]
        # the retried open replayed the original cursor frame instead
        # of opening a second cursor whose snapshot would pin MVCC
        # history forever
        assert server.server_counters()["open_cursors"] == 0
        assert server.database.mvcc.active_count() == 0

    def test_explicit_tokens_dedupe_across_clients(self):
        # the token, not the connection, is the idempotency key: a
        # failed-over client resending its predecessor's token gets
        # the recorded result
        server = make_server()
        first = make_client(server)
        first.execute("INSERT INTO t VALUES (1, 10)", token="job-42")
        second = make_client(server)
        result = second.execute("INSERT INTO t VALUES (1, 10)",
                                token="job-42")
        assert result.rowcount == 1
        assert second.query("SELECT x FROM t") == [(1,)]

    def test_ledger_survives_crash_recovery(self, tmp_path):
        # the dedupe ledger rides the WAL: a retry that lands on the
        # *restarted* server is still answered from the ledger
        database = Database(data_directory=tmp_path)
        database.execute("CREATE TABLE t (x integer)")
        server = DBServer(database)
        client = make_client(server)
        client.execute("INSERT INTO t VALUES (1)", token="epoch-1")
        server.shutdown()

        revived = DBServer(Database(data_directory=tmp_path))
        survivor = make_client(revived)
        result = survivor.execute("INSERT INTO t VALUES (1)",
                                  token="epoch-1")
        assert result.rowcount == 1
        assert survivor.query("SELECT x FROM t") == [(1,)]
        assert revived.database.dedupe_ledger.hits == 1

    def test_selects_are_not_tokenized(self):
        # read-only statements skip the ledger: they are naturally
        # idempotent, and ledger entries would evict mutation results
        server = make_server()
        client = make_client(server)
        client.query("SELECT x FROM t")
        client.query("SELECT x FROM t")
        assert server.database.dedupe_ledger.stores == 0


class TestAdmissionControl:
    def make_loaded_server(self, capacity, refill):
        clock = FakeClock()
        admission = AdmissionControl(capacity=capacity,
                                     refill_per_second=refill,
                                     timer=clock.read)
        database = Database()
        database.execute("CREATE TABLE t (x integer)")
        return DBServer(database, admission=admission), admission, clock

    def test_dry_bucket_sheds_with_retry_after_hint(self):
        server, admission, _ = self.make_loaded_server(2, 1.0)
        client = make_client(server, retry_policy=None)
        client.query("SELECT x FROM t")
        client.query("SELECT x FROM t")
        with pytest.raises(OverloadedError) as info:
            client.query("SELECT x FROM t")
        assert info.value.retry_after > 0
        assert admission.shed == 1

    def test_shed_happens_before_any_execution(self):
        server, _, _ = self.make_loaded_server(1, 0.0)
        client = make_client(server, retry_policy=None)
        client.query("SELECT x FROM t")
        with pytest.raises(OverloadedError):
            client.execute("INSERT INTO t VALUES (1)")
        # the shed insert never ran — nothing to double-apply later
        assert server.database.query("SELECT x FROM t") == []

    def test_client_backoff_waits_out_the_hint(self):
        server, admission, clock = self.make_loaded_server(1, 10.0)
        policy = RetryPolicy(max_attempts=6, base_delay=0.001,
                             sleep=clock.advance)
        client = make_client(server, retry_policy=policy)
        client.query("SELECT x FROM t")
        # bucket is dry; the retry sleeps through the hint on the
        # shared clock, after which the refilled bucket admits it
        assert client.query("SELECT x FROM t") == []
        assert admission.shed >= 1
        assert client.retries_performed >= 1

    def test_retry_after_floors_the_backoff_delay(self):
        delays = []
        policy = RetryPolicy(max_attempts=3, base_delay=0.001,
                             sleep=delays.append)
        server, _, _ = self.make_loaded_server(1, 2.0)
        client = make_client(server, retry_policy=policy)
        client.query("SELECT x FROM t")
        # the recorded sleeps never advance the admission clock, so
        # the retries stay shed — what matters is each backoff was
        # floored by the server's ~0.5s hint, not the 1ms base delay
        with pytest.raises(OverloadedError):
            client.query("SELECT x FROM t")
        assert delays and min(delays) >= 0.4

    def test_pipeline_envelope_is_one_admission_unit(self):
        server, admission, _ = self.make_loaded_server(4, 0.0)
        client = make_client(server)
        with client.pipeline() as batch:
            handles = [batch.execute(f"INSERT INTO t VALUES ({n})")
                       for n in range(3)]
        assert all(handle.result().rowcount == 1 for handle in handles)
        # charged once (by depth), inner frames exempt: a mid-batch
        # shed would leave a partially-executed, unretryable envelope
        assert admission.admitted == 1
        assert admission.shed == 0


class TestGracefulDrain:
    def test_drain_rejects_new_statements(self):
        server = make_server()
        client = make_client(server, retry_policy=None)
        server.drain()
        with pytest.raises(ServerDrainingError) as info:
            client.execute("INSERT INTO t VALUES (1)")
        assert info.value.retry_after > 0
        assert server.server_counters()["drain_rejections"] == 1

    def test_drain_rejects_new_connections(self):
        server = make_server()
        server.drain()
        with pytest.raises(ServerDrainingError):
            DBClient(server.transport()).connect()

    def test_in_flight_transaction_finishes_during_drain(self):
        server = make_server()
        client = make_client(server, retry_policy=None)
        client.execute("BEGIN")
        client.execute("INSERT INTO t VALUES (1, 10)")
        server.drain()
        assert not server.drained  # the open transaction is in flight
        client.execute("INSERT INTO t VALUES (2, 20)")
        client.execute("COMMIT")
        assert server.drained
        assert server.database.query("SELECT x FROM t ORDER BY x") \
            == [(1,), (2,)]

    def test_open_cursor_drains_before_drained(self):
        server = make_server()
        for value in range(4):
            server.database.execute(
                f"INSERT INTO t VALUES ({value}, 0)")
        client = make_client(server, retry_policy=None)
        cursor = client.execute_stream("SELECT x FROM t", fetch_size=2)
        server.drain()
        assert not server.drained
        assert len(cursor.fetch_all()) == 4
        assert server.drained

    def test_undrain_restores_service(self):
        server = make_server()
        client = make_client(server, retry_policy=None)
        server.drain()
        with pytest.raises(ServerDrainingError):
            client.execute("INSERT INTO t VALUES (1, 10)")
        server.undrain()
        assert client.execute("INSERT INTO t VALUES (1, 10)").rowcount == 1


class TestParallelAdmission:
    """Parallel statements occupy N workers, so the token bucket
    charges them N tokens (clamped to capacity): wide parallel queries
    drain the budget proportionally and cannot starve point queries
    for free."""

    def make_parallel_server(self, capacity, workers):
        admission = AdmissionControl(capacity=capacity,
                                     refill_per_second=0.0,
                                     timer=FakeClock().read)
        database = Database()
        database.execute("CREATE TABLE t (x integer, y integer)")
        database.execute("INSERT INTO t VALUES " + ", ".join(
            f"({i}, {i})" for i in range(40)))
        if workers > 1:
            database.set_parallel_workers(
                workers, pool_factory=parallel.InProcessPool,
                min_rows=0)
        return DBServer(database, admission=admission), admission

    def test_parallel_statement_charged_by_worker_count(self):
        server, admission = self.make_parallel_server(8, 4)
        client = make_client(server, retry_policy=None)
        client.query("SELECT x FROM t")  # 4 tokens
        client.query("SELECT x FROM t")  # 4 tokens: bucket dry
        with pytest.raises(OverloadedError):
            client.query("SELECT x FROM t")
        assert admission.admitted == 2
        assert admission.shed == 1

    def test_serial_statement_still_costs_one_token(self):
        server, admission = self.make_parallel_server(8, 1)
        client = make_client(server, retry_policy=None)
        for _ in range(8):
            client.query("SELECT x FROM t")
        with pytest.raises(OverloadedError):
            client.query("SELECT x FROM t")
        assert admission.admitted == 8

    def test_worker_charge_clamps_to_capacity(self):
        # more workers than capacity must still admit, like a deep
        # pipeline envelope: the charge clamps to the full bucket
        server, admission = self.make_parallel_server(2, 4)
        client = make_client(server, retry_policy=None)
        assert client.query("SELECT x FROM t WHERE x < 3") == \
            [(0,), (1,), (2,)]
        assert admission.admitted == 1
        assert admission.shed == 0


class _CrashOncePool:
    """Pool whose first dispatch dies like a forked worker crash."""

    def __init__(self):
        self.calls = 0

    def run(self, thunks):
        self.calls += 1
        if self.calls == 1:
            raise WorkerCrashError(
                "parallel worker(s) [0] died before returning results"
                " (injected)")
        return parallel.InProcessPool().run(thunks)


class TestWorkerCrashServing:
    """A worker crash aborts the statement with a *transient* error:
    the client's retry policy re-runs it against the respawned pool,
    and the idempotency ledger keeps concurrent mutation retries
    exactly-once."""

    def make_parallel_world(self):
        database = Database()
        database.execute("CREATE TABLE t (x integer, y integer)")
        database.execute("INSERT INTO t VALUES " + ", ".join(
            f"({i}, {i})" for i in range(60)))
        pool = _CrashOncePool()
        database.set_parallel_workers(
            2, pool_factory=lambda: pool, min_rows=0)
        return DBServer(database), pool

    def test_crashed_query_is_retried_transparently(self):
        server, pool = self.make_parallel_world()
        client = make_client(server)
        assert client.query("SELECT count(*) FROM t") == [(60,)]
        assert pool.calls >= 2  # first dispatch crashed, retry ran
        assert client.retries_performed >= 1
        # reads are naturally idempotent: the ledger stayed out of it
        assert server.database.dedupe_ledger.stores == 0

    def test_crash_retry_leaves_ledger_exactly_once(self):
        # a crashed parallel read and a lost mutation response in the
        # same session: the read re-executes, the mutation replays
        # from the ledger — each applied exactly once
        server, pool = self.make_parallel_world()
        drop = drop_once(lambda f: f.get("frame") == "query"
                         and "INSERT" in f.get("sql", ""))
        client = make_client(lossy_transport(server, drop))
        assert client.query("SELECT count(*) FROM t") == [(60,)]
        assert pool.calls >= 2
        client.execute("INSERT INTO t VALUES (999, 0)")
        assert client.query(
            "SELECT count(*) FROM t WHERE x = 999") == [(1,)]
        assert server.database.dedupe_ledger.hits == 1

    def test_drain_tears_down_residents_and_undrain_respawns(self):
        database = Database()
        database.execute("CREATE TABLE t (x integer, y integer)")
        database.execute("INSERT INTO t VALUES " + ", ".join(
            f"({i}, {i})" for i in range(60)))
        database.set_parallel_workers(2, min_rows=0)
        server = DBServer(database)
        client = make_client(server, retry_policy=None)
        assert client.query("SELECT count(*) FROM t") == [(60,)]
        pids = database.parallel_pool.worker_pids()
        assert len(pids) == 2
        server.drain()
        # the resident workers die with the drain, pids reaped
        assert database.parallel_pool is None
        for pid in pids:
            with pytest.raises(ChildProcessError):
                os.waitpid(pid, os.WNOHANG)
        server.undrain()
        assert database.parallel_pool is not None
        assert client.query("SELECT count(*) FROM t") == [(60,)]

    def test_server_stats_expose_pool_counters(self):
        database = Database()
        database.execute("CREATE TABLE t (x integer, y integer)")
        database.execute("INSERT INTO t VALUES " + ", ".join(
            f"({i}, {i})" for i in range(60)))
        database.set_parallel_workers(2, min_rows=0)
        server = DBServer(database)
        client = make_client(server, retry_policy=None)
        client.query("SELECT count(*) FROM t")
        client.query("SELECT count(*) FROM t WHERE x < 30")
        pool_stats = client.server_stats()["server"]["parallel_pool"]
        assert pool_stats["workers"] == 2
        assert pool_stats["forks"] == 2
        assert pool_stats["reuse_hits"] >= 1
        assert len(pool_stats["resident_pids"]) == 2
        database.close()


class TestConnectionReaping:
    def make_timed_server(self, timeout=10.0):
        clock = FakeClock()
        database = Database()
        database.execute("CREATE TABLE t (x integer)")
        server = DBServer(database, connection_timeout=timeout,
                          timer=clock.read)
        return server, clock

    def test_idle_connection_with_open_txn_is_reaped(self):
        server, clock = self.make_timed_server()
        zombie = make_client(server, retry_policy=None)
        zombie.execute("BEGIN")
        zombie.execute("INSERT INTO t VALUES (1)")
        clock.advance(60.0)
        # any live traffic sweeps the idle peer; its transaction is
        # rolled back so it cannot pin MVCC history
        live = make_client(server, retry_policy=None)
        live.query("SELECT x FROM t")
        counters = server.server_counters()
        assert counters["connections_reaped"] == 1
        assert server.database.mvcc.active_count() == 0
        assert server.database.query("SELECT x FROM t") == []

    def test_idle_connection_with_open_cursor_is_reaped(self):
        server, clock = self.make_timed_server()
        for value in range(6):
            server.database.execute(f"INSERT INTO t VALUES ({value})")
        zombie = make_client(server, retry_policy=None)
        zombie.execute_stream("SELECT x FROM t", fetch_size=2)
        assert server.server_counters()["open_cursors"] == 1
        clock.advance(60.0)
        live = make_client(server, retry_policy=None)
        live.query("SELECT x FROM t")
        assert server.server_counters()["open_cursors"] == 0
        assert server.database.mvcc.active_count() == 0

    def test_active_connection_is_not_reaped(self):
        server, clock = self.make_timed_server()
        client = make_client(server, retry_policy=None)
        for _ in range(5):
            clock.advance(5.0)  # busy: always inside the timeout
            client.query("SELECT x FROM t")
        assert server.server_counters()["connections_reaped"] == 0


class TestGroupCommitAbort:
    def make_faulty_server(self, tmp_path, injector):
        database = Database(data_directory=tmp_path,
                            io=FaultyIO(injector))
        return DBServer(database)

    def test_failed_group_fsync_aborts_every_member(self, tmp_path):
        plain = Database(data_directory=tmp_path)
        plain.execute("CREATE TABLE t (x integer)")
        plain.close()
        # occurrence 1 of wal.fsync is the pipeline's group commit
        injector = FaultInjector().fail_at("wal.fsync", occurrence=1)
        server = self.make_faulty_server(tmp_path, injector)
        client = make_client(server, retry_policy=None)
        with client.pipeline() as batch:
            handles = [batch.execute("INSERT INTO t VALUES (1)"),
                       batch.execute("INSERT INTO t VALUES (2)")]
        # every member aborted together — no half-acknowledged batch
        for handle in handles:
            with pytest.raises(GroupCommitError):
                handle.result()
        assert server.group_aborts == 1
        assert server.database.failed
        fresh = Database(data_directory=tmp_path)
        assert fresh.query("SELECT x FROM t") == []

    @pytest.mark.crash
    def test_retry_after_group_abort_recovery_is_exactly_once(
            self, tmp_path):
        plain = Database(data_directory=tmp_path)
        plain.execute("CREATE TABLE t (x integer)")
        plain.close()
        injector = FaultInjector().fail_at("wal.fsync", occurrence=1)
        server = self.make_faulty_server(tmp_path, injector)
        client = make_client(server, retry_policy=None)
        tokens = ("grp.0", "grp.1")
        with client.pipeline() as batch:
            handles = [batch.execute("INSERT INTO t VALUES (1)",
                                     token=tokens[0]),
                       batch.execute("INSERT INTO t VALUES (2)",
                                     token=tokens[1])]
        for handle in handles:
            with pytest.raises(GroupCommitError):
                handle.result()
        # the poisoned server refuses further work until restarted
        with pytest.raises(GroupCommitError):
            client.query("SELECT x FROM t")

        revived = DBServer(Database(data_directory=tmp_path))
        survivor = make_client(revived)
        with survivor.pipeline() as batch:
            first = batch.execute("INSERT INTO t VALUES (1)",
                                  token=tokens[0])
            second = batch.execute("INSERT INTO t VALUES (2)",
                                   token=tokens[1])
        assert first.result().rowcount == 1
        assert second.result().rowcount == 1
        # the abort truncated the WAL, so the retried tokens execute
        # fresh — once — and the table holds exactly one batch
        assert survivor.query("SELECT x FROM t ORDER BY x") \
            == [(1,), (2,)]


class TestWorkloadDeterminism:
    def test_same_seed_same_workload(self):
        spec = CampaignSpec(seed=11)
        assert generate_workload(spec) == generate_workload(spec)

    def test_different_seeds_differ(self):
        assert generate_workload(CampaignSpec(seed=1)) \
            != generate_workload(CampaignSpec(seed=2))

    def test_expected_state_applies_each_effect_once(self):
        spec = CampaignSpec(seed=3, clients=1, rounds=4)
        state = expected_state(spec)
        replayed = {}
        for steps in generate_workload(spec):
            for step in steps:
                for operation, key, operand in step["effects"]:
                    if operation == "insert":
                        replayed[key] = operand
                    elif operation == "update":
                        replayed[key] += operand
                    else:
                        replayed.pop(key)
        assert state == replayed


@pytest.mark.chaos
class TestFaultCampaigns:
    """Seeded end-to-end campaigns. The seed is in the test id and in
    every failure message — rerun a red seed with
    ``run_campaign(seed, some_dir)``."""

    def test_campaign_holds_all_invariants(self, campaign_seed,
                                           tmp_path):
        report = run_campaign(campaign_seed, tmp_path)
        assert report.steps > 0
        assert report.final_rows == expected_state(
            CampaignSpec(seed=campaign_seed))

    def test_survivor_package_is_byte_identical_to_oracle(self,
                                                          tmp_path):
        # satellite invariant spelled out: the chaos survivor's
        # checkpointed directory IS the fault-free replica of record
        seed = 28  # a seed whose campaign crashes at least once
        report = run_campaign(seed, tmp_path)
        assert report.crashes >= 1
        survivor = tree_bytes(tmp_path / f"survivor-{seed}")
        oracle = tree_bytes(tmp_path / f"oracle-{seed}")
        assert survivor == oracle

    def test_campaigns_are_reproducible(self, tmp_path):
        first = run_campaign(4, tmp_path / "a")
        second = run_campaign(4, tmp_path / "b")
        assert first.final_rows == second.final_rows
        assert first.crashes == second.crashes
        assert first.retries == second.retries


@pytest.mark.chaos
@pytest.mark.parallel
class TestParallelWorkerCrash:
    """A worker process dying mid-parallel-query must fail only that
    statement: every forked pid reaped, no snapshot pins leaked, the
    engine fully serviceable afterwards, and the recovered package
    byte-identical to a twin that never crashed."""

    WORKLOAD = [
        ("INSERT INTO t VALUES " + ", ".join(
            f"({x}, {x % 7})" for x in range(250)), None),
        ("UPDATE t SET y = y + 1 WHERE x % 5 = 0", None),
        ("SELECT y, count(*), sum(x) FROM t GROUP BY y", "query"),
        ("DELETE FROM t WHERE x < 10", None),
        ("SELECT count(*) FROM t", "query"),
    ]

    def build(self, directory):
        database = Database(data_directory=directory)
        database.execute("CREATE TABLE t (x integer, y integer)")
        return database

    def run_workload(self, database):
        answers = []
        for sql, kind in self.WORKLOAD:
            if kind == "query":
                answers.append(database.query(sql))
            else:
                database.execute(sql)
        return answers

    def crash_one_query(self, database):
        """Run a parallel query whose second worker dies mid-scan."""
        from repro.db import parallel
        from repro.errors import WorkerCrashError
        pool = parallel.ForkPool(
            child_hook=lambda index: os._exit(1) if index == 1 else None)
        database.set_parallel_workers(
            4, pool_factory=lambda: pool, min_rows=0)
        with pytest.raises(WorkerCrashError):
            database.query("SELECT y, sum(x) FROM t GROUP BY y")
        return pool

    def test_crash_mid_query_leaks_nothing_and_recovers(self, tmp_path):
        database = self.build(tmp_path / "db")
        database.execute("INSERT INTO t VALUES " + ", ".join(
            f"({x}, {x % 3})" for x in range(200)))
        serial = database.query("SELECT y, sum(x) FROM t GROUP BY y")
        pool = self.crash_one_query(database)
        # every forked worker was reaped — no zombies survive the error
        assert len(pool.last_pids) == 4
        for pid in pool.last_pids:
            with pytest.raises(ChildProcessError):
                os.waitpid(pid, os.WNOHANG)
        # no snapshot pins leaked: vacuum horizon is unobstructed
        assert database.mvcc.active_count() == 0
        # the engine still answers — healthy pool, same result
        database.set_parallel_workers(4, min_rows=0)
        assert database.query(
            "SELECT y, sum(x) FROM t GROUP BY y") == serial
        database.set_parallel_workers(1)
        assert database.query(
            "SELECT y, sum(x) FROM t GROUP BY y") == serial

    def test_recovered_package_matches_never_crashed_twin(self,
                                                          tmp_path):
        crashed = self.build(tmp_path / "crashed")
        answers = self.run_workload(crashed)
        self.crash_one_query(crashed)
        crashed.set_parallel_workers(1)
        crashed.checkpoint()
        crashed.close()

        oracle = self.build(tmp_path / "oracle")
        oracle_answers = self.run_workload(oracle)
        oracle.checkpoint()
        oracle.close()

        assert answers == oracle_answers
        assert (tree_bytes(tmp_path / "crashed")
                == tree_bytes(tmp_path / "oracle"))
        # and the crashed package reopens to the same answers
        reopened = Database(data_directory=tmp_path / "crashed")
        assert reopened.query(
            "SELECT count(*) FROM t") == oracle_answers[-1]

    def test_crash_inside_open_transaction_releases_the_pin(self,
                                                            tmp_path):
        from repro.db import parallel
        from repro.errors import WorkerCrashError
        database = self.build(tmp_path / "db")
        database.execute("INSERT INTO t VALUES " + ", ".join(
            f"({x}, {x})" for x in range(100)))
        session = database.create_session("txn")
        database.execute("BEGIN", session=session)
        pool = parallel.ForkPool(
            child_hook=lambda index: os._exit(1) if index == 0 else None)
        database.set_parallel_workers(
            2, pool_factory=lambda: pool, min_rows=0)
        with pytest.raises(WorkerCrashError):
            database.query("SELECT sum(y) FROM t", session=session)
        # the transaction survives (only the statement failed) and can
        # finish; afterwards nothing pins the horizon
        database.execute("ROLLBACK", session=session)
        assert database.mvcc.active_count() == 0
        for pid in pool.last_pids:
            with pytest.raises(ChildProcessError):
                os.waitpid(pid, os.WNOHANG)
