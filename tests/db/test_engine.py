"""End-to-end engine tests: DDL, DML, queries, transactions, COPY."""

import pytest

from repro.db import Database
from repro.db.provtypes import TupleRef
from repro.errors import (
    CatalogError,
    ExecutionError,
    IntegrityError,
    SQLSyntaxError,
    TransactionError,
)


@pytest.fixture
def db():
    database = Database()
    database.execute(
        "CREATE TABLE sales (id integer PRIMARY KEY, price float, "
        "region text)")
    database.execute(
        "INSERT INTO sales VALUES (1, 5, 'east'), (2, 11, 'west'), "
        "(3, 14, 'west')")
    return database


class TestBasicQueries:
    def test_select_all(self, db):
        assert len(db.query("SELECT * FROM sales")) == 3

    def test_projection_and_filter(self, db):
        assert db.query("SELECT id FROM sales WHERE price > 10") == [
            (2,), (3,)]

    def test_paper_figure5_sum(self, db):
        # Figure 5 of the paper: sum over price > 10 is 25
        assert db.query(
            "SELECT sum(price) AS ttl FROM sales WHERE price > 10") == [
                (25.0,)]

    def test_expression_in_select(self, db):
        rows = db.query("SELECT price * 2 FROM sales WHERE id = 1")
        assert rows == [(10.0,)]

    def test_column_alias_in_schema(self, db):
        result = db.execute("SELECT price AS p FROM sales WHERE id = 1")
        assert result.column_names == ["p"]

    def test_order_by_desc(self, db):
        rows = db.query("SELECT id FROM sales ORDER BY price DESC")
        assert rows == [(3,), (2,), (1,)]

    def test_order_by_non_projected_column(self, db):
        rows = db.query("SELECT region FROM sales ORDER BY price DESC")
        assert rows == [("west",), ("west",), ("east",)]

    def test_order_by_positional(self, db):
        rows = db.query("SELECT id FROM sales ORDER BY 1 DESC")
        assert rows == [(3,), (2,), (1,)]

    def test_limit_offset(self, db):
        rows = db.query("SELECT id FROM sales ORDER BY id LIMIT 1 OFFSET 1")
        assert rows == [(2,)]

    def test_distinct(self, db):
        rows = db.query("SELECT DISTINCT region FROM sales ORDER BY region")
        assert rows == [("east",), ("west",)]

    def test_select_without_from(self, db):
        assert db.query("SELECT 1 + 2") == [(3,)]

    def test_like_filter(self, db):
        rows = db.query("SELECT id FROM sales WHERE region LIKE 'w%'")
        assert rows == [(2,), (3,)]

    def test_in_filter(self, db):
        rows = db.query("SELECT id FROM sales WHERE id IN (1, 3)")
        assert rows == [(1,), (3,)]

    def test_between_filter(self, db):
        rows = db.query("SELECT id FROM sales WHERE price BETWEEN 10 AND 12")
        assert rows == [(2,)]


class TestAggregation:
    def test_group_by(self, db):
        rows = db.query(
            "SELECT region, count(*), avg(price) FROM sales "
            "GROUP BY region ORDER BY region")
        assert rows == [("east", 1, 5.0), ("west", 2, 12.5)]

    def test_global_aggregate(self, db):
        assert db.query("SELECT count(*) FROM sales") == [(3,)]

    def test_global_aggregate_on_empty_table(self, db):
        db.execute("CREATE TABLE empty (x integer)")
        assert db.query("SELECT count(*) FROM empty") == [(0,)]
        assert db.query("SELECT sum(x) FROM empty") == [(None,)]

    def test_group_by_on_empty_table_yields_no_rows(self, db):
        db.execute("CREATE TABLE empty (x integer)")
        assert db.query("SELECT x, count(*) FROM empty GROUP BY x") == []

    def test_having(self, db):
        rows = db.query(
            "SELECT region FROM sales GROUP BY region "
            "HAVING count(*) > 1")
        assert rows == [("west",)]

    def test_having_without_group_raises(self, db):
        with pytest.raises(SQLSyntaxError):
            db.query("SELECT id FROM sales HAVING id > 1")

    def test_aggregate_expression(self, db):
        rows = db.query("SELECT max(price) - min(price) FROM sales")
        assert rows == [(9.0,)]

    def test_count_distinct(self, db):
        assert db.query(
            "SELECT count(DISTINCT region) FROM sales") == [(2,)]


class TestJoins:
    @pytest.fixture(autouse=True)
    def orders(self, db):
        db.execute("CREATE TABLE orders (oid integer, sid integer, "
                   "qty integer)")
        db.execute("INSERT INTO orders VALUES (10, 1, 3), (11, 2, 7), "
                   "(12, 9, 1)")

    def test_comma_join_with_where(self, db):
        rows = db.query(
            "SELECT s.region, o.qty FROM sales s, orders o "
            "WHERE s.id = o.sid ORDER BY o.qty")
        assert rows == [("east", 3), ("west", 7)]

    def test_explicit_inner_join(self, db):
        rows = db.query(
            "SELECT o.oid FROM sales s JOIN orders o ON s.id = o.sid "
            "ORDER BY o.oid")
        assert rows == [(10,), (11,)]

    def test_left_join_pads_nulls(self, db):
        rows = db.query(
            "SELECT s.id, o.oid FROM sales s LEFT JOIN orders o "
            "ON s.id = o.sid ORDER BY s.id")
        assert rows == [(1, 10), (2, 11), (3, None)]

    def test_cross_join_cardinality(self, db):
        rows = db.query("SELECT 1 FROM sales CROSS JOIN orders")
        assert len(rows) == 9

    def test_join_with_extra_filter(self, db):
        rows = db.query(
            "SELECT s.id FROM sales s, orders o "
            "WHERE s.id = o.sid AND o.qty > 5")
        assert rows == [(2,)]

    def test_three_way_join(self, db):
        db.execute("CREATE TABLE extra (sid integer, note text)")
        db.execute("INSERT INTO extra VALUES (1, 'n1'), (2, 'n2')")
        rows = db.query(
            "SELECT e.note FROM sales s, orders o, extra e "
            "WHERE s.id = o.sid AND s.id = e.sid ORDER BY e.note")
        assert rows == [("n1",), ("n2",)]

    def test_null_join_keys_never_match(self, db):
        db.execute("INSERT INTO orders VALUES (13, NULL, 2)")
        rows = db.query(
            "SELECT count(*) FROM sales s, orders o WHERE s.id = o.sid")
        assert rows == [(2,)]


class TestDML:
    def test_insert_returns_written_refs(self, db):
        result = db.execute("INSERT INTO sales VALUES (4, 1, 'north')")
        assert result.rowcount == 1
        ref = result.written[0]
        assert ref.table == "sales"
        assert result.written_lineage[ref] == frozenset()

    def test_insert_partial_columns(self, db):
        db.execute("INSERT INTO sales (id, region) VALUES (5, 'south')")
        assert db.query("SELECT price FROM sales WHERE id = 5") == [(None,)]

    def test_insert_select(self, db):
        db.execute("CREATE TABLE archive (id integer, price float, "
                   "region text)")
        result = db.execute(
            "INSERT INTO archive SELECT id, price, region FROM sales "
            "WHERE price > 10", provenance=True)
        assert result.rowcount == 2
        # lineage of each archived row points at a sales tuple
        for ref in result.written:
            deps = result.written_lineage[ref]
            assert all(dep.table == "sales" for dep in deps)
            assert len(deps) == 1

    def test_update_versions_and_lineage(self, db):
        result = db.execute(
            "UPDATE sales SET price = price + 1 WHERE region = 'west'")
        assert result.rowcount == 2
        for new_ref, deps in result.written_lineage.items():
            (old_ref,) = deps
            assert old_ref.rowid == new_ref.rowid
            assert old_ref.version < new_ref.version

    def test_update_changes_values(self, db):
        db.execute("UPDATE sales SET region = 'all'")
        assert db.query("SELECT DISTINCT region FROM sales") == [("all",)]

    def test_delete_returns_old_refs(self, db):
        result = db.execute("DELETE FROM sales WHERE id = 1")
        assert result.rowcount == 1
        assert result.deleted[0].table == "sales"
        assert len(db.query("SELECT * FROM sales")) == 2

    def test_pk_violation_surfaces(self, db):
        with pytest.raises(IntegrityError):
            db.execute("INSERT INTO sales VALUES (1, 0, 'dup')")

    def test_insert_arity_mismatch(self, db):
        with pytest.raises(ExecutionError):
            db.execute("INSERT INTO sales VALUES (9, 1)")


class TestDDL:
    def test_create_and_drop(self, db):
        db.execute("CREATE TABLE t2 (x integer)")
        assert db.catalog.has_table("t2")
        db.execute("DROP TABLE t2")
        assert not db.catalog.has_table("t2")

    def test_create_duplicate_raises(self, db):
        with pytest.raises(CatalogError):
            db.execute("CREATE TABLE sales (x integer)")

    def test_create_if_not_exists(self, db):
        db.execute("CREATE TABLE IF NOT EXISTS sales (x integer)")

    def test_drop_missing_raises_unless_if_exists(self, db):
        with pytest.raises(CatalogError):
            db.execute("DROP TABLE ghost")
        db.execute("DROP TABLE IF EXISTS ghost")

    def test_unknown_table_in_query(self, db):
        with pytest.raises(CatalogError):
            db.query("SELECT * FROM ghost")

    def test_unknown_column(self, db):
        with pytest.raises(CatalogError):
            db.query("SELECT nope FROM sales")


class TestTransactions:
    def test_rollback_insert(self, db):
        db.execute("BEGIN")
        db.execute("INSERT INTO sales VALUES (7, 1, 'x')")
        db.execute("ROLLBACK")
        assert len(db.query("SELECT * FROM sales")) == 3

    def test_rollback_update_restores_values_and_version(self, db):
        version_before = db.catalog.get_table("sales").version_of(1)
        db.execute("BEGIN")
        db.execute("UPDATE sales SET price = 99 WHERE id = 1")
        db.execute("ROLLBACK")
        assert db.query("SELECT price FROM sales WHERE id = 1") == [(5.0,)]
        assert db.catalog.get_table("sales").version_of(1) == version_before

    def test_rollback_delete_restores_row(self, db):
        db.execute("BEGIN")
        db.execute("DELETE FROM sales WHERE id = 2")
        db.execute("ROLLBACK")
        assert db.query("SELECT price FROM sales WHERE id = 2") == [(11.0,)]

    def test_commit_keeps_changes(self, db):
        db.execute("BEGIN")
        db.execute("DELETE FROM sales WHERE id = 2")
        db.execute("COMMIT")
        assert db.query("SELECT count(*) FROM sales") == [(2,)]

    def test_nested_begin_raises(self, db):
        db.execute("BEGIN")
        with pytest.raises(TransactionError):
            db.execute("BEGIN")

    def test_commit_without_begin_raises(self, db):
        with pytest.raises(TransactionError):
            db.execute("COMMIT")


class TestCopyAndPersistence:
    def test_copy_round_trip(self, db, tmp_path):
        out = tmp_path / "sales.csv"
        db.execute(f"COPY sales TO '{out}'")
        db.execute("CREATE TABLE sales2 (id integer, price float, "
                   "region text)")
        result = db.execute(f"COPY sales2 FROM '{out}'")
        assert result.rowcount == 3
        assert db.query("SELECT count(*) FROM sales2") == [(3,)]

    def test_copy_with_header(self, db, tmp_path):
        out = tmp_path / "h.csv"
        db.execute(f"COPY sales TO '{out}' WITH CSV HEADER")
        first_line = out.read_text().splitlines()[0]
        assert first_line == "id,price,region"

    def test_persistence_across_instances(self, tmp_path):
        first = Database(data_directory=tmp_path / "pgdata")
        first.execute("CREATE TABLE t (x integer)")
        first.execute("INSERT INTO t VALUES (42)")
        first.close()
        second = Database(data_directory=tmp_path / "pgdata")
        assert second.query("SELECT x FROM t") == [(42,)]

    def test_autoflush_writes_through(self, tmp_path):
        db = Database(data_directory=tmp_path / "d", autoflush=True)
        db.execute("CREATE TABLE t (x integer)")
        db.execute("INSERT INTO t VALUES (1)")
        fresh = Database(data_directory=tmp_path / "d")
        assert fresh.query("SELECT x FROM t") == [(1,)]

    def test_execute_script(self, db):
        results = db.execute_script(
            "INSERT INTO sales VALUES (8, 2, 'n'); "
            "SELECT count(*) FROM sales;")
        assert results[-1].rows == [(4,)]

    def test_execute_rejects_multiple_statements(self, db):
        with pytest.raises(SQLSyntaxError):
            db.execute("SELECT 1; SELECT 2")

    def test_query_rejects_dml(self, db):
        with pytest.raises(ExecutionError):
            db.query("DELETE FROM sales")
