"""AST → SQL rendering tests, including parse/render round trips."""

import pytest
from hypothesis import given, strategies as st

from repro.db.sql import ast
from repro.db.sql.parser import parse_expression, parse_one
from repro.db.sql.render import (
    render_expression,
    render_literal,
    render_statement,
)


def round_trip_expression(text):
    """parse -> render -> parse must be a fixed point."""
    tree = parse_expression(text)
    rendered = render_expression(tree)
    assert parse_expression(rendered) == tree
    return rendered


def round_trip_statement(text):
    tree = parse_one(text)
    rendered = render_statement(tree)
    assert parse_one(rendered) == tree
    return rendered


class TestLiterals:
    def test_null(self):
        assert render_literal(None) == "NULL"

    def test_booleans(self):
        assert render_literal(True) == "TRUE"
        assert render_literal(False) == "FALSE"

    def test_numbers(self):
        assert render_literal(42) == "42"
        assert render_literal(2.5) == "2.5"

    def test_string_escaping(self):
        assert render_literal("it's") == "'it''s'"


class TestExpressionRoundTrips:
    @pytest.mark.parametrize("text", [
        "1 + 2 * 3",
        "(1 + 2) * 3",
        "-x + 1",
        "NOT a AND b",
        "NOT (a AND b)",
        "a OR b AND c",
        "(a OR b) AND c",
        "x BETWEEN 1 AND 10",
        "x NOT BETWEEN lo AND hi",
        "name LIKE '%abc_'",
        "name NOT LIKE 'x%'",
        "x IN (1, 2, 3)",
        "x NOT IN ('a', 'b')",
        "x IS NULL",
        "x IS NOT NULL",
        "count(*)",
        "count(DISTINCT region)",
        "sum(price * (1 - discount))",
        "coalesce(a, b, 0)",
        "t.col + u.col",
        "a || b || 'x'",
        "CASE WHEN a > 1 THEN 'big' ELSE 'small' END",
        "CASE WHEN a THEN 1 WHEN b THEN 2 END",
        "x BETWEEN 1 AND 2 AND y = 3",
        "1 - (2 - 3)",
        "1 - 2 - 3",
        "8 / 4 / 2",
        "8 / (4 / 2)",
    ])
    def test_round_trip(self, text):
        round_trip_expression(text)

    def test_precedence_preserved_semantically(self):
        # the classic: rendering must not flatten parenthesized
        # right-associative groupings of non-associative operators
        tree = parse_expression("10 - (4 - 3)")
        rendered = render_expression(tree)
        assert parse_expression(rendered) == tree


class TestStatementRoundTrips:
    @pytest.mark.parametrize("text", [
        "SELECT a, b AS x FROM t WHERE a > 1",
        "SELECT * FROM t",
        "SELECT t.* FROM t",
        "SELECT DISTINCT a FROM t ORDER BY a DESC LIMIT 3 OFFSET 1",
        "SELECT PROVENANCE a FROM t",
        "SELECT a, count(*) FROM t GROUP BY a HAVING count(*) > 2",
        "SELECT 1 FROM a, b, c WHERE a.x = b.x AND b.y = c.y",
        "SELECT 1 FROM a JOIN b ON a.x = b.x",
        "SELECT 1 FROM a LEFT JOIN b ON a.x = b.x",
        "SELECT 1 FROM a CROSS JOIN b",
        "SELECT 1 FROM lineitem l, orders o WHERE l.l_orderkey = "
        "o.o_orderkey AND l_suppkey BETWEEN 1 AND 10",
        "INSERT INTO t VALUES (1, 'x'), (2, NULL)",
        "INSERT INTO t (a, b) VALUES (1, 2)",
        "INSERT INTO t SELECT a FROM s WHERE a > 0",
        "UPDATE t SET a = a + 1, b = 'z' WHERE id = 3",
        "UPDATE t SET a = 1",
        "DELETE FROM t WHERE id = 1",
        "DELETE FROM t",
        "CREATE TABLE t (id integer PRIMARY KEY, name text NOT NULL, "
        "price float)",
        "DROP TABLE IF EXISTS t",
        "COPY t FROM '/data/in.csv' WITH CSV HEADER",
        "COPY t TO '/data/out.csv' WITH CSV",
        "BEGIN", "COMMIT", "ROLLBACK",
    ])
    def test_round_trip(self, text):
        round_trip_statement(text)

    def test_table2_queries_round_trip(self):
        from repro.workloads.tpch.dbgen import TPCHConfig
        from repro.workloads.tpch.queries import table2_variants
        for variant in table2_variants(TPCHConfig(scale_factor=0.001)):
            round_trip_statement(variant.sql)


# -- hypothesis: generated expression trees survive render/parse -------------


@st.composite
def expressions(draw, depth=0):
    if depth > 3:
        return draw(atoms())
    choice = draw(st.integers(0, 7))
    if choice <= 1:
        return draw(atoms())
    if choice == 2:
        op = draw(st.sampled_from(["+", "-", "*", "/", "and", "or",
                                   "=", "<", ">=", "||"]))
        return ast.BinaryOp(op, draw(expressions(depth=depth + 1)),
                            draw(expressions(depth=depth + 1)))
    if choice == 3:
        op = draw(st.sampled_from(["-", "not"]))
        return ast.UnaryOp(op, draw(expressions(depth=depth + 1)))
    if choice == 4:
        return ast.Between(draw(expressions(depth=depth + 1)),
                           draw(atoms()), draw(atoms()),
                           draw(st.booleans()))
    if choice == 5:
        return ast.InList(draw(expressions(depth=depth + 1)),
                          tuple(draw(st.lists(atoms(), min_size=1,
                                              max_size=3))),
                          draw(st.booleans()))
    if choice == 6:
        return ast.IsNull(draw(expressions(depth=depth + 1)),
                          draw(st.booleans()))
    name = draw(st.sampled_from(["sum", "min", "upper", "length"]))
    return ast.FunctionCall(name, (draw(expressions(depth=depth + 1)),))


@st.composite
def atoms(draw):
    kind = draw(st.integers(0, 3))
    if kind == 0:
        return ast.Literal(draw(st.integers(-1000, 1000)))
    if kind == 1:
        return ast.Literal(draw(st.sampled_from(
            [None, True, False, "abc", "o'brien", ""])))
    if kind == 2:
        return ast.ColumnRef(draw(st.sampled_from(["a", "b", "col3"])))
    return ast.ColumnRef("x", qualifier=draw(st.sampled_from(["t", "u"])))


def _fold_negatives(tree):
    """Apply the parser's unary-minus folding so structurally distinct
    but semantically identical trees compare equal."""
    if isinstance(tree, ast.UnaryOp):
        operand = _fold_negatives(tree.operand)
        if (tree.op == "-" and isinstance(operand, ast.Literal)
                and isinstance(operand.value, (int, float))
                and not isinstance(operand.value, bool)):
            return ast.Literal(-operand.value)
        return ast.UnaryOp(tree.op, operand)
    if isinstance(tree, ast.BinaryOp):
        return ast.BinaryOp(tree.op, _fold_negatives(tree.left),
                            _fold_negatives(tree.right))
    if isinstance(tree, ast.Between):
        return ast.Between(_fold_negatives(tree.operand),
                           _fold_negatives(tree.low),
                           _fold_negatives(tree.high), tree.negated)
    if isinstance(tree, ast.InList):
        return ast.InList(_fold_negatives(tree.operand),
                          tuple(_fold_negatives(item)
                                for item in tree.items), tree.negated)
    if isinstance(tree, ast.IsNull):
        return ast.IsNull(_fold_negatives(tree.operand), tree.negated)
    if isinstance(tree, ast.FunctionCall):
        return ast.FunctionCall(tree.name,
                                tuple(_fold_negatives(arg)
                                      for arg in tree.args),
                                tree.distinct)
    return tree


class TestRenderProperty:
    @given(expressions())
    def test_render_parse_fixed_point(self, tree):
        rendered = render_expression(tree)
        assert parse_expression(rendered) == _fold_negatives(tree)
