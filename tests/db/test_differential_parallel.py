"""Parity-first harness for partition-parallel execution.

Every query answered by a parallel plan must be *indistinguishable*
from its serial execution — same row list (same order, not merely the
same multiset), same lineage vectors, same wire bytes — and running
parallel queries must leave the packaged database directory
byte-identical to a serial twin.

Three layers of evidence:

1. the seeded sqlite3-differential grammar from
   ``test_differential_sqlite`` re-run at workers ∈ {1, 2, 4}, both
   over unpartitioned heaps (contiguous range mode) and hash-partitioned
   heaps (bucket merge mode), against serial *and* against sqlite;
2. the 23 mode-parity shapes from ``test_vectorized`` compared on full
   wire frames, with and without provenance;
3. ``tree_bytes`` identity of packaged directories between a serial
   twin and a parallel twin running the same workload.

The deterministic ``InProcessPool`` drives most cases so failures
reproduce exactly; a representative subset re-runs on the real
``ForkPool`` to prove the fork path answers identically too.
"""

from __future__ import annotations

import pytest

from repro.db import Database
from repro.db import parallel
from repro.db.chaos import tree_bytes
from repro.db.protocol import encode_frame, result_to_wire

from tests.db.test_differential_sqlite import (
    QUERIES_PER_SEED, SEED_COUNT, build_engines, canonical,
    generate_query)
from tests.db.test_vectorized import PARITY_QUERIES

pytestmark = pytest.mark.parallel

WORKER_SWEEP = (1, 2, 4)


def pytest_generate_tests(metafunc):
    if "oracle_seed" in metafunc.fixturenames:
        count = metafunc.config.getoption("--seeds") or SEED_COUNT
        metafunc.parametrize("oracle_seed", range(count))


def set_workers(database, workers):
    database.set_parallel_workers(
        workers, pool_factory=parallel.InProcessPool, min_rows=0)


def serial(database):
    database.set_parallel_workers(1)


# -- sqlite3-differential grammar under parallel execution --------------------

def test_differential_oracle_parallel(oracle_seed):
    """All generated families, serial vs parallel vs sqlite, in both
    range mode (unpartitioned) and merge mode (hash-partitioned)."""
    rng, database, connection = build_engines(oracle_seed)
    cases = [generate_query(rng, family)
             for family in range(QUERIES_PER_SEED)]
    for partitioned in (False, True):
        if partitioned:
            database.set_table_partitioning("t0", "a", 3)
            database.set_table_partitioning("t1", "a", 2)
        for sql, ordered in cases:
            serial(database)
            baseline = database.query(sql)
            reference = connection.execute(sql).fetchall()
            assert (canonical(baseline, ordered)
                    == canonical(reference, ordered))
            for workers in WORKER_SWEEP:
                set_workers(database, workers)
                assert database.query(sql) == baseline, (
                    f"seed {oracle_seed}, workers {workers}, "
                    f"partitioned {partitioned}: parallel diverges "
                    f"from serial on\n  {sql}")
    connection.close()


# -- the 23 mode-parity shapes on full wire frames ----------------------------

def build_parity_db(partitioned):
    database = Database()
    database.execute(
        "CREATE TABLE t (k integer, grp integer, a integer, b float, "
        "name text)")
    database.execute("CREATE TABLE small (k integer, label text)")
    rows = []
    for k in range(700):
        b_text = "NULL" if k % 7 == 0 else str(k * 0.5)
        name = "NULL" if k % 11 == 0 else f"'name{k % 13}'"
        rows.append(f"({k}, {k % 5}, {(k * 37) % 100}, {b_text}, {name})")
    database.execute("INSERT INTO t VALUES " + ", ".join(rows))
    database.execute(
        "INSERT INTO small VALUES " + ", ".join(
            f"({k}, 'L{k}')" for k in range(0, 40)))
    if partitioned:
        database.set_table_partitioning("t", "grp", 4)
        database.set_table_partitioning("small", "k", 4)
    return database


@pytest.fixture(scope="module")
def parity_pair():
    return build_parity_db(False), build_parity_db(True)


@pytest.mark.parametrize("sql", PARITY_QUERIES)
def test_parity_shape_wire_identical(parity_pair, sql):
    for database in parity_pair:
        for provenance in (False, True):
            serial(database)
            baseline = database.execute(sql, provenance)
            frame = encode_frame(result_to_wire(baseline))
            for workers in WORKER_SWEEP:
                set_workers(database, workers)
                result = database.execute(sql, provenance)
                assert result.rows == baseline.rows
                assert result.lineages == baseline.lineages
                assert encode_frame(result_to_wire(result)) == frame


FORK_SUBSET = [
    PARITY_QUERIES[0],    # fused scan/filter/project
    PARITY_QUERIES[11],   # grouped mixed aggregates (merge-exact)
    PARITY_QUERIES[12],   # avg + HAVING (serial fold below gather)
    PARITY_QUERIES[13],   # ungrouped aggregate over nullable float
    PARITY_QUERIES[15],   # equi-join with parallel scan sides
    PARITY_QUERIES[18],   # ORDER BY ... LIMIT above the gather
]


@pytest.mark.parametrize("sql", FORK_SUBSET)
def test_fork_pool_wire_identical(parity_pair, sql):
    """The real fork-based pool answers bit-identically too."""
    for database in parity_pair:
        for provenance in (False, True):
            serial(database)
            baseline = database.execute(sql, provenance)
            database.set_parallel_workers(4, min_rows=0)
            result = database.execute(sql, provenance)
            assert result.rows == baseline.rows
            assert result.lineages == baseline.lineages
            assert (encode_frame(result_to_wire(result))
                    == encode_frame(result_to_wire(baseline)))


# -- parallel sort / parallel hash build shapes -------------------------------

TENTPOLE_SHAPES = [
    # full parallel sort (per-partition sort, k-way merge in the parent)
    "SELECT k, a, b FROM t WHERE a < 80 ORDER BY a DESC, k",
    # top-k pushdown: each partition ships at most limit+offset rows
    "SELECT k, a FROM t ORDER BY b, k LIMIT 17",
    "SELECT k, name FROM t ORDER BY name DESC, k LIMIT 25 OFFSET 3",
    # NULL ordering under the merge (b and name carry NULLs)
    "SELECT k, b FROM t ORDER BY b DESC, k LIMIT 40",
    # parallel hash build: the build side builds inside the workers
    "SELECT t.k, t.a, small.label FROM t, small WHERE t.k = small.k",
    "SELECT t.k, small.label FROM t LEFT JOIN small ON t.k = small.k "
    "WHERE t.a < 50",
    # join under an ORDER BY: both new operators in one plan
    "SELECT t.k, small.label FROM t, small WHERE t.k = small.k "
    "ORDER BY t.k DESC LIMIT 10",
]


@pytest.mark.parametrize("sql", TENTPOLE_SHAPES)
def test_parallel_sort_and_join_wire_identical(parity_pair, sql):
    """The PR's new operators answer bit-identically to serial — rows,
    order, lineage, wire bytes — at every worker count, on both heap
    layouts."""
    for database in parity_pair:
        for provenance in (False, True):
            serial(database)
            baseline = database.execute(sql, provenance)
            frame = encode_frame(result_to_wire(baseline))
            for workers in WORKER_SWEEP:
                set_workers(database, workers)
                result = database.execute(sql, provenance)
                assert result.rows == baseline.rows
                assert result.lineages == baseline.lineages
                assert encode_frame(result_to_wire(result)) == frame
        serial(database)


def explain_text(database, sql):
    return "\n".join(
        row[0] for row in database.execute("EXPLAIN " + sql).rows)


def test_copartitioned_join_wire_identical():
    """Both sides hash-partitioned on the join key: the planner takes
    the co-partitioned fast path (no broadcast build) and the answer
    stays bit-identical to serial."""
    database = build_parity_db(False)
    database.set_table_partitioning("t", "k", 4)
    database.set_table_partitioning("small", "k", 4)
    sql = ("SELECT t.k, t.a, small.label FROM t, small "
           "WHERE t.k = small.k")
    for provenance in (False, True):
        serial(database)
        baseline = database.execute(sql, provenance)
        frame = encode_frame(result_to_wire(baseline))
        for workers in WORKER_SWEEP:
            set_workers(database, workers)
            result = database.execute(sql, provenance)
            assert result.rows == baseline.rows
            assert result.lineages == baseline.lineages
            assert encode_frame(result_to_wire(result)) == frame
    set_workers(database, 4)
    assert "co-partitioned" in explain_text(database, sql)


PERSISTENT_SUBSET = TENTPOLE_SHAPES[1:2] + TENTPOLE_SHAPES[4:6]


@pytest.mark.parametrize("sql", PERSISTENT_SUBSET)
def test_persistent_pool_wire_identical(parity_pair, sql):
    """The engine-owned resident pool (real forks, reused across
    statements) answers bit-identically too."""
    for database in parity_pair:
        try:
            for provenance in (False, True):
                serial(database)
                baseline = database.execute(sql, provenance)
                database.set_parallel_workers(4, min_rows=0)
                result = database.execute(sql, provenance)
                assert result.rows == baseline.rows
                assert result.lineages == baseline.lineages
                assert (encode_frame(result_to_wire(result))
                        == encode_frame(result_to_wire(baseline)))
        finally:
            serial(database)  # tear the residents down


# -- packaged-directory byte identity -----------------------------------------

WORKLOAD_QUERIES = [
    "SELECT grp, count(*), sum(k) FROM t GROUP BY grp",
    "SELECT k, a FROM t WHERE a < 40",
    "SELECT t.k, small.label FROM t, small WHERE t.k = small.k",
]


def run_twin(directory, workers, resident=False):
    database = Database(data_directory=directory)
    database.execute(
        "CREATE TABLE t (k integer, grp integer, a integer)")
    database.execute("CREATE TABLE small (k integer, label text)")
    database.execute("INSERT INTO t VALUES " + ", ".join(
        f"({k}, {k % 5}, {(k * 37) % 100})" for k in range(300)))
    database.execute("INSERT INTO small VALUES " + ", ".join(
        f"({k}, 'L{k}')" for k in range(30)))
    database.set_table_partitioning("t", "grp", 4)
    if workers > 1:
        if resident:
            # the engine-owned PersistentForkPool: exercises recycle
            # on the mid-workload UPDATE and teardown on close()
            database.set_parallel_workers(workers, min_rows=0)
        else:
            set_workers(database, workers)
    answers = [database.query(sql) for sql in WORKLOAD_QUERIES]
    database.execute("UPDATE t SET a = a + 1 WHERE k % 7 = 0")
    answers.append(database.query(WORKLOAD_QUERIES[0]))
    database.checkpoint()
    database.close()
    return answers


def test_packaged_bytes_identical_to_serial_twin(tmp_path):
    serial_dir = tmp_path / "serial"
    parallel_dir = tmp_path / "parallel"
    serial_answers = run_twin(serial_dir, workers=1)
    parallel_answers = run_twin(parallel_dir, workers=4)
    assert parallel_answers == serial_answers
    assert tree_bytes(parallel_dir) == tree_bytes(serial_dir)


def test_packaged_bytes_identical_with_resident_pool(tmp_path):
    """The persistent pool's forked residents write nothing: a twin
    served entirely by resident workers packages byte-identically."""
    serial_dir = tmp_path / "serial"
    resident_dir = tmp_path / "resident"
    serial_answers = run_twin(serial_dir, workers=1)
    resident_answers = run_twin(resident_dir, workers=4, resident=True)
    assert resident_answers == serial_answers
    assert tree_bytes(resident_dir) == tree_bytes(serial_dir)


def test_parallel_reads_write_nothing(tmp_path):
    database = Database(data_directory=tmp_path)
    database.execute("CREATE TABLE t (k integer, grp integer)")
    database.execute("INSERT INTO t VALUES " + ", ".join(
        f"({k}, {k % 3})" for k in range(200)))
    database.set_table_partitioning("t", "grp", 3)
    database.checkpoint()
    before = tree_bytes(tmp_path)
    set_workers(database, 4)
    for sql in ("SELECT grp, count(*) FROM t GROUP BY grp",
                "SELECT k FROM t WHERE k % 2 = 0"):
        database.query(sql)
    assert tree_bytes(tmp_path) == before
    database.close()
