"""Partition-parallel execution: pools, partitioned storage, planner
placement, EXPLAIN integration, MVCC snapshots, and crash surfacing.

The parity-first harness lives in ``test_differential_parallel.py``;
this file covers the machinery itself — the fork/in-process pools, the
hash-partition bookkeeping on the heap, the WAL/checkpoint persistence
of partition specs (with the packaged ``.tbl`` bytes provably
unchanged), the cost-gated Gather placement, and the failure path
(:class:`repro.errors.WorkerCrashError` with every worker reaped).
"""

from __future__ import annotations

import os

import pytest

from repro.db import Database
from repro.db import parallel
from repro.db.storage import stable_hash
from repro.errors import CatalogError, WorkerCrashError

pytestmark = pytest.mark.parallel


# -- worker pools -------------------------------------------------------------

class TestPools:
    def test_in_process_pool_runs_in_order(self):
        seen = []
        pool = parallel.InProcessPool()
        results = pool.run([lambda i=i: (seen.append(i), i * 10)[1]
                            for i in range(4)])
        assert results == [0, 10, 20, 30]
        assert seen == [0, 1, 2, 3]

    def test_in_process_pool_child_hook_sees_partition_index(self):
        hooked = []
        pool = parallel.InProcessPool(child_hook=hooked.append)
        pool.run([lambda: None, lambda: None, lambda: None])
        assert hooked == [0, 1, 2]

    def test_fork_pool_returns_results_in_partition_order(self):
        pool = parallel.ForkPool()
        results = pool.run([lambda i=i: i * i for i in range(5)])
        assert results == [0, 1, 4, 9, 16]

    def test_fork_pool_reaps_every_worker(self):
        pool = parallel.ForkPool()
        pool.run([lambda: 1, lambda: 2, lambda: 3])
        assert len(pool.last_pids) == 3
        for pid in pool.last_pids:
            # already reaped by the pool: a second wait must fail
            with pytest.raises(ChildProcessError):
                os.waitpid(pid, os.WNOHANG)

    def test_fork_pool_propagates_worker_exceptions(self):
        def boom():
            raise ValueError("inside the worker")

        pool = parallel.ForkPool()
        with pytest.raises(ValueError, match="inside the worker"):
            pool.run([lambda: 1, boom])
        for pid in pool.last_pids:
            with pytest.raises(ChildProcessError):
                os.waitpid(pid, os.WNOHANG)

    def test_fork_pool_surfaces_dead_worker_as_crash_error(self):
        # the hook runs inside the forked child; partition 1 dies
        # before writing its result frame
        pool = parallel.ForkPool(
            child_hook=lambda index: os._exit(9) if index == 1 else None)
        with pytest.raises(WorkerCrashError, match=r"\[1\]"):
            pool.run([lambda: "a", lambda: "b", lambda: "c"])
        assert len(pool.last_pids) == 3
        for pid in pool.last_pids:
            with pytest.raises(ChildProcessError):
                os.waitpid(pid, os.WNOHANG)


class _Square:
    """Picklable task: ships through the resident frame protocol."""

    def __init__(self, n):
        self.n = n

    def __call__(self):
        return self.n * self.n


class _Boom:
    """Picklable task that raises inside the resident."""

    def __call__(self):
        raise ValueError("inside the resident")


class _Die:
    """Picklable task that kills its resident before the result frame."""

    def __call__(self):
        os._exit(7)


class TestPersistentPool:
    """The resident protocol itself: frames, reuse, error propagation,
    crash surfacing, respawn, and the one-shot fallbacks."""

    def test_runs_tasks_in_order_and_reuses_residents(self):
        pool = parallel.PersistentForkPool(2)
        try:
            assert pool.run([_Square(i) for i in range(5)]) \
                == [0, 1, 4, 9, 16]
            first_pids = pool.worker_pids()
            assert len(first_pids) == 2
            assert pool.run([_Square(i) for i in range(3)]) == [0, 1, 4]
            assert pool.worker_pids() == first_pids  # no new forks
            counters = pool.counters()
            assert counters["forks"] == 2
            assert counters["reuse_hits"] == 1
            assert counters["worker_crashes"] == 0
        finally:
            pool.close()

    def test_close_reaps_every_resident(self):
        pool = parallel.PersistentForkPool(3)
        pool.run([_Square(1)] * 3)
        pids = pool.worker_pids()
        assert len(pids) == 3
        pool.close()
        assert pool.worker_pids() == []
        for pid in pids:
            with pytest.raises(ChildProcessError):
                os.waitpid(pid, os.WNOHANG)

    def test_task_error_propagates_and_residents_survive(self):
        pool = parallel.PersistentForkPool(2)
        try:
            pool.run([_Square(1), _Square(2)])
            pids = pool.worker_pids()
            with pytest.raises(ValueError, match="inside the resident"):
                pool.run([_Square(1), _Boom()])
            # an ordinary exception is a result, not a crash: the
            # residents live on and the next statement reuses them
            assert pool.worker_pids() == pids
            assert pool.run([_Square(3), _Square(4)]) == [9, 16]
            assert pool.counters()["worker_crashes"] == 0
        finally:
            pool.close()

    def test_crashed_resident_surfaces_reaps_and_respawns(self):
        pool = parallel.PersistentForkPool(2)
        try:
            pool.run([_Square(1), _Square(2)])
            doomed = pool.worker_pids()[1]
            with pytest.raises(WorkerCrashError, match=r"\[1\]"):
                pool.run([_Square(1), _Die()])
            with pytest.raises(ChildProcessError):
                os.waitpid(doomed, os.WNOHANG)  # already reaped
            assert pool.counters()["worker_crashes"] == 1
            # the dead slot respawns on the next dispatch
            assert pool.run([_Square(5), _Square(6)]) == [25, 36]
            counters = pool.counters()
            assert counters["respawns"] == 1
            assert counters["forks"] == 3
        finally:
            pool.close()

    def test_sigkilled_resident_surfaces_and_next_run_succeeds(self):
        import signal as signal_module

        pool = parallel.PersistentForkPool(2)
        try:
            pool.run([_Square(1), _Square(2)])
            os.kill(pool.worker_pids()[0], signal_module.SIGKILL)
            with pytest.raises(WorkerCrashError):
                pool.run([_Square(1), _Square(2)])
            assert pool.run([_Square(3), _Square(4)]) == [9, 16]
            assert pool.counters()["respawns"] >= 1
        finally:
            pool.close()

    def test_unpicklable_tasks_fall_back_to_one_shot_forks(self):
        pool = parallel.PersistentForkPool(2)
        try:
            value = object()  # unpicklable payload in the closure
            assert pool.run([lambda: 7, lambda v=value: v is value]) \
                == [7, True]
            # the fallback never spawned residents
            assert pool.worker_pids() == []
            assert pool.counters()["forks"] == 0
        finally:
            pool.close()


class TestPersistentPoolEngineLifecycle:
    """The engine-owned resident pool: spawned by
    ``set_parallel_workers``, reused across read statements, recycled
    on any engine-state change, torn down on ``close``."""

    def pooled_db(self, workers=2, rows=300):
        database = make_db(rows=rows)
        database.set_parallel_workers(workers, min_rows=0)
        assert isinstance(database.parallel_pool,
                          parallel.PersistentForkPool)
        return database

    def test_read_only_statements_fork_once_per_worker(self):
        database = self.pooled_db(workers=2)
        for bound in (10, 20, 30, 40, 50):
            database.query(f"SELECT a, b FROM t WHERE a < {bound}")
        counters = database.parallel_pool.counters()
        assert counters["forks"] == 2  # exactly once per worker
        assert counters["reuse_hits"] == 4
        assert len(counters["resident_pids"]) == 2
        database.close()

    def test_any_commit_recycles_the_residents(self):
        database = self.pooled_db(workers=2)
        database.query("SELECT a FROM t WHERE a < 10")
        stale = set(database.parallel_pool.worker_pids())
        database.execute("INSERT INTO t VALUES (900, 'new', 9.0)")
        # the next dispatch forks a fresh generation that sees the row
        assert database.query(
            "SELECT count(*) FROM t WHERE a = 900") == [(1,)]
        fresh = set(database.parallel_pool.worker_pids())
        assert fresh and fresh.isdisjoint(stale)
        assert database.parallel_pool.forks == 4
        database.close()

    def test_ddl_analyze_and_repartition_each_recycle(self):
        database = self.pooled_db(workers=2)
        pool = database.parallel_pool

        def generation():
            database.query("SELECT a FROM t WHERE a < 25")
            return set(pool.worker_pids())

        seen = [generation()]
        database.execute("CREATE TABLE other (x integer)")   # DDL
        seen.append(generation())
        database.execute("ANALYZE t")                        # stats
        seen.append(generation())
        database.set_table_partitioning("t", "a", 4)         # epoch
        seen.append(generation())
        for left, right in zip(seen, seen[1:]):
            assert left.isdisjoint(right)
        assert pool.forks == 2 * len(seen)
        database.close()

    def test_checkpoint_recycles_residents(self, tmp_path):
        database = Database(data_directory=tmp_path)
        database.execute("CREATE TABLE t (a integer, b text)")
        database.execute("INSERT INTO t VALUES " + ", ".join(
            f"({i}, 'x{i}')" for i in range(100)))
        database.set_parallel_workers(2, min_rows=0)
        database.query("SELECT a FROM t WHERE a < 50")
        assert database.parallel_pool.worker_pids()
        database.checkpoint()
        # checkpoint retires the generation; the next statement respawns
        assert database.parallel_pool.worker_pids() == []
        database.query("SELECT a FROM t WHERE a < 50")
        assert database.parallel_pool.forks == 4
        database.close()

    def test_close_tears_down_the_pool(self):
        database = self.pooled_db(workers=2)
        database.query("SELECT a FROM t WHERE a < 10")
        pids = database.parallel_pool.worker_pids()
        database.close()
        assert database.parallel_pool is None
        for pid in pids:
            with pytest.raises(ChildProcessError):
                os.waitpid(pid, os.WNOHANG)

    def test_crash_respawn_next_statement_succeeds(self):
        import signal as signal_module

        database = make_db(rows=300)
        serial_answer = database.query("SELECT b, count(*) FROM t GROUP BY b")
        database.set_parallel_workers(2, min_rows=0)
        database.query("SELECT a FROM t WHERE a < 10")
        os.kill(database.parallel_pool.worker_pids()[0],
                signal_module.SIGKILL)
        with pytest.raises(WorkerCrashError):
            database.query("SELECT b, count(*) FROM t GROUP BY b")
        # the statement failed whole; the dead slot respawns and the
        # very next statement answers exactly like serial
        assert database.query(
            "SELECT b, count(*) FROM t GROUP BY b") == serial_answer
        assert database.parallel_pool.counters()["respawns"] >= 1
        assert database.mvcc.active_count() == 0
        database.close()

    def test_explain_analyze_reports_pool_counters(self):
        database = self.pooled_db(workers=2)
        database.query("SELECT a FROM t WHERE a < 30")
        result = database.execute(
            "EXPLAIN ANALYZE SELECT a FROM t WHERE a < 30")
        pool_stats = result.stats["analyze"]["parallel_pool"]
        assert pool_stats["workers"] == 2
        assert pool_stats["forks"] == 2
        assert pool_stats["reuse_hits"] >= 1
        assert len(pool_stats["resident_pids"]) == 2
        database.close()


class TestSplitting:
    def test_split_ranges_round_trips(self):
        items = list(range(17))
        for parts in (1, 2, 3, 4, 16, 17, 40):
            chunks = parallel.split_ranges(items, parts)
            assert [x for chunk in chunks for x in chunk] == items
            assert all(chunks)
            assert len(chunks) <= max(parts, 1)

    def test_split_ranges_empty_input(self):
        assert parallel.split_ranges([], 4) == [[]] or \
            parallel.split_ranges([], 4) == []

    def test_bucket_lists_sorts_each_worker_stream(self):
        buckets = [[9, 1], [4, 2], [7], [3, 8]]
        lists = parallel.bucket_lists(buckets, 2)
        assert len(lists) == 2
        assert all(rowids == sorted(rowids) for rowids in lists)
        merged = sorted(x for rowids in lists for x in rowids)
        assert merged == [1, 2, 3, 4, 7, 8, 9]


# -- partitioned storage ------------------------------------------------------

def make_db(rows=60):
    database = Database()
    database.execute("CREATE TABLE t (a integer, b text, c float)")
    if rows:
        database.execute("INSERT INTO t VALUES " + ", ".join(
            f"({i}, 'tag{i % 5}', {i * 0.5})" for i in range(rows)))
    return database


class TestPartitionedHeap:
    def test_stable_hash_is_deterministic_across_types(self):
        assert stable_hash(None) == 0
        assert stable_hash(7) == 7
        assert stable_hash("amber") == stable_hash("amber")
        assert stable_hash(1.5) == stable_hash(1.5)

    def test_buckets_cover_exactly_the_committed_rows(self):
        database = make_db()
        table = database.catalog.get_table("t")
        table.set_partitioning("b", 4)
        buckets = table.partition_rowids()
        assert len(buckets) == 4
        flat = sorted(r for bucket in buckets for r in bucket)
        assert flat == sorted(table.rows)
        for bucket in buckets:
            assert bucket == sorted(bucket)

    def test_buckets_track_insert_update_delete(self):
        database = make_db()
        table = database.catalog.get_table("t")
        table.set_partitioning("a", 3)
        database.execute("INSERT INTO t VALUES (100, 'new', 1.0)")
        database.execute("UPDATE t SET a = 200 WHERE a = 10")
        database.execute("DELETE FROM t WHERE a < 5")
        flat = sorted(r for bucket in table.partition_rowids()
                      for r in bucket)
        assert flat == sorted(table.rows)
        for bucket_index, bucket in enumerate(table.partition_rowids()):
            for rowid in bucket:
                assert table.partition_of(table.rows[rowid]) \
                    == bucket_index

    def test_partition_count_must_be_positive(self):
        database = make_db(rows=0)
        table = database.catalog.get_table("t")
        with pytest.raises(CatalogError):
            table.set_partitioning("a", 0)

    def test_partition_column_must_exist(self):
        database = make_db(rows=0)
        with pytest.raises(CatalogError):
            database.set_table_partitioning("t", "nope", 4)


class TestPartitionPersistence:
    def test_spec_survives_wal_replay(self, tmp_path):
        database = Database(data_directory=tmp_path)
        database.execute("CREATE TABLE t (a integer, b text)")
        database.execute("INSERT INTO t VALUES (1, 'x'), (2, 'y')")
        database.set_table_partitioning("t", "b", 8)
        # no checkpoint: the spec must come back through the WAL
        reopened = Database(data_directory=tmp_path)
        spec = reopened.catalog.get_table("t").partition_spec
        assert spec is not None
        assert (spec.column, spec.count) == ("b", 8)
        flat = sorted(
            r for bucket in
            reopened.catalog.get_table("t").partition_rowids()
            for r in bucket)
        assert flat == sorted(reopened.catalog.get_table("t").rows)

    def test_spec_survives_checkpoint(self, tmp_path):
        database = Database(data_directory=tmp_path)
        database.execute("CREATE TABLE t (a integer, b text)")
        database.execute("INSERT INTO t VALUES (1, 'x')")
        database.set_table_partitioning("t", "a", 2)
        database.checkpoint()  # resets the WAL: meta must carry it
        reopened = Database(data_directory=tmp_path)
        spec = reopened.catalog.get_table("t").partition_spec
        assert spec is not None
        assert (spec.column, spec.count) == ("a", 2)

    def test_clearing_partitioning_is_durable(self, tmp_path):
        database = Database(data_directory=tmp_path)
        database.execute("CREATE TABLE t (a integer, b text)")
        database.set_table_partitioning("t", "a", 2)
        database.set_table_partitioning("t", None)
        database.checkpoint()
        reopened = Database(data_directory=tmp_path)
        assert reopened.catalog.get_table("t").partition_spec is None

    def test_table_file_bytes_do_not_change(self, tmp_path):
        database = Database(data_directory=tmp_path)
        database.execute("CREATE TABLE t (a integer, b text)")
        database.execute("INSERT INTO t VALUES " + ", ".join(
            f"({i}, 'v{i}')" for i in range(20)))
        database.checkpoint()
        before = (tmp_path / "t.tbl").read_bytes()
        database.set_table_partitioning("t", "b", 4)
        database.checkpoint()
        after = (tmp_path / "t.tbl").read_bytes()
        assert before == after  # partitioning is metadata, not layout


# -- planner placement and EXPLAIN --------------------------------------------

def explain_text(database, sql):
    return "\n".join(
        row[0] for row in database.execute("EXPLAIN " + sql).rows)


class TestPlannerPlacement:
    def test_serial_below_min_rows_threshold(self):
        database = make_db()  # 60 rows << DEFAULT_MIN_ROWS
        database.set_parallel_workers(4)
        assert "Gather" not in explain_text(
            database, "SELECT a FROM t WHERE a < 10")

    def test_gather_above_threshold(self):
        database = make_db()
        database.set_parallel_workers(4, min_rows=0)
        text = explain_text(database, "SELECT a FROM t WHERE a < 10")
        assert "Gather (workers=4)" in text
        assert "SeqScan on t" in text

    def test_one_worker_never_gathers(self):
        database = make_db()
        database.set_parallel_workers(1, min_rows=0)
        assert "Gather" not in explain_text(
            database, "SELECT a FROM t")

    def test_merge_exact_aggregate_gathers_partials(self):
        database = make_db()
        database.set_parallel_workers(2, min_rows=0)
        text = explain_text(
            database, "SELECT b, count(*), sum(a) FROM t GROUP BY b")
        assert "AggregateGather (workers=2" in text

    def test_float_aggregate_keeps_serial_fold(self):
        # avg (and sum over floats) must accumulate in serial order:
        # the scan parallelizes, the fold does not
        database = make_db()
        database.set_parallel_workers(2, min_rows=0)
        text = explain_text(
            database, "SELECT b, avg(c) FROM t GROUP BY b")
        assert "AggregateGather" not in text
        assert text.index("GroupAggregate") < text.index("Gather")

    def test_join_scan_sides_parallelize(self):
        database = make_db()
        database.execute("CREATE TABLE d (b text, label text)")
        database.execute("INSERT INTO d VALUES " + ", ".join(
            f"('tag{i}', 'L{i}')" for i in range(5)))
        database.set_parallel_workers(2, min_rows=0)
        text = explain_text(
            database,
            "SELECT t.a, d.label FROM t, d WHERE t.b = d.b")
        assert "HashJoin" in text
        # build side builds inside the pool workers; probe side gathers
        assert "Parallel Hash Build: parallel build, workers=2" in text
        assert text.count("Gather (workers=2)") == 1

    def test_index_scan_stays_serial(self):
        database = make_db()
        database.execute("CREATE INDEX t_a ON t (a)")
        database.set_parallel_workers(4, min_rows=0)
        text = explain_text(database, "SELECT b FROM t WHERE a = 3")
        assert "IndexScan" in text
        assert "Gather" not in text

    def test_explain_analyze_reports_per_partition_stats(self):
        database = make_db()
        database.set_parallel_workers(
            2, pool_factory=parallel.InProcessPool, min_rows=0)
        result = database.execute(
            "EXPLAIN ANALYZE SELECT a FROM t WHERE a < 30")
        operators = result.stats["analyze"]["operators"]
        gather = next(entry for entry in operators
                      if entry["operator"] == "Gather")
        assert gather["workers"] == 2
        partitions = gather["partitions"]
        assert len(partitions) == 2
        assert sum(entry["rows"] for entry in partitions) == 30
        text = "\n".join(row[0] for row in result.rows)
        assert "Gather (workers=2)" in text
        assert "Partition 0:" in text and "Partition 1:" in text


# -- execution semantics ------------------------------------------------------

class TestParallelExecution:
    def test_fork_pool_answers_match_serial(self):
        database = make_db(rows=500)
        serial = database.query(
            "SELECT b, count(*), sum(a), min(a), max(a) FROM t "
            "GROUP BY b")
        database.set_parallel_workers(4, min_rows=0)
        assert database.query(
            "SELECT b, count(*), sum(a), min(a), max(a) FROM t "
            "GROUP BY b") == serial

    def test_hash_partitioned_merge_matches_serial(self):
        database = make_db(rows=500)
        database.set_table_partitioning("t", "b", 8)
        serial = database.query("SELECT a, b FROM t WHERE a % 3 = 0")
        database.set_parallel_workers(
            4, pool_factory=parallel.InProcessPool, min_rows=0)
        assert database.query(
            "SELECT a, b FROM t WHERE a % 3 = 0") == serial

    def test_worker_crash_aborts_statement_and_recovers(self):
        database = make_db(rows=200)
        crashing = parallel.ForkPool(
            child_hook=lambda index: os._exit(1) if index else None)
        database.set_parallel_workers(
            2, pool_factory=lambda: crashing, min_rows=0)
        with pytest.raises(WorkerCrashError):
            database.query("SELECT count(*) FROM t")
        for pid in crashing.last_pids:
            with pytest.raises(ChildProcessError):
                os.waitpid(pid, os.WNOHANG)
        # the statement failed whole; the engine serves the next one
        database.set_parallel_workers(2, min_rows=0)
        assert database.query("SELECT count(*) FROM t") == [(200,)]
        assert database.mvcc.active_count() == 0

    def test_parallel_read_respects_transaction_snapshot(self):
        database = make_db(rows=100)
        database.set_parallel_workers(
            2, pool_factory=parallel.InProcessPool, min_rows=0)
        reader = database.create_session("reader")
        database.execute("BEGIN", session=reader)
        before = database.query("SELECT count(*), sum(a) FROM t",
                                session=reader)
        # another session commits while the snapshot is open
        database.execute("INSERT INTO t VALUES (999, 'zz', 0.0)")
        database.execute("DELETE FROM t WHERE a = 0")
        assert database.query("SELECT count(*), sum(a) FROM t",
                              session=reader) == before
        database.execute("COMMIT", session=reader)
        after = database.query("SELECT count(*), sum(a) FROM t",
                               session=reader)
        assert after != before

    def test_transaction_overlay_is_visible_to_its_own_workers(self):
        database = make_db(rows=100)
        database.set_parallel_workers(
            2, pool_factory=parallel.InProcessPool, min_rows=0)
        writer = database.create_session("writer")
        database.execute("BEGIN", session=writer)
        database.execute("INSERT INTO t VALUES (500, 'mine', 1.0)",
                         session=writer)
        assert database.query(
            "SELECT count(*) FROM t WHERE a = 500",
            session=writer) == [(1,)]
        # other sessions do not see the uncommitted row
        assert database.query(
            "SELECT count(*) FROM t WHERE a = 500") == [(0,)]
        database.execute("ROLLBACK", session=writer)

    def test_partitioned_transaction_falls_back_to_range_mode(self):
        # hash buckets reflect committed-latest rows only; under an
        # open snapshot the gather must ignore them and still answer
        # exactly like serial
        database = make_db(rows=120)
        database.set_table_partitioning("t", "a", 4)
        session = database.create_session("txn")
        database.execute("BEGIN", session=session)
        database.execute("UPDATE t SET b = 'moved' WHERE a < 10",
                         session=session)
        serial = database.query(
            "SELECT a, b FROM t ORDER BY a", session=session)
        database.set_parallel_workers(
            4, pool_factory=parallel.InProcessPool, min_rows=0)
        assert database.query(
            "SELECT a, b FROM t ORDER BY a", session=session) == serial
        database.execute("ROLLBACK", session=session)

    def test_dropping_a_table_drops_its_partition_spec(self, tmp_path):
        database = Database(data_directory=tmp_path)
        database.execute("CREATE TABLE t (a integer)")
        database.set_table_partitioning("t", "a", 2)
        database.execute("DROP TABLE t")
        database.execute("CREATE TABLE t (a integer)")
        assert database.catalog.get_table("t").partition_spec is None
        database.checkpoint()
        reopened = Database(data_directory=tmp_path)
        assert reopened.catalog.get_table("t").partition_spec is None
