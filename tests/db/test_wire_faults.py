"""Wire-path robustness: error frames, timeouts, client retry/backoff."""

import json
import random

import pytest

from repro.db import Database, DBClient, DBServer, RetryPolicy
from repro.db import protocol
from repro.errors import (
    DatabaseError,
    StatementTimeout,
    TransientError,
)
from repro.faults import FaultInjector, FlakyTransport


@pytest.fixture
def server():
    database = Database()
    database.execute("CREATE TABLE t (x integer)")
    database.execute("INSERT INTO t VALUES (1)")
    return DBServer(database)


def make_client(server, **kwargs):
    client = DBClient(server.transport(), "app", "p1", **kwargs)
    client.connect()
    return client


class TestServerErrorWall:
    def test_malformed_json_returns_error_frame(self, server):
        response = protocol.decode_frame(server.handle_wire("{not json"))
        assert response["frame"] == "error"
        assert response["error_type"] == "ProtocolError"

    def test_untagged_frame_returns_error_frame(self, server):
        response = protocol.decode_frame(server.handle_wire('{"x": 1}'))
        assert response["frame"] == "error"

    def test_query_frame_missing_sql_returns_error_frame(self, server):
        connected = server.handle(protocol.connect_frame("a", "p"))
        broken = json.dumps({"frame": "query",
                             "connection_id": connected["connection_id"]})
        response = protocol.decode_frame(server.handle_wire(broken))
        assert response["frame"] == "error"
        assert response["error_type"] == "ProtocolError"

    def test_unexpected_internal_error_becomes_error_frame(self, server):
        def explode(sql, provenance=False):
            raise RuntimeError("internal invariant violated")

        server.database.execute = explode
        connected = server.handle(protocol.connect_frame("a", "p"))
        request = protocol.encode_frame(protocol.query_frame(
            connected["connection_id"], "SELECT 1"))
        response = protocol.decode_frame(server.handle_wire(request))
        assert response["frame"] == "error"
        assert response["error_type"] == "RuntimeError"

    def test_traffic_after_shutdown_returns_error_frame(self, server):
        server.shutdown()
        request = protocol.encode_frame(protocol.connect_frame("a", "p"))
        response = protocol.decode_frame(server.handle_wire(request))
        assert response["frame"] == "error"
        assert response["error_type"] == "ConnectionClosedError"

    def test_shutdown_is_idempotent(self, server):
        server.shutdown()
        server.shutdown()
        assert not server.started

    def test_transient_error_frame_is_flagged(self, server):
        def flaky(sql, provenance=False):
            raise TransientError("disk hiccup")

        server.database.execute = flaky
        connected = server.handle(protocol.connect_frame("a", "p"))
        response = server.handle(protocol.query_frame(
            connected["connection_id"], "SELECT 1"))
        assert protocol.is_transient_error(response)


class TestStatementTimeout:
    def make_timed_server(self, elapsed):
        database = Database()
        database.execute("CREATE TABLE t (x integer)")
        ticks = iter([0.0, elapsed])
        return DBServer(database, statement_timeout=1.0,
                        timer=lambda: next(ticks))

    def test_overrunning_statement_times_out(self):
        server = self.make_timed_server(elapsed=5.0)
        client = make_client(server)
        with pytest.raises(StatementTimeout):
            client.execute("SELECT x FROM t")

    def test_fast_statement_passes(self):
        server = self.make_timed_server(elapsed=0.5)
        client = make_client(server)
        assert client.execute("SELECT x FROM t").rows == []

    def test_timeout_is_not_marked_transient(self):
        # retrying a timed-out DML could double-apply it
        server = self.make_timed_server(elapsed=5.0)
        connected = server.handle(protocol.connect_frame("a", "p"))
        response = server.handle(protocol.query_frame(
            connected["connection_id"], "SELECT x FROM t"))
        assert response["error_type"] == "StatementTimeout"
        assert not protocol.is_transient_error(response)


class TestClientRetry:
    def policy(self, **kwargs):
        delays = []
        kwargs.setdefault("base_delay", 0.01)
        policy = RetryPolicy(sleep=delays.append, **kwargs)
        return policy, delays

    def test_retries_transport_faults_until_success(self, server):
        injector = FaultInjector().fail_at("wire.send", occurrence=2,
                                          times=1).fail_at(
                                              "wire.send", occurrence=3,
                                              times=1)
        policy, delays = self.policy(max_attempts=4)
        client = DBClient(FlakyTransport(server.transport(), injector),
                          retry_policy=policy)
        client.connect()  # occurrence 1: clean
        assert client.query("SELECT x FROM t") == [(1,)]
        assert client.retries_performed == 2
        assert delays == [0.01, 0.02]  # exponential backoff

    def test_exhausted_retries_raise_transient_error(self, server):
        injector = FaultInjector()
        for occurrence in range(1, 10):
            injector.fail_at("wire.send", occurrence=occurrence, times=1)
        policy, delays = self.policy(max_attempts=3)
        client = DBClient(FlakyTransport(server.transport(), injector),
                          retry_policy=policy)
        with pytest.raises(TransientError):
            client.connect()
        assert len(delays) == 2  # max_attempts - 1 sleeps

    def test_no_policy_means_no_retry(self, server):
        injector = FaultInjector().fail_at("wire.send", occurrence=1)
        client = DBClient(FlakyTransport(server.transport(), injector))
        with pytest.raises(TransientError):
            client.connect()

    def test_transient_error_frames_are_retried(self, server):
        real = server.transport()
        failures = {"left": 2}

        def sometimes_transient(request_text):
            frame = protocol.decode_frame(request_text)
            if frame.get("frame") == "query" and failures["left"] > 0:
                failures["left"] -= 1
                return protocol.encode_frame(protocol.error_frame(
                    "TransientError", "busy", transient=True))
            return real(request_text)

        policy, delays = self.policy(max_attempts=4)
        client = DBClient(sometimes_transient, retry_policy=policy)
        client.connect()
        assert client.query("SELECT x FROM t") == [(1,)]
        assert client.retries_performed == 2

    def test_exhausted_transient_frames_raise(self, server):
        real = server.transport()

        def always_transient(request_text):
            frame = protocol.decode_frame(request_text)
            if frame.get("frame") == "query":
                return protocol.encode_frame(protocol.error_frame(
                    "TransientError", "busy", transient=True))
            return real(request_text)

        policy, _ = self.policy(max_attempts=2)
        client = DBClient(always_transient, retry_policy=policy)
        client.connect()
        with pytest.raises(TransientError):
            client.query("SELECT x FROM t")

    def test_non_transient_errors_are_never_retried(self, server):
        policy, delays = self.policy(max_attempts=5)
        client = make_client(server, retry_policy=policy)
        with pytest.raises(DatabaseError):
            client.execute("SELECT nope FROM no_such_table")
        assert delays == []

    def test_backoff_delay_is_capped(self):
        policy = RetryPolicy(base_delay=0.1, multiplier=10.0,
                             max_delay=0.5, sleep=lambda _: None)
        assert policy.delay_for(0) == pytest.approx(0.1)
        assert policy.delay_for(3) == pytest.approx(0.5)

    def test_default_policy_has_no_jitter(self):
        # the exact exponential sequence other tests assert on stays
        # exact unless jitter is explicitly enabled
        policy = RetryPolicy(base_delay=0.01, sleep=lambda _: None)
        assert policy.delay_for(0) == pytest.approx(0.01)
        assert policy.delay_for(1) == pytest.approx(0.02)

    def test_seeded_jitter_is_deterministic(self):
        def delays(seed):
            policy = RetryPolicy(base_delay=0.1, jitter=0.25,
                                 rng=random.Random(seed),
                                 sleep=lambda _: None)
            return [policy.delay_for(attempt) for attempt in range(6)]

        assert delays(7) == delays(7)
        assert delays(7) != delays(8)

    def test_jitter_stays_within_bounds(self):
        policy = RetryPolicy(base_delay=0.1, multiplier=1.0,
                             jitter=0.25, rng=random.Random(1),
                             sleep=lambda _: None)
        for attempt in range(50):
            assert 0.075 <= policy.delay_for(attempt) <= 0.125

    def test_retry_after_hint_floors_the_delay(self):
        policy = RetryPolicy(base_delay=0.01, sleep=lambda _: None)
        assert policy.delay_for(0, retry_after=0.5) == pytest.approx(0.5)
        # a hint smaller than the computed backoff changes nothing
        assert policy.delay_for(5, retry_after=0.001) \
            == pytest.approx(policy.delay_for(5))

    def test_run_transaction_backs_off_with_jitter(self, server):
        delays = []
        policy = RetryPolicy(max_attempts=4, base_delay=0.1,
                             multiplier=1.0, jitter=0.25,
                             rng=random.Random(3), sleep=delays.append)
        client = make_client(server, retry_policy=policy)
        attempts = {"count": 0}

        def body(txn_client):
            attempts["count"] += 1
            if attempts["count"] < 3:
                raise TransientError("synthetic conflict")
            txn_client.execute("INSERT INTO t VALUES (2)")

        client.run_transaction(body)
        assert attempts["count"] == 3
        assert client.transactions_retried == 2
        assert len(delays) == 2
        for delay in delays:
            assert 0.075 <= delay <= 0.125
        assert client.query("SELECT x FROM t ORDER BY x") == [(1,), (2,)]

    def test_seeded_wire_faults_reproduce(self, server):
        def run(seed):
            injector = FaultInjector(seed=seed).wire_fault_rate(
                0.4, limit=5)
            policy = RetryPolicy(max_attempts=10, sleep=lambda _: None)
            client = DBClient(
                FlakyTransport(server.transport(), injector),
                retry_policy=policy)
            client.connect()
            for _ in range(5):
                client.query("SELECT x FROM t")
            client.close()
            return client.retries_performed

        assert run(3) == run(3)
