"""Property-based tests: the SQL engine against a naive Python
reference implementation, on randomly generated tables and queries."""

import math

import pytest
from hypothesis import assume, given, settings, strategies as st

from repro.db import Database
from repro.db import parallel
from repro.db.sql.render import render_literal
from repro.db.storage import stable_hash


# ---------------------------------------------------------------------------
# random tables
# ---------------------------------------------------------------------------


@st.composite
def tables(draw):
    """A small random table: (rows of (k, v, tag))."""
    n = draw(st.integers(min_value=0, max_value=25))
    rows = []
    for i in range(n):
        k = draw(st.integers(-5, 5))
        v = draw(st.one_of(st.none(),
                           st.integers(-100, 100)))
        tag = draw(st.sampled_from(["red", "green", "blue", "red'ish"]))
        rows.append((i + 1, k, v, tag))
    return rows


def load(rows):
    database = Database()
    database.execute(
        "CREATE TABLE t (id integer PRIMARY KEY, k integer, "
        "v integer, tag text)")
    for row in rows:
        values = ", ".join(render_literal(value) for value in row)
        database.execute(f"INSERT INTO t VALUES ({values})")
    return database


class TestFilterProperties:
    @settings(max_examples=60, deadline=None)
    @given(tables(), st.integers(-5, 5))
    def test_filter_matches_reference(self, rows, bound):
        database = load(rows)
        got = database.query(f"SELECT id FROM t WHERE k > {bound} "
                             "ORDER BY id")
        expected = [(row[0],) for row in rows if row[1] > bound]
        assert got == expected

    @settings(max_examples=60, deadline=None)
    @given(tables(), st.integers(-5, 5), st.integers(-5, 5))
    def test_between_matches_reference(self, rows, lo, hi):
        database = load(rows)
        got = database.query(
            f"SELECT id FROM t WHERE k BETWEEN {lo} AND {hi} ORDER BY id")
        expected = [(row[0],) for row in rows if lo <= row[1] <= hi]
        assert got == expected

    @settings(max_examples=60, deadline=None)
    @given(tables())
    def test_null_never_matches_comparison(self, rows):
        database = load(rows)
        above = database.query("SELECT id FROM t WHERE v > 0")
        below = database.query("SELECT id FROM t WHERE v <= 0")
        nulls = database.query("SELECT id FROM t WHERE v IS NULL")
        assert len(above) + len(below) + len(nulls) == len(rows)

    @settings(max_examples=40, deadline=None)
    @given(tables(), st.sampled_from(["red", "green", "blue", "red'ish"]))
    def test_like_prefix_matches_reference(self, rows, tag):
        database = load(rows)
        prefix = tag[:2].replace("'", "''")
        got = database.query(
            f"SELECT id FROM t WHERE tag LIKE '{prefix}%' ORDER BY id")
        expected = [(row[0],) for row in rows
                    if row[3].startswith(tag[:2])]
        assert got == expected


class TestAggregateProperties:
    @settings(max_examples=60, deadline=None)
    @given(tables())
    def test_count_sum_avg_match_reference(self, rows):
        database = load(rows)
        (count, total, avg) = database.query(
            "SELECT count(v), sum(v), avg(v) FROM t")[0]
        values = [row[2] for row in rows if row[2] is not None]
        assert count == len(values)
        assert total == (sum(values) if values else None)
        if values:
            assert avg == pytest.approx(sum(values) / len(values))
        else:
            assert avg is None

    @settings(max_examples=60, deadline=None)
    @given(tables())
    def test_group_by_partitions_rows(self, rows):
        database = load(rows)
        groups = database.query(
            "SELECT k, count(*) FROM t GROUP BY k")
        assert sum(count for _k, count in groups) == len(rows)
        assert len({k for k, _count in groups}) == len(groups)
        expected_keys = {row[1] for row in rows}
        assert {k for k, _count in groups} == expected_keys

    @settings(max_examples=60, deadline=None)
    @given(tables())
    def test_min_max_bound_all_values(self, rows):
        database = load(rows)
        (lo, hi) = database.query("SELECT min(v), max(v) FROM t")[0]
        values = [row[2] for row in rows if row[2] is not None]
        if values:
            assert lo == min(values)
            assert hi == max(values)
        else:
            assert lo is None and hi is None

    @settings(max_examples=40, deadline=None)
    @given(tables())
    def test_having_is_post_group_filter(self, rows):
        database = load(rows)
        groups = database.query(
            "SELECT k, count(*) FROM t GROUP BY k HAVING count(*) >= 2")
        reference = {}
        for row in rows:
            reference[row[1]] = reference.get(row[1], 0) + 1
        expected = {(k, c) for k, c in reference.items() if c >= 2}
        assert set(groups) == expected


class TestQueryAlgebraProperties:
    @settings(max_examples=40, deadline=None)
    @given(tables(), st.integers(-5, 5))
    def test_filter_split_is_union(self, rows, bound):
        """σ(p) ∪ σ(¬p ∧ defined) covers the non-null domain."""
        database = load(rows)
        left = set(database.query(
            f"SELECT id FROM t WHERE k > {bound}"))
        right = set(database.query(
            f"SELECT id FROM t WHERE NOT k > {bound}"))
        everything = set(database.query("SELECT id FROM t"))
        assert left | right == everything
        assert left & right == set()

    @settings(max_examples=40, deadline=None)
    @given(tables())
    def test_distinct_removes_duplicates_only(self, rows):
        database = load(rows)
        distinct = database.query("SELECT DISTINCT k FROM t")
        plain = database.query("SELECT k FROM t")
        assert set(distinct) == set(plain)
        assert len(distinct) == len(set(plain))

    @settings(max_examples=40, deadline=None)
    @given(tables(), st.integers(0, 5), st.integers(0, 5))
    def test_limit_offset_windows_ordered_output(self, rows, limit,
                                                 offset):
        database = load(rows)
        full = database.query("SELECT id FROM t ORDER BY id")
        window = database.query(
            f"SELECT id FROM t ORDER BY id LIMIT {limit} OFFSET {offset}")
        assert window == full[offset:offset + limit]

    @settings(max_examples=40, deadline=None)
    @given(tables())
    def test_order_by_sorts_with_nulls_last(self, rows):
        database = load(rows)
        ordered = [v for (v,) in database.query(
            "SELECT v FROM t ORDER BY v")]
        non_null = [v for v in ordered if v is not None]
        assert non_null == sorted(non_null)
        # NULLs sort last in ascending order
        if None in ordered:
            first_null = ordered.index(None)
            assert all(v is None for v in ordered[first_null:])


class TestLineageProperties:
    @settings(max_examples=40, deadline=None)
    @given(tables(), st.integers(-5, 5))
    def test_lineage_covers_exactly_matching_rows(self, rows, bound):
        database = load(rows)
        result = database.execute(
            f"SELECT id FROM t WHERE k > {bound}", provenance=True)
        matched_ids = {row[0] for row in rows if row[1] > bound}
        lineage_rowids = {ref.rowid for lineage in result.lineages
                          for ref in lineage}
        # rowids are assigned in insert order == id order here
        assert lineage_rowids == {
            i + 1 for i, row in enumerate(rows) if row[1] > bound}
        assert {row[0] for row in result.rows} == matched_ids

    @settings(max_examples=40, deadline=None)
    @given(tables())
    def test_aggregate_lineage_is_union_of_groups(self, rows):
        database = load(rows)
        result = database.execute(
            "SELECT k, count(*) FROM t GROUP BY k", provenance=True)
        all_lineage = set()
        for lineage in result.lineages:
            assert lineage  # every group read at least one row
            all_lineage |= lineage
        assert len(all_lineage) == len(rows)

    @settings(max_examples=30, deadline=None)
    @given(tables(), st.integers(-5, 5))
    def test_update_provenance_links_old_to_new(self, rows, bound):
        database = load(rows)
        result = database.execute(
            f"UPDATE t SET v = 0 WHERE k > {bound}")
        assert result.rowcount == sum(1 for row in rows
                                      if row[1] > bound)
        for new_ref, deps in result.written_lineage.items():
            (old_ref,) = deps
            assert old_ref.rowid == new_ref.rowid
            assert old_ref.version < new_ref.version


@pytest.mark.parallel
class TestPartitionProperties:
    @settings(max_examples=60, deadline=None)
    @given(tables(), st.sampled_from(["k", "v", "tag"]),
           st.integers(1, 6))
    def test_hash_assignment_is_total_stable_and_in_range(
            self, rows, column, count):
        database = load(rows)
        table = database.catalog.get_table("t")
        table.set_partitioning(column, count)
        first = {rowid: table.partition_of(table.rows[rowid])
                 for rowid in table.rows}
        assert all(0 <= p < count for p in first.values())
        # stable: asking again (and a fresh identically-built heap)
        # assigns every row to the same bucket
        twin = load(rows)
        twin_table = twin.catalog.get_table("t")
        twin_table.set_partitioning(column, count)
        for rowid, partition in first.items():
            assert table.partition_of(table.rows[rowid]) == partition
            assert twin_table.partition_of(
                twin_table.rows[rowid]) == partition
        buckets = table.partition_rowids()
        flat = sorted(r for bucket in buckets for r in bucket)
        assert flat == sorted(table.rows)  # total: no row lost or doubled

    @settings(max_examples=20, deadline=None)
    @given(st.one_of(st.none(), st.integers(-100, 100),
                     st.floats(allow_nan=False, allow_infinity=False),
                     st.text(max_size=20)))
    def test_stable_hash_is_pure(self, value):
        assert stable_hash(value) == stable_hash(value)
        assert stable_hash(value) >= 0

    @settings(max_examples=40, deadline=None)
    @given(tables(), st.integers(1, 5), st.integers(1, 5))
    def test_repartitioning_round_trips_the_heap(self, rows, first,
                                                 second):
        database = load(rows)
        baseline = database.query("SELECT id, k, v, tag FROM t")
        table = database.catalog.get_table("t")
        for step in (("k", first), ("tag", second), None):
            if step is None:
                table.clear_partitioning()
            else:
                table.set_partitioning(*step)
            assert database.query(
                "SELECT id, k, v, tag FROM t") == baseline
        assert table.partition_spec is None

    @settings(max_examples=30, deadline=None)
    @given(tables(), st.integers(-5, 5), st.integers(1, 4))
    def test_parallel_lineage_concats_to_serial(self, rows, bound,
                                                count):
        database = load(rows)
        sql = f"SELECT id, k FROM t WHERE k > {bound}"
        baseline = database.execute(sql, provenance=True)
        database.set_table_partitioning("t", "k", count)
        for workers in (2, 4):
            database.set_parallel_workers(
                workers, pool_factory=parallel.InProcessPool,
                min_rows=0)
            result = database.execute(sql, provenance=True)
            assert result.rows == baseline.rows
            assert result.lineages == baseline.lineages

    @settings(max_examples=30, deadline=None)
    @given(tables(), st.integers(1, 4), st.integers(2, 4))
    def test_parallel_aggregates_match_serial(self, rows, count,
                                              workers):
        database = load(rows)
        sql = ("SELECT k, count(*), count(v), sum(v), min(v), max(v) "
               "FROM t GROUP BY k")
        baseline = database.query(sql)
        database.set_table_partitioning("t", "tag", count)
        database.set_parallel_workers(
            workers, pool_factory=parallel.InProcessPool, min_rows=0)
        assert database.query(sql) == baseline
