"""VersionManager (Section VII-B bookkeeping) and CSV I/O tests."""

import pytest

from repro.db import Database
from repro.db import csvio
from repro.db.provtypes import TupleRef
from repro.db.types import Column, Schema, SQLType
from repro.db.versioning import VersionManager
from repro.errors import ExecutionError


@pytest.fixture
def db():
    database = Database()
    database.execute("CREATE TABLE t (x integer, s text)")
    database.execute("INSERT INTO t VALUES (1, 'a'), (2, 'b'), (3, 'c')")
    return database


class TestVersionManager:
    def test_enable_stamps_every_tuple(self, db):
        manager = VersionManager(db)
        assert manager.enable("t") == 3
        assert manager.is_enabled("t")

    def test_enable_is_idempotent(self, db):
        manager = VersionManager(db)
        manager.enable("t")
        assert manager.enable("t") == 0

    def test_ensure_enabled_multiple(self, db):
        db.execute("CREATE TABLE u (y integer)")
        db.execute("INSERT INTO u VALUES (1)")
        manager = VersionManager(db)
        assert manager.ensure_enabled(["t", "u"]) == 4
        assert manager.enabled_tables == frozenset({"t", "u"})

    def test_mark_used_records_stamp(self, db):
        manager = VersionManager(db)
        manager.enable("t")
        ref = TupleRef("t", 1, db.catalog.get_table("t").version_of(1))
        manager.mark_used([ref], "q1", "p1")
        assert ("q1", "p1") in manager.used_by(ref)

    def test_mark_used_accumulates(self, db):
        manager = VersionManager(db)
        ref = TupleRef("t", 1, 1)
        manager.mark_used([ref], "q1", "p1")
        manager.mark_used([ref], "q2", "p1")
        assert len(manager.used_by(ref)) == 2

    def test_all_used_refs_only_lists_stamped(self, db):
        manager = VersionManager(db)
        manager.enable("t")  # stamps with empty sets
        assert manager.all_used_refs() == []
        ref = TupleRef("t", 2, db.catalog.get_table("t").version_of(2))
        manager.mark_used([ref], "q", "p")
        assert manager.all_used_refs() == [ref]

    def test_unknown_ref_has_no_stamps(self, db):
        manager = VersionManager(db)
        assert manager.used_by(TupleRef("t", 99, 1)) == frozenset()


SCHEMA = Schema([
    Column("x", SQLType.INTEGER),
    Column("f", SQLType.FLOAT),
    Column("s", SQLType.TEXT),
    Column("b", SQLType.BOOLEAN),
])


class TestCsvIO:
    def test_round_trip(self):
        rows = [(1, 2.5, "hi", True), (2, -1.0, "a,b", False)]
        text = csvio.format_rows(rows, SCHEMA)
        assert csvio.parse_rows(text, SCHEMA) == rows

    def test_round_trip_with_header(self):
        rows = [(1, 1.0, "x", True)]
        text = csvio.format_rows(rows, SCHEMA, header=True)
        assert text.splitlines()[0] == "x,f,s,b"
        assert csvio.parse_rows(text, SCHEMA, header=True) == rows

    def test_null_round_trip(self):
        rows = [(None, None, None, None)]
        text = csvio.format_rows(rows, SCHEMA)
        assert csvio.parse_rows(text, SCHEMA) == rows

    def test_custom_delimiter(self):
        rows = [(1, 1.0, "x|y", True)]
        text = csvio.format_rows(rows, SCHEMA, delimiter="|")
        assert csvio.parse_rows(text, SCHEMA, delimiter="|") == rows

    def test_arity_mismatch_raises(self):
        with pytest.raises(ExecutionError):
            csvio.parse_rows("1,2\n", SCHEMA)

    def test_versioned_round_trip(self):
        triples = [(1, 10, (1, 2.5, "a", True)),
                   (2, 20, (None, None, None, None))]
        text = csvio.format_versioned_rows(triples, SCHEMA)
        assert list(csvio.parse_versioned_rows(text, SCHEMA)) == triples

    def test_versioned_arity_mismatch_raises(self):
        with pytest.raises(ExecutionError):
            list(csvio.parse_versioned_rows("1,2,3\n", SCHEMA))

    def test_empty_text_parses_to_nothing(self):
        assert csvio.parse_rows("", SCHEMA) == []
        assert list(csvio.parse_versioned_rows("", SCHEMA)) == []
