"""Repeatability as a property: for randomly generated applications,
replayed outputs must equal the original outputs byte-for-byte, in
both packaging modes."""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core import ldv_audit, ldv_exec
from repro.db import Database, DBServer
from repro.vos import VirtualOS

SERVER_BINARIES = ["/usr/lib/dbms/postgres"]


# ---------------------------------------------------------------------------
# random applications: a sequence of DB actions + file writes
# ---------------------------------------------------------------------------


@st.composite
def programs(draw):
    """A random but well-formed application: a list of actions."""
    n = draw(st.integers(min_value=1, max_value=8))
    actions = []
    next_id = 1000
    for _ in range(n):
        kind = draw(st.sampled_from(
            ["insert", "select", "sum", "update", "delete", "write"]))
        if kind == "insert":
            actions.append(("insert", next_id,
                            draw(st.integers(-50, 50))))
            next_id += 1
        elif kind == "select":
            actions.append(("select", draw(st.integers(-20, 20))))
        elif kind == "sum":
            actions.append(("sum",))
        elif kind == "update":
            actions.append(("update", draw(st.integers(-20, 20)),
                            draw(st.integers(-5, 5))))
        elif kind == "delete":
            actions.append(("delete", draw(st.integers(30, 50))))
        else:
            actions.append(("write", draw(st.integers(0, 3))))
    return actions


def make_app(actions):
    def app(ctx):
        client = ctx.connect_db("main")
        outputs = []
        for action in actions:
            if action[0] == "insert":
                client.execute(
                    f"INSERT INTO t VALUES ({action[1]}, {action[2]})")
            elif action[0] == "select":
                rows = client.execute(
                    f"SELECT id FROM t WHERE v > {action[1]} "
                    "ORDER BY id").rows
                outputs.append(f"select:{len(rows)}")
            elif action[0] == "sum":
                (total,) = client.execute(
                    "SELECT sum(v) FROM t").rows[0]
                outputs.append(f"sum:{total}")
            elif action[0] == "update":
                result = client.execute(
                    f"UPDATE t SET v = v + {action[2]} "
                    f"WHERE v > {action[1]}")
                outputs.append(f"update:{result.rowcount}")
            elif action[0] == "delete":
                result = client.execute(
                    f"DELETE FROM t WHERE id = {action[1]}")
                outputs.append(f"delete:{result.rowcount}")
            else:
                ctx.write_file(f"/out/file{action[1]}.txt",
                               "|".join(outputs))
        ctx.write_file("/out/final.txt", "|".join(outputs))
        client.close()
        return 0
    return app


def build_world(app):
    vos = VirtualOS()
    database = Database(clock=vos.clock)
    database.execute(
        "CREATE TABLE t (id integer PRIMARY KEY, v integer)")
    database.execute(
        "INSERT INTO t VALUES (1, 10), (2, -3), (3, 25), (4, 0), "
        "(5, 40), (6, -17)")
    vos.register_db_server("main", DBServer(database).transport())
    vos.fs.write_file(SERVER_BINARIES[0], b"\x7fELF" + b"\0" * 1024,
                      create_parents=True)
    vos.register_program("/bin/app", app)
    return vos, database


def collect_outputs(vos):
    if not vos.fs.exists("/out"):
        return {}
    return {path: vos.fs.read_file(path)
            for path in vos.fs.all_files("/out")}


class TestRoundTripProperties:
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(programs())
    def test_server_excluded_round_trip(self, tmp_path_factory, actions):
        tmp_path = tmp_path_factory.mktemp("rt-excl")
        app = make_app(actions)
        vos, database = build_world(app)
        ldv_audit(vos, "/bin/app", tmp_path / "pkg",
                  mode="server-excluded", database=database,
                  server_name="main")
        original = collect_outputs(vos)
        result = ldv_exec(tmp_path / "pkg", {"/bin/app": app})
        for path, content in original.items():
            assert result.outputs.get(path) == content

    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(programs())
    def test_server_included_round_trip(self, tmp_path_factory, actions):
        tmp_path = tmp_path_factory.mktemp("rt-incl")
        app = make_app(actions)
        vos, database = build_world(app)
        ldv_audit(vos, "/bin/app", tmp_path / "pkg",
                  mode="server-included", database=database,
                  server_name="main",
                  server_binary_paths=SERVER_BINARIES)
        original = collect_outputs(vos)
        result = ldv_exec(tmp_path / "pkg", {"/bin/app": app},
                          scratch_dir=tmp_path / "scratch")
        for path, content in original.items():
            assert result.outputs.get(path) == content

    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(programs())
    def test_relevance_streaming_equals_trace_based(self,
                                                    tmp_path_factory,
                                                    actions):
        """The audit-time streaming collector must agree with the
        declarative trace-based computation (Section VII-D)."""
        from repro.core import relevant_tuple_versions
        tmp_path = tmp_path_factory.mktemp("rt-rel")
        app = make_app(actions)
        vos, database = build_world(app)
        report = ldv_audit(vos, "/bin/app", tmp_path / "pkg",
                           mode="server-included", database=database,
                           server_name="main",
                           server_binary_paths=SERVER_BINARIES)
        streamed = report.session.relevant_tuples.refs()
        declarative = relevant_tuple_versions(report.session.trace)
        assert streamed == declarative

    @settings(max_examples=10, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(programs())
    def test_replay_is_idempotent(self, tmp_path_factory, actions):
        tmp_path = tmp_path_factory.mktemp("rt-idem")
        app = make_app(actions)
        vos, database = build_world(app)
        ldv_audit(vos, "/bin/app", tmp_path / "pkg",
                  mode="server-included", database=database,
                  server_name="main",
                  server_binary_paths=SERVER_BINARIES)
        first = ldv_exec(tmp_path / "pkg", {"/bin/app": app},
                         scratch_dir=tmp_path / "s1")
        second = ldv_exec(tmp_path / "pkg", {"/bin/app": app},
                          scratch_dir=tmp_path / "s2")
        assert first.outputs == second.outputs
        assert first.restored_tuples == second.restored_tuples
