"""TPC-H substrate tests: dbgen determinism, Table II selectivities,
refresh streams."""

import pytest

from repro.db import Database
from repro.workloads.tpch.dbgen import (
    TPCHConfig,
    TPCHGenerator,
    customer_name,
)
from repro.workloads.tpch.queries import (
    SUPPLIER_SELECTIVITIES,
    ZERO_RUNS,
    supplier_param,
    table2_variants,
    variant_by_id,
    zero_run_selectivity,
)
from repro.workloads.tpch.refresh import insert_statements, update_statements

CONFIG = TPCHConfig(scale_factor=0.001)


@pytest.fixture(scope="module")
def loaded():
    database = Database()
    generator = TPCHGenerator(CONFIG)
    counts = generator.generate_into(database)
    return database, generator, counts


class TestDbgen:
    def test_cardinalities_scale(self, loaded):
        _db, _gen, counts = loaded
        assert counts["customer"] == CONFIG.n_customers == 150
        assert counts["orders"] == CONFIG.n_orders == 1500
        assert counts["region"] == 5
        assert counts["nation"] == 25
        # ~4 lineitems per order on average
        assert 3000 < counts["lineitem"] < 6200

    def test_supplier_floor_keeps_selectivities_distinct(self):
        assert CONFIG.n_suppliers == 100
        params = [supplier_param(CONFIG, sel)
                  for sel in SUPPLIER_SELECTIVITIES]
        assert params == sorted(set(params))  # all distinct

    def test_determinism(self):
        first = Database()
        second = Database()
        TPCHGenerator(CONFIG).generate_into(first)
        TPCHGenerator(CONFIG).generate_into(second)
        for table in ("customer", "orders", "lineitem"):
            assert list(first.catalog.get_table(table).scan()) == \
                list(second.catalog.get_table(table).scan())

    def test_different_seed_differs(self):
        first = Database()
        second = Database()
        TPCHGenerator(CONFIG).generate_into(first)
        TPCHGenerator(TPCHConfig(scale_factor=0.001,
                                 seed=1)).generate_into(second)
        assert list(first.catalog.get_table("orders").scan()) != \
            list(second.catalog.get_table("orders").scan())

    def test_customer_name_padding(self):
        assert customer_name(42, 9) == "Customer#000000042"

    def test_sf1_width_matches_spec(self):
        assert TPCHConfig(scale_factor=1.0).customer_name_width == 9

    def test_pk_integrity(self, loaded):
        db, _gen, _counts = loaded
        # primary keys loaded without violation; spot-check uniqueness
        rows = db.query("SELECT count(*) FROM orders")
        distinct = db.query("SELECT count(DISTINCT o_orderkey) FROM orders")
        assert rows == distinct

    def test_foreign_key_ranges(self, loaded):
        db, _gen, _counts = loaded
        (bad,) = db.query(
            "SELECT count(*) FROM lineitem WHERE l_orderkey < 1 OR "
            f"l_orderkey > {CONFIG.n_orders}")[0]
        assert bad == 0
        (bad_supp,) = db.query(
            "SELECT count(*) FROM lineitem WHERE l_suppkey < 1 OR "
            f"l_suppkey > {CONFIG.n_suppliers}")[0]
        assert bad_supp == 0


class TestTable2Selectivities:
    def test_eighteen_variants(self):
        variants = table2_variants(CONFIG)
        assert len(variants) == 18
        assert [v.query_id for v in variants][:6] == [
            "Q1-1", "Q1-2", "Q1-3", "Q1-4", "Q1-5", "Q2-1"]

    def test_q1_measured_selectivity(self, loaded):
        db, _gen, counts = loaded
        for index, target in enumerate(SUPPLIER_SELECTIVITIES, 1):
            variant = variant_by_id(CONFIG, f"Q1-{index}")
            rows = db.query(variant.sql)
            measured = len(rows) / counts["lineitem"]
            assert measured == pytest.approx(target, rel=0.35), \
                f"{variant.query_id}: {measured} vs {target}"

    def test_q1_selectivities_increase(self, loaded):
        db, _gen, _counts = loaded
        sizes = [len(db.query(variant_by_id(CONFIG, f"Q1-{i}").sql))
                 for i in range(1, 6)]
        assert sizes == sorted(sizes)
        assert sizes[0] < sizes[-1]

    def test_q2_zero_run_monotone(self, loaded):
        db, _gen, _counts = loaded
        sizes = [len(db.query(variant_by_id(CONFIG, f"Q2-{i}").sql))
                 for i in range(1, 5)]
        # more zeros = more selective: Q2-1 (7 zeros) smallest
        assert sizes == sorted(sizes)
        assert sizes[-1] > 0

    def test_q2_matches_predicted_selectivity(self, loaded):
        db, _gen, _counts = loaded
        total = db.query("SELECT count(*) FROM customer")[0][0]
        for index, zero_run in enumerate(ZERO_RUNS, 1):
            predicted = zero_run_selectivity(CONFIG, zero_run)
            pattern = "0" * zero_run
            (matched,) = db.query(
                "SELECT count(*) FROM customer WHERE c_name LIKE "
                f"'%{pattern}%'")[0]
            assert matched / total == pytest.approx(predicted, abs=0.01)

    def test_q3_returns_single_row(self, loaded):
        db, _gen, _counts = loaded
        for index in range(1, 5):
            rows = db.query(variant_by_id(CONFIG, f"Q3-{index}").sql)
            assert len(rows) == 1

    def test_q4_group_count_tracks_selectivity(self, loaded):
        db, _gen, _counts = loaded
        sizes = [len(db.query(variant_by_id(CONFIG, f"Q4-{i}").sql))
                 for i in range(1, 6)]
        assert sizes == sorted(sizes)

    def test_unknown_variant_raises(self):
        with pytest.raises(KeyError):
            variant_by_id(CONFIG, "Q9-9")


class TestRefreshStreams:
    def test_insert_statements_apply_cleanly(self, loaded):
        db, generator, _counts = loaded
        fresh = Database()
        TPCHGenerator(CONFIG).generate_into(fresh)
        for sql in insert_statements(generator, 20,
                                     start_key=CONFIG.n_orders + 1):
            fresh.execute(sql)
        assert fresh.query("SELECT count(*) FROM orders") == [
            (CONFIG.n_orders + 20,)]

    def test_insert_keys_do_not_collide(self, loaded):
        _db, generator, _counts = loaded
        statements = insert_statements(generator, 10,
                                       start_key=CONFIG.n_orders + 1)
        assert len(statements) == 10
        assert all("INSERT INTO orders" in sql for sql in statements)

    def test_update_statements_touch_distinct_orders(self, loaded):
        _db, generator, _counts = loaded
        statements = update_statements(generator, 10)
        keys = {sql.rsplit("= ", 1)[1] for sql in statements}
        assert len(keys) == 10

    def test_update_statements_apply(self, loaded):
        _db, generator, _counts = loaded
        fresh = Database()
        TPCHGenerator(CONFIG).generate_into(fresh)
        before = fresh.query(
            "SELECT o_totalprice FROM orders WHERE o_orderkey = 1")
        fresh.execute(update_statements(generator, 1)[0])
        after = fresh.query(
            "SELECT o_totalprice FROM orders WHERE o_orderkey = 1")
        assert after[0][0] == pytest.approx(before[0][0] * 1.01)
