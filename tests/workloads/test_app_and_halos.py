"""Tests for the Section IX-A benchmark application and the halo
finder example workload."""

import pytest

from repro.core import ldv_audit, ldv_exec
from repro.monitor import AuditSession
from repro.workloads import halos
from repro.workloads.app import (
    APP_BINARY,
    INSERT_BINARY,
    INSERT_FILE,
    QUERY_FILE,
    RESULT_FILE,
    SELECT_BINARY,
    UPDATE_BINARY,
    UPDATE_FILE,
    build_scenario,
    build_world,
)
from repro.workloads.tpch.queries import variant_by_id


@pytest.fixture(scope="module")
def world():
    return build_world(scale_factor=0.001, insert_count=10,
                       update_count=5)


class TestBenchmarkWorld:
    def test_tables_loaded(self, world):
        assert world.row_counts["orders"] == 1500
        assert world.database.catalog.has_table("lineitem")

    def test_statement_files_written(self, world):
        fs = world.vos.fs
        assert len(fs.read_text(INSERT_FILE).splitlines()) == 10
        assert len(fs.read_text(UPDATE_FILE).splitlines()) == 5
        assert world.variant.sql in fs.read_text(QUERY_FILE)

    def test_server_binaries_exist(self, world):
        for path in world.server_binary_paths:
            assert world.vos.fs.is_file(path)
        assert world.vos.fs.size_of(world.server_binary_paths[0]) > 1 << 20

    def test_programs_registered(self, world):
        for binary in (APP_BINARY, INSERT_BINARY, SELECT_BINARY,
                       UPDATE_BINARY):
            assert world.vos.has_program(binary)

    def test_registry_covers_programs(self, world):
        assert set(world.registry) == {
            APP_BINARY, INSERT_BINARY, SELECT_BINARY, UPDATE_BINARY}


class TestStepPrograms:
    def test_insert_step_adds_orders(self):
        world = build_world(scale_factor=0.001, insert_count=10,
                            update_count=5)
        before = world.database.query("SELECT count(*) FROM orders")[0][0]
        process = world.vos.run(INSERT_BINARY)
        assert process.exit_code == 0
        after = world.database.query("SELECT count(*) FROM orders")[0][0]
        assert after == before + 10

    def test_select_step_writes_result_counts(self):
        world = build_world(scale_factor=0.001, insert_count=5,
                            update_count=5)
        process = world.vos.run(SELECT_BINARY, ["3"])
        assert process.exit_code == 0
        lines = world.vos.fs.read_text(RESULT_FILE).splitlines()
        assert len(lines) == 3
        assert len(set(lines)) == 1  # deterministic query

    def test_update_step_changes_totals(self):
        world = build_world(scale_factor=0.001, insert_count=5,
                            update_count=5)
        before = world.database.query(
            "SELECT o_totalprice FROM orders WHERE o_orderkey = 1")[0][0]
        world.vos.run(UPDATE_BINARY)
        after = world.database.query(
            "SELECT o_totalprice FROM orders WHERE o_orderkey = 1")[0][0]
        assert after == pytest.approx(before * 1.01)

    def test_full_app_runs_three_children(self):
        world = build_world(scale_factor=0.001, insert_count=5,
                            update_count=5)
        process = world.vos.run(APP_BINARY, ["2"])
        assert process.exit_code == 0
        children = world.vos.processes.children_of(process.pid)
        assert [child.binary for child in children] == [
            INSERT_BINARY, SELECT_BINARY, UPDATE_BINARY]

    def test_app_round_trip_server_excluded(self, tmp_path):
        world = build_world(scale_factor=0.001, insert_count=5,
                            update_count=5)
        ldv_audit(world.vos, APP_BINARY, tmp_path / "pkg",
                  mode="server-excluded", argv=["2"],
                  database=world.database,
                  server_name=world.server_name)
        original = world.vos.fs.read_file(RESULT_FILE)
        result = ldv_exec(tmp_path / "pkg", world.registry)
        assert result.outputs[RESULT_FILE] == original

    def test_variant_selection_changes_query(self):
        from repro.workloads.tpch.dbgen import TPCHConfig
        config = TPCHConfig(scale_factor=0.001)
        variant = variant_by_id(config, "Q3-1")
        world = build_world(scale_factor=0.001, variant=variant,
                            insert_count=5, update_count=5)
        world.vos.run(SELECT_BINARY, ["1"])
        lines = world.vos.fs.read_text(RESULT_FILE).splitlines()
        assert lines == ["1"]  # Q3 returns one row

    def test_build_scenario_for_cli(self):
        scenario = build_scenario()
        assert scenario.entry_binary == APP_BINARY
        assert scenario.database is not None
        assert APP_BINARY in scenario.registry


class TestHaloWorkload:
    @pytest.fixture(scope="class")
    def halo_world(self):
        return halos.build_world(n_particles=300, n_observations=200)

    def test_pipeline_confirms_halos(self, halo_world):
        process = halo_world.vos.run(halos.PIPELINE_BINARY)
        assert process.exit_code == 0
        report = halo_world.vos.fs.read_text(halos.RESULT_FILE)
        assert report.splitlines()[0].startswith("halo_id")
        assert len(report.splitlines()) > 1

    def test_candidates_inserted(self, halo_world):
        count = halo_world.database.query(
            "SELECT count(*) FROM candidates")[0][0]
        assert count > 0

    def test_only_joined_observations_relevant(self, tmp_path):
        world = halos.build_world(n_particles=300, n_observations=200)
        report = ldv_audit(
            world.vos, halos.PIPELINE_BINARY, tmp_path / "pkg",
            mode="server-included", database=world.database,
            server_name=world.server_name,
            server_binary_paths=world.server_binary_paths)
        assert 0 < report.packaging.tuple_count < world.n_observations
        # all relevant tuples are observations, never app candidates
        tables = {ref.table
                  for ref in report.session.relevant_tuples.refs()}
        assert tables == {"observations"}

    def test_halo_replay_round_trip(self, tmp_path):
        world = halos.build_world(n_particles=300, n_observations=200)
        ldv_audit(world.vos, halos.PIPELINE_BINARY, tmp_path / "pkg",
                  mode="server-included", database=world.database,
                  server_name=world.server_name,
                  server_binary_paths=world.server_binary_paths)
        original = world.vos.fs.read_file(halos.RESULT_FILE)
        result = ldv_exec(tmp_path / "pkg", world.registry,
                          scratch_dir=tmp_path / "scratch")
        assert result.outputs[halos.RESULT_FILE] == original

    def test_deterministic_world(self):
        first = halos.build_world(seed=3)
        second = halos.build_world(seed=3)
        assert first.vos.fs.read_file(halos.SIMULATION_FILE) == \
            second.vos.fs.read_file(halos.SIMULATION_FILE)
