"""Shared fixtures: a small DB application world for core tests."""

import pytest

from repro.db import Database, DBServer
from repro.vos import VirtualOS

SERVER_BINARIES = ["/usr/lib/dbms/postgres", "/usr/lib/dbms/libperm.so"]


def sales_app(ctx):
    """Reads a file, inserts, queries, updates, writes results."""
    ctx.read_text("/data/config.txt")
    client = ctx.connect_db("main")
    client.execute("INSERT INTO sales VALUES (100, 50.0, 'new')")
    rows = client.execute(
        "SELECT sum(price) FROM sales WHERE price > 10").rows
    client.execute("UPDATE sales SET region = 'x' WHERE id = 2")
    count = client.execute("SELECT count(*) FROM sales").rows
    ctx.write_file("/data/report.txt", f"{rows[0][0]}|{count[0][0]}\n")
    client.close()
    return 0


class World:
    def __init__(self, data_dir=None):
        self.vos = VirtualOS()
        self.database = Database(data_directory=data_dir,
                                 clock=self.vos.clock)
        self.database.execute(
            "CREATE TABLE sales (id integer PRIMARY KEY, "
            "price float, region text)")
        self.database.execute(
            "INSERT INTO sales VALUES (1, 5, 'east'), (2, 11, 'west'), "
            "(3, 14, 'west'), (4, 2, 'north')")
        if data_dir is not None:
            self.database.checkpoint()
        self.server = DBServer(self.database)
        self.vos.register_db_server("main", self.server.transport())
        self.vos.fs.write_file("/data/config.txt", b"threshold=10\n",
                               create_parents=True)
        for path in SERVER_BINARIES:
            self.vos.fs.write_file(path, b"\x7fELF" + b"\0" * 4096,
                                   create_parents=True)
        self.registry = {"/bin/app": sales_app}
        self.vos.register_program("/bin/app", sales_app)


@pytest.fixture
def world(tmp_path):
    return World(data_dir=tmp_path / "pgdata")


@pytest.fixture
def memory_world():
    return World()
