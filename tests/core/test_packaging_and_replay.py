"""Audit → package → replay round trips, relevance validation,
partial re-execution, and failure injection."""

import json

import pytest

from repro.core import ldv_audit, ldv_exec, relevant_tuple_versions
from repro.core.package import Package, PackageKind
from repro.core.replay import ReplaySession, normalize_sql
from repro.db.provtypes import TupleRef
from repro.errors import (
    AuditError,
    PackageError,
    ReplayError,
    ReplayMismatchError,
)
from repro.monitor import AuditSession

from tests.core.conftest import SERVER_BINARIES, sales_app


def audit_included(world, out_dir, argv=None):
    return ldv_audit(world.vos, "/bin/app", out_dir,
                     mode="server-included", argv=argv,
                     database=world.database, server_name="main",
                     server_binary_paths=SERVER_BINARIES)


def audit_excluded(world, out_dir):
    return ldv_audit(world.vos, "/bin/app", out_dir,
                     mode="server-excluded", database=world.database,
                     server_name="main")


class TestServerIncludedRoundTrip:
    def test_replay_reproduces_outputs(self, world, tmp_path):
        report = audit_included(world, tmp_path / "pkg")
        original = world.vos.fs.read_file("/data/report.txt")
        result = ldv_exec(tmp_path / "pkg", world.registry,
                          scratch_dir=tmp_path / "scratch")
        assert result.outputs["/data/report.txt"] == original
        assert result.process.exit_code == 0

    def test_package_contents_match_table3(self, world, tmp_path):
        audit_included(world, tmp_path / "pkg")
        summary = Package.load(tmp_path / "pkg").contents_summary()
        assert summary == {
            "software_binaries": True,
            "db_server": True,
            "full_data_files": False,
            "empty_data_dir": True,
            "db_provenance": True,
        }

    def test_only_relevant_tuples_shipped(self, world, tmp_path):
        report = audit_included(world, tmp_path / "pkg")
        # count(*) reads all 4 pre-existing rows; all are relevant;
        # the app-inserted row 100 and updated version are not
        assert report.packaging.tuple_count == 4
        package = Package.load(tmp_path / "pkg")
        restore = package.read_text("db/restore/sales.csv")
        assert "new" not in restore  # app-created tuple excluded

    def test_streaming_relevance_matches_trace_relevance(
            self, world, tmp_path):
        report = audit_included(world, tmp_path / "pkg")
        streamed = report.session.relevant_tuples.refs()
        declarative = relevant_tuple_versions(report.session.trace)
        assert streamed == declarative

    def test_replay_restores_original_rowids_and_versions(
            self, world, tmp_path):
        audit_included(world, tmp_path / "pkg")
        session = ReplaySession(tmp_path / "pkg", world.registry,
                                scratch_dir=tmp_path / "scratch")
        session.prepare()
        heap = session.database.catalog.get_table("sales")
        assert set(heap.rows) == {1, 2, 3, 4}
        assert heap.get(2) == (2, 11.0, "west")  # pre-update version

    def test_replay_does_not_touch_source_database(self, world, tmp_path):
        audit_included(world, tmp_path / "pkg")
        before = world.database.query("SELECT count(*) FROM sales")
        ldv_exec(tmp_path / "pkg", world.registry,
                 scratch_dir=tmp_path / "scratch")
        assert world.database.query(
            "SELECT count(*) FROM sales") == before

    def test_replay_twice_from_same_package(self, world, tmp_path):
        audit_included(world, tmp_path / "pkg")
        first = ldv_exec(tmp_path / "pkg", world.registry,
                         scratch_dir=tmp_path / "s1")
        second = ldv_exec(tmp_path / "pkg", world.registry,
                          scratch_dir=tmp_path / "s2")
        assert first.outputs == second.outputs

    def test_schema_sql_recreates_constraints(self, world, tmp_path):
        audit_included(world, tmp_path / "pkg")
        schema = Package.load(tmp_path / "pkg").read_text("db/schema.sql")
        assert "PRIMARY KEY" in schema
        assert "sales" in schema

    def test_trace_shipped_and_loadable(self, world, tmp_path):
        audit_included(world, tmp_path / "pkg")
        from repro.provenance import ExecutionTrace, COMBINED_MODEL
        data = Package.load(tmp_path / "pkg").read_trace()
        trace = ExecutionTrace.from_json(data, COMBINED_MODEL)
        assert trace.activities("process")
        assert trace.activities("query")


class TestServerExcludedRoundTrip:
    def test_replay_reproduces_outputs(self, memory_world, tmp_path):
        world = memory_world
        audit_excluded(world, tmp_path / "pkg")
        original = world.vos.fs.read_file("/data/report.txt")
        result = ldv_exec(tmp_path / "pkg", world.registry)
        assert result.outputs["/data/report.txt"] == original
        assert result.replayed_statements == 4

    def test_no_server_in_package(self, memory_world, tmp_path):
        audit_excluded(memory_world, tmp_path / "pkg")
        summary = Package.load(tmp_path / "pkg").contents_summary()
        assert summary["db_server"] is False
        assert summary["full_data_files"] is False
        assert summary["db_provenance"] is True

    def test_writes_are_not_executed_anywhere(self, memory_world,
                                              tmp_path):
        world = memory_world
        audit_excluded(world, tmp_path / "pkg")
        before = world.database.query("SELECT count(*) FROM sales")
        ldv_exec(tmp_path / "pkg", world.registry)
        # replay never contacts the original server
        assert world.database.query(
            "SELECT count(*) FROM sales") == before

    def test_mismatched_statement_fails(self, memory_world, tmp_path):
        world = memory_world
        audit_excluded(world, tmp_path / "pkg")

        def deviant(ctx):
            client = ctx.connect_db("main")
            client.execute("SELECT max(price) FROM sales")  # not recorded
            client.close()

        with pytest.raises(ReplayMismatchError):
            ldv_exec(tmp_path / "pkg", {"/bin/app": deviant})

    def test_out_of_order_statements_fail(self, memory_world, tmp_path):
        world = memory_world
        audit_excluded(world, tmp_path / "pkg")

        def reordered(ctx):
            client = ctx.connect_db("main")
            # the recorded run INSERTs first; querying first must fail
            client.execute("SELECT count(*) FROM sales")
            client.close()

        with pytest.raises(ReplayMismatchError):
            ldv_exec(tmp_path / "pkg", {"/bin/app": reordered})

    def test_whitespace_differences_tolerated(self, memory_world,
                                              tmp_path):
        world = memory_world
        audit_excluded(world, tmp_path / "pkg")

        def respaced(ctx):
            client = ctx.connect_db("main")
            client.execute(
                "INSERT INTO sales  VALUES (100, 50.0, 'new') ;")
            client.close()

        result = ldv_exec(tmp_path / "pkg", {"/bin/app": respaced})
        assert result.replayed_statements == 1

    def test_log_exhaustion_fails(self, memory_world, tmp_path):
        world = memory_world
        audit_excluded(world, tmp_path / "pkg")

        def greedy(ctx):
            client = ctx.connect_db("main")
            client.execute("INSERT INTO sales VALUES (100, 50.0, 'new')")
            client.execute(
                "SELECT sum(price) FROM sales WHERE price > 10")
            client.execute("UPDATE sales SET region = 'x' WHERE id = 2")
            client.execute("SELECT count(*) FROM sales")
            client.execute("SELECT count(*) FROM sales")  # one too many
            client.close()

        with pytest.raises(ReplayMismatchError):
            ldv_exec(tmp_path / "pkg", {"/bin/app": greedy},
                     allow_skip=True)


class TestPartialReExecution:
    @pytest.fixture
    def two_step_world(self, memory_world):
        world = memory_world

        def step_one(ctx):
            client = ctx.connect_db("main")
            client.execute("INSERT INTO sales VALUES (100, 50.0, 'new')")
            client.close()

        def step_two(ctx):
            client = ctx.connect_db("main")
            rows = client.execute(
                "SELECT count(*) FROM sales WHERE price > 10").rows
            ctx.write_file("/data/count.txt", str(rows[0][0]))
            client.close()

        def pipeline(ctx):
            ctx.spawn("/bin/step1")
            ctx.spawn("/bin/step2")

        world.vos.register_program("/bin/step1", step_one)
        world.vos.register_program("/bin/step2", step_two)
        world.vos.register_program("/bin/pipeline", pipeline)
        world.registry = {"/bin/step1": step_one,
                          "/bin/step2": step_two,
                          "/bin/pipeline": pipeline}
        return world

    def test_partial_replay_server_excluded(self, two_step_world,
                                            tmp_path):
        world = two_step_world
        ldv_audit(world.vos, "/bin/pipeline", tmp_path / "pkg",
                  mode="server-excluded", database=world.database,
                  server_name="main")
        original = world.vos.fs.read_file("/data/count.txt")
        # re-execute only P2: requires skipping P1's recorded insert
        result = ldv_exec(tmp_path / "pkg", world.registry,
                          binary="/bin/step2", allow_skip=True)
        assert result.outputs["/data/count.txt"] == original

    def test_partial_replay_server_included(self, two_step_world,
                                            tmp_path):
        world = two_step_world
        ldv_audit(world.vos, "/bin/pipeline", tmp_path / "pkg",
                  mode="server-included", database=world.database,
                  server_name="main",
                  server_binary_paths=SERVER_BINARIES)
        result = ldv_exec(tmp_path / "pkg", world.registry,
                          binary="/bin/step2",
                          scratch_dir=tmp_path / "scratch")
        # without P1's insert the count drops by one relative to the
        # full pipeline — partial execution runs, on restored state
        assert result.process.exit_code == 0
        assert "/data/count.txt" in result.outputs


class TestFailureInjection:
    def test_missing_entry_binary(self, memory_world, tmp_path):
        world = memory_world
        audit_excluded(world, tmp_path / "pkg")
        binary = tmp_path / "pkg" / "files" / "bin" / "app"
        binary.unlink()
        with pytest.raises(PackageError):
            ldv_exec(tmp_path / "pkg", world.registry)

    def test_registry_missing_program(self, memory_world, tmp_path):
        audit_excluded(memory_world, tmp_path / "pkg")
        with pytest.raises(PackageError):
            ldv_exec(tmp_path / "pkg", {})

    def test_truncated_replay_log(self, memory_world, tmp_path):
        world = memory_world
        audit_excluded(world, tmp_path / "pkg")
        log_path = tmp_path / "pkg" / "replay" / "log.jsonl"
        lines = log_path.read_text().splitlines()
        log_path.write_text("\n".join(lines[:2]) + "\n")
        with pytest.raises(ReplayMismatchError):
            ldv_exec(tmp_path / "pkg", world.registry)

    def test_missing_restore_csv_means_empty_table(self, world,
                                                   tmp_path):
        audit_included(world, tmp_path / "pkg")
        (tmp_path / "pkg" / "db" / "restore" / "sales.csv").unlink()
        session = ReplaySession(tmp_path / "pkg", world.registry,
                                scratch_dir=tmp_path / "scratch")
        session.prepare()
        heap = session.database.catalog.get_table("sales")
        assert heap.row_count == 0

    def test_run_before_prepare_raises(self, world, tmp_path):
        audit_included(world, tmp_path / "pkg")
        session = ReplaySession(tmp_path / "pkg", world.registry)
        with pytest.raises(ReplayError):
            session.run()

    def test_double_prepare_raises(self, world, tmp_path):
        audit_included(world, tmp_path / "pkg")
        session = ReplaySession(tmp_path / "pkg", world.registry,
                                scratch_dir=tmp_path / "scratch")
        session.prepare()
        with pytest.raises(ReplayError):
            session.prepare()

    def test_audit_mode_validation(self, memory_world, tmp_path):
        with pytest.raises(AuditError):
            ldv_audit(memory_world.vos, "/bin/app", tmp_path / "p",
                      mode="os-only")


class TestNormalizeSql:
    def test_collapses_whitespace(self):
        assert normalize_sql("SELECT  1\n FROM   t ;") == \
            "SELECT 1 FROM t"

    def test_case_preserved(self):
        assert normalize_sql("select A") == "select A"


def serving_app(ctx):
    """Exercises every serving path: prepared statements, pipelining,
    and a streamed result set."""
    client = ctx.connect_db("main")
    lookup = client.prepare("SELECT price FROM sales WHERE id = $1")
    west = lookup.query([2])
    with client.pipeline() as batch:
        batch.execute("INSERT INTO sales VALUES (101, 7.5, 'south')")
        total = batch.execute_prepared(
            client.prepare("SELECT sum(price) FROM sales WHERE "
                           "price > $1"), [5])
    streamed = client.execute_stream("SELECT id FROM sales",
                                     fetch_size=2).fetch_all()
    ctx.write_file(
        "/data/serving.txt",
        f"{west[0][0]}|{total.rows()[0][0]}|{len(streamed)}\n")
    lookup.deallocate()
    client.close()
    return 0


class TestServingPathsReplay:
    """Prepared, pipelined, and streamed traffic records under its
    canonical bound SQL and replays byte-identically server-excluded."""

    @pytest.fixture
    def serving_world(self, memory_world):
        world = memory_world
        world.vos.register_program("/bin/app", serving_app)
        world.registry = {"/bin/app": serving_app}
        return world

    def test_outputs_reproduced_without_server(self, serving_world,
                                               tmp_path):
        world = serving_world
        audit_excluded(world, tmp_path / "pkg")
        original = world.vos.fs.read_file("/data/serving.txt")
        result = ldv_exec(tmp_path / "pkg", world.registry)
        assert result.outputs["/data/serving.txt"] == original
        # 4 statements: prepared select, 2 pipelined, 1 streamed
        assert result.replayed_statements == 4

    def test_source_database_untouched_by_replay(self, serving_world,
                                                 tmp_path):
        world = serving_world
        audit_excluded(world, tmp_path / "pkg")
        before = world.database.query("SELECT count(*) FROM sales")
        ldv_exec(tmp_path / "pkg", world.registry)
        assert world.database.query(
            "SELECT count(*) FROM sales") == before

    def test_log_records_bound_sql_and_kind(self, serving_world,
                                            tmp_path):
        import json as json_module
        world = serving_world
        audit_excluded(world, tmp_path / "pkg")
        log_path = tmp_path / "pkg" / "replay" / "log.jsonl"
        entries = [json_module.loads(line)
                   for line in log_path.read_text().splitlines()]
        kinds = [entry.get("kind", "text") for entry in entries]
        assert kinds == ["prepared", "text", "prepared", "stream"]
        # prepared statements record the canonical bound text —
        # no $n placeholders survive into the log
        assert entries[0]["sql"] == \
            "SELECT price FROM sales WHERE id = 2"
        assert "$" not in entries[2]["sql"]

    def test_server_included_replay_of_serving_app(self, tmp_path):
        from tests.core.conftest import World
        world = World(data_dir=tmp_path / "pgdata")
        world.vos.register_program("/bin/app", serving_app)
        world.registry = {"/bin/app": serving_app}
        audit_included(world, tmp_path / "pkg")
        original = world.vos.fs.read_file("/data/serving.txt")
        result = ldv_exec(tmp_path / "pkg", world.registry,
                          scratch_dir=tmp_path / "scratch")
        assert result.outputs["/data/serving.txt"] == original
