"""Package format and manifest tests."""

import json

import pytest

from repro.core.package import (
    FORMAT_VERSION,
    Manifest,
    Package,
    PackageKind,
)
from repro.errors import ManifestError, PackageError


def make_manifest(**overrides):
    base = dict(kind=PackageKind.SERVER_INCLUDED,
                entry_binary="/bin/app", entry_argv=["-x"],
                db_server_name="main", tables=["sales"])
    base.update(overrides)
    return Manifest(**base)


class TestManifest:
    def test_json_round_trip(self):
        manifest = make_manifest(notes={"k": 1})
        restored = Manifest.from_json(manifest.to_json())
        assert restored == manifest

    def test_malformed_manifest_raises(self):
        with pytest.raises(ManifestError):
            Manifest.from_json({"kind": "nope"})

    def test_missing_entry_raises(self):
        with pytest.raises(ManifestError):
            Manifest.from_json({"kind": "server-included", "db": {}})


class TestPackage:
    def test_create_and_load(self, tmp_path):
        package = Package.create(tmp_path / "pkg", make_manifest())
        loaded = Package.load(tmp_path / "pkg")
        assert loaded.manifest == package.manifest

    def test_create_refuses_nonempty_dir(self, tmp_path):
        target = tmp_path / "pkg"
        target.mkdir()
        (target / "junk").write_text("x")
        with pytest.raises(PackageError):
            Package.create(target, make_manifest())

    def test_load_without_manifest_raises(self, tmp_path):
        (tmp_path / "pkg").mkdir()
        with pytest.raises(ManifestError):
            Package.load(tmp_path / "pkg")

    def test_load_corrupt_manifest_raises(self, tmp_path):
        target = tmp_path / "pkg"
        target.mkdir()
        (target / "MANIFEST.json").write_text("{broken")
        with pytest.raises(ManifestError):
            Package.load(target)

    def test_load_wrong_format_version(self, tmp_path):
        package = Package.create(tmp_path / "pkg", make_manifest())
        data = json.loads((package.root / "MANIFEST.json").read_text())
        data["format_version"] = FORMAT_VERSION + 1
        (package.root / "MANIFEST.json").write_text(json.dumps(data))
        with pytest.raises(ManifestError):
            Package.load(tmp_path / "pkg")

    def test_write_read_text(self, tmp_path):
        package = Package.create(tmp_path / "pkg", make_manifest())
        package.write_text("db/schema.sql", "CREATE TABLE x (a integer);")
        assert "CREATE TABLE" in package.read_text("db/schema.sql")

    def test_read_missing_raises(self, tmp_path):
        package = Package.create(tmp_path / "pkg", make_manifest())
        with pytest.raises(PackageError):
            package.read_text("replay/log.jsonl")

    def test_file_path_strips_leading_slash(self, tmp_path):
        package = Package.create(tmp_path / "pkg", make_manifest())
        assert package.file_path("/bin/app") == (
            tmp_path / "pkg" / "files" / "bin" / "app")

    def test_total_bytes_counts_everything(self, tmp_path):
        package = Package.create(tmp_path / "pkg", make_manifest())
        before = package.total_bytes()
        package.write_text("files/data.txt", "x" * 1000)
        assert package.total_bytes() == before + 1000

    def test_breakdown_groups_db_subdirs(self, tmp_path):
        package = Package.create(tmp_path / "pkg", make_manifest())
        package.write_text("db/restore/sales.csv", "1,1,x\n")
        package.write_text("db/server/bin", "ELF")
        package.write_text("files/a", "data")
        breakdown = package.breakdown()
        assert "db/restore" in breakdown
        assert "db/server" in breakdown
        assert "files" in breakdown

    def test_restore_tables(self, tmp_path):
        package = Package.create(tmp_path / "pkg", make_manifest())
        package.write_text("db/restore/b.csv", "")
        package.write_text("db/restore/a.csv", "")
        assert package.restore_tables() == ["a", "b"]

    def test_contents_summary_empty_package(self, tmp_path):
        package = Package.create(tmp_path / "pkg", make_manifest())
        summary = package.contents_summary()
        assert summary["db_provenance"] is False
        assert summary["db_server"] is False
