"""CLI front-end tests (ldv-audit / ldv-exec)."""

import sys

import pytest

from repro.core.cli import Scenario, audit_main, exec_main, load_scenario
from repro.errors import ReproError

from tests.core.conftest import SERVER_BINARIES, World, sales_app

# a module-level scenario factory the CLI can import by dotted path
_CURRENT_WORLD = {}


def cli_scenario():
    world = World()
    _CURRENT_WORLD["world"] = world
    return Scenario(
        vos=world.vos,
        entry_binary="/bin/app",
        registry=world.registry,
        database=world.database,
        server_name="main",
        server_binary_paths=SERVER_BINARIES)


SCENARIO_SPEC = f"{__name__}:cli_scenario"


class TestLoadScenario:
    def test_loads_by_dotted_path(self):
        scenario = load_scenario(SCENARIO_SPEC)
        assert isinstance(scenario, Scenario)
        assert scenario.entry_binary == "/bin/app"

    def test_missing_colon_rejected(self):
        with pytest.raises(ReproError):
            load_scenario("just.a.module")

    def test_unknown_attribute_rejected(self):
        with pytest.raises(ReproError):
            load_scenario(f"{__name__}:does_not_exist")

    def test_wrong_return_type_rejected(self):
        with pytest.raises(ReproError):
            load_scenario(f"{__name__}:SCENARIO_SPEC")


class TestAuditCommand:
    def test_audit_server_included(self, tmp_path, capsys):
        code = audit_main([SCENARIO_SPEC, "--mode", "server-included",
                           "--out", str(tmp_path / "pkg")])
        assert code == 0
        output = capsys.readouterr().out
        assert "package:" in output
        assert (tmp_path / "pkg" / "MANIFEST.json").exists()

    def test_audit_server_excluded(self, tmp_path, capsys):
        code = audit_main([SCENARIO_SPEC, "--mode", "server-excluded",
                           "--out", str(tmp_path / "pkg")])
        assert code == 0
        assert (tmp_path / "pkg" / "replay" / "log.jsonl").exists()

    def test_audit_bad_scenario_reports_error(self, tmp_path, capsys):
        code = audit_main(["nope.module:factory",
                           "--out", str(tmp_path / "pkg")])
        assert code == 1
        assert "error" in capsys.readouterr().err

    def test_audit_refuses_nonempty_out(self, tmp_path, capsys):
        target = tmp_path / "pkg"
        target.mkdir()
        (target / "junk").write_text("x")
        code = audit_main([SCENARIO_SPEC, "--out", str(target)])
        assert code == 1


class TestExecCommand:
    @pytest.fixture
    def package(self, tmp_path):
        audit_main([SCENARIO_SPEC, "--mode", "server-excluded",
                    "--out", str(tmp_path / "pkg")])
        return tmp_path / "pkg"

    def test_exec_replays_package(self, package, capsys):
        code = exec_main([str(package), SCENARIO_SPEC])
        assert code == 0
        output = capsys.readouterr().out
        assert "statements replayed" in output
        assert "/data/report.txt" in output

    def test_exec_missing_package_fails(self, tmp_path, capsys):
        code = exec_main([str(tmp_path / "ghost"), SCENARIO_SPEC])
        assert code == 1
        assert "error" in capsys.readouterr().err

    def test_exec_partial_with_allow_skip(self, tmp_path, capsys):
        audit_main([SCENARIO_SPEC, "--mode", "server-excluded",
                    "--out", str(tmp_path / "pkg")])
        code = exec_main([str(tmp_path / "pkg"), SCENARIO_SPEC,
                          "--binary", "/bin/app", "--allow-skip"])
        assert code == 0

    def test_entry_points_registered(self):
        """setup.cfg wires the console scripts to these mains."""
        import configparser
        from pathlib import Path
        parser = configparser.ConfigParser()
        parser.read(Path(__file__).parents[2] / "setup.cfg")
        scripts = parser["options.entry_points"]["console_scripts"]
        assert "repro.core.cli:audit_main" in scripts
        assert "repro.core.cli:exec_main" in scripts


# a factory whose *body* fails like a corrupted data directory would
def corrupt_scenario():
    from repro.errors import WALCorruptionError
    raise WALCorruptionError(
        "wal.log does not start with the WAL magic header")


CORRUPT_SPEC = f"{__name__}:corrupt_scenario"


class TestErrorDiagnostics:
    """Any ReproError exits non-zero with a one-line diagnostic —
    never a traceback."""

    def test_audit_reports_wal_corruption(self, tmp_path, capsys):
        code = audit_main([CORRUPT_SPEC, "--out", str(tmp_path / "pkg")])
        captured = capsys.readouterr()
        assert code == 1
        assert captured.err.count("\n") == 1
        assert "WALCorruptionError" in captured.err
        assert "Traceback" not in captured.err
        assert captured.err.startswith("ldv-audit: error:")

    def test_exec_reports_wal_corruption(self, tmp_path, capsys):
        code = exec_main([str(tmp_path / "ghost"), CORRUPT_SPEC])
        captured = capsys.readouterr()
        assert code == 1
        assert captured.err.count("\n") == 1
        assert "WALCorruptionError" in captured.err
        assert "Traceback" not in captured.err
        assert captured.err.startswith("ldv-exec: error:")

    def test_diagnostic_names_the_failure(self, tmp_path, capsys):
        code = audit_main(["nope.module:factory",
                           "--out", str(tmp_path / "pkg")])
        captured = capsys.readouterr()
        assert code == 1
        assert "ReproError" in captured.err
        assert "nope" in captured.err
