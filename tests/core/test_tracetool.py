"""ldv-trace tool tests."""

import json

import pytest

from repro.core import ldv_audit
from repro.core.tracetool import load_package_trace, summarize, trace_main

from tests.core.conftest import SERVER_BINARIES


@pytest.fixture
def package(memory_world, tmp_path):
    world = memory_world
    ldv_audit(world.vos, "/bin/app", tmp_path / "pkg",
              mode="server-included", database=world.database,
              server_name="main", server_binary_paths=SERVER_BINARIES)
    return tmp_path / "pkg"


class TestTraceLoading:
    def test_load_round_trips_the_audit_trace(self, package):
        trace = load_package_trace(package)
        assert trace.activities("process")
        assert trace.activities("query")
        assert trace.entities("file")
        assert trace.entities("tuple")

    def test_summarize_census(self, package):
        summary = summarize(load_package_trace(package))
        assert summary["activity:process"] >= 1
        assert summary["entity:tuple"] >= 4
        assert "edge:hasReturned" in summary


class TestTraceCli:
    def test_summary_output(self, package, capsys):
        assert trace_main([str(package)]) == 0
        output = capsys.readouterr().out
        assert "activity:process" in output
        assert "edge:run" in output

    def test_list_entities(self, package, capsys):
        assert trace_main([str(package), "--entities"]) == 0
        output = capsys.readouterr().out
        assert "file:/data/config.txt" in output
        assert "tuple:sales" in output

    def test_list_entities_filtered(self, package, capsys):
        assert trace_main([str(package), "--entities", "file"]) == 0
        output = capsys.readouterr().out
        assert "file:" in output
        assert "tuple:" not in output

    def test_deps_of_output_file(self, package, capsys):
        assert trace_main(
            [str(package), "--deps", "file:/data/report.txt"]) == 0
        output = capsys.readouterr().out
        assert "file:/data/config.txt" in output
        assert "tuple:sales" in output

    def test_depends_yes(self, package, capsys):
        code = trace_main([str(package), "--depends",
                           "file:/data/report.txt",
                           "file:/data/config.txt"])
        assert code == 0
        assert capsys.readouterr().out.strip() == "yes"

    def test_depends_no_uses_exit_code_2(self, package, capsys):
        code = trace_main([str(package), "--depends",
                           "file:/data/config.txt",
                           "file:/data/report.txt"])
        assert code == 2
        assert capsys.readouterr().out.strip() == "no"

    def test_depends_at_time_zero_is_no(self, package, capsys):
        code = trace_main([str(package), "--depends",
                           "file:/data/report.txt",
                           "file:/data/config.txt",
                           "--at-time", "0"])
        assert code == 2

    def test_unknown_node_is_an_error(self, package, capsys):
        assert trace_main([str(package), "--deps", "file:/ghost"]) == 1
        assert "error" in capsys.readouterr().err

    def test_prov_export(self, package, tmp_path, capsys):
        out = tmp_path / "prov.json"
        assert trace_main([str(package), "--prov", str(out)]) == 0
        document = json.loads(out.read_text())
        assert "activity" in document
        assert "wasDerivedFrom" in document

    def test_missing_package_is_an_error(self, tmp_path, capsys):
        assert trace_main([str(tmp_path / "nope")]) == 1
        assert "error" in capsys.readouterr().err
