"""Output validation (digest checks) and package archiving tests."""

import pytest

from repro.core import ldv_audit, ldv_exec
from repro.core.cli import audit_main, exec_main
from repro.core.package import Package
from repro.errors import PackageError

from tests.core.conftest import SERVER_BINARIES


class TestOutputValidation:
    def test_digests_recorded_at_audit(self, memory_world, tmp_path):
        world = memory_world
        ldv_audit(world.vos, "/bin/app", tmp_path / "pkg",
                  mode="server-excluded", database=world.database,
                  server_name="main")
        manifest = Package.load(tmp_path / "pkg").manifest
        digests = manifest.notes["output_digests"]
        assert "/data/report.txt" in digests
        assert len(digests["/data/report.txt"]) == 64  # sha256 hex

    def test_faithful_replay_validates(self, memory_world, tmp_path):
        world = memory_world
        ldv_audit(world.vos, "/bin/app", tmp_path / "pkg",
                  mode="server-excluded", database=world.database,
                  server_name="main")
        result = ldv_exec(tmp_path / "pkg", world.registry)
        assert result.output_matches["/data/report.txt"] is True
        assert result.validated

    def test_tampered_replay_log_fails_validation(self, memory_world,
                                                  tmp_path):
        world = memory_world
        ldv_audit(world.vos, "/bin/app", tmp_path / "pkg",
                  mode="server-excluded", database=world.database,
                  server_name="main")
        # tamper: swap a recorded result value in the log
        log_path = tmp_path / "pkg" / "replay" / "log.jsonl"
        log_path.write_text(
            log_path.read_text().replace("[[75.0]]", "[[999.0]]"))
        result = ldv_exec(tmp_path / "pkg", world.registry)
        assert result.output_matches["/data/report.txt"] is False
        assert not result.validated

    def test_tampered_restore_csv_fails_validation(self, world,
                                                   tmp_path):
        ldv_audit(world.vos, "/bin/app", tmp_path / "pkg",
                  mode="server-included", database=world.database,
                  server_name="main",
                  server_binary_paths=SERVER_BINARIES)
        csv_path = tmp_path / "pkg" / "db" / "restore" / "sales.csv"
        csv_path.write_text(csv_path.read_text().replace("11.0", "999.0"))
        result = ldv_exec(tmp_path / "pkg", world.registry,
                          scratch_dir=tmp_path / "scratch")
        assert not result.validated

    def test_validated_true_without_digests(self, memory_world,
                                            tmp_path):
        """Old packages (or baselines without digests) validate
        vacuously."""
        world = memory_world
        ldv_audit(world.vos, "/bin/app", tmp_path / "pkg",
                  mode="server-excluded", database=world.database,
                  server_name="main")
        package = Package.load(tmp_path / "pkg")
        package.manifest.notes.pop("output_digests")
        package.write_manifest()
        result = ldv_exec(tmp_path / "pkg", world.registry)
        assert result.validated
        assert result.output_matches == {}

    def test_cli_reports_validation_failure(self, tmp_path, capsys):
        from tests.core.test_cli import SCENARIO_SPEC
        audit_main([SCENARIO_SPEC, "--mode", "server-excluded",
                    "--out", str(tmp_path / "pkg")])
        log_path = tmp_path / "pkg" / "replay" / "log.jsonl"
        log_path.write_text(
            log_path.read_text().replace("[[75.0]]", "[[999.0]]"))
        code = exec_main([str(tmp_path / "pkg"), SCENARIO_SPEC])
        assert code == 3
        captured = capsys.readouterr()
        assert "DIFFERS" in captured.out
        assert "validation FAILED" in captured.err


class TestArchives:
    @pytest.fixture
    def package_dir(self, memory_world, tmp_path):
        world = memory_world
        ldv_audit(world.vos, "/bin/app", tmp_path / "pkg",
                  mode="server-excluded", database=world.database,
                  server_name="main")
        return tmp_path / "pkg", world

    def test_archive_round_trip(self, package_dir, tmp_path):
        pkg_path, world = package_dir
        package = Package.load(pkg_path)
        archive = package.archive(tmp_path / "share" / "pkg.tar.gz")
        assert archive.exists()
        restored = Package.from_archive(archive, tmp_path / "restored")
        assert restored.manifest == package.manifest
        result = ldv_exec(tmp_path / "restored", world.registry)
        assert result.validated

    def test_archive_excludes_scratch_state(self, world, tmp_path):
        ldv_audit(world.vos, "/bin/app", tmp_path / "pkg",
                  mode="server-included", database=world.database,
                  server_name="main",
                  server_binary_paths=SERVER_BINARIES)
        # create runtime scratch inside the package, as ldv_exec does
        ldv_exec(tmp_path / "pkg", world.registry)
        package = Package.load(tmp_path / "pkg")
        assert (tmp_path / "pkg" / ".runtime").exists()
        archive = package.archive(tmp_path / "pkg.tar.gz")
        restored = Package.from_archive(archive, tmp_path / "clean")
        assert not (tmp_path / "clean" / ".runtime").exists()

    def test_from_archive_refuses_nonempty_target(self, package_dir,
                                                  tmp_path):
        pkg_path, _world = package_dir
        archive = Package.load(pkg_path).archive(tmp_path / "a.tar.gz")
        target = tmp_path / "busy"
        target.mkdir()
        (target / "junk").write_text("x")
        with pytest.raises(PackageError):
            Package.from_archive(archive, target)

    def test_from_archive_rejects_garbage(self, tmp_path):
        garbage = tmp_path / "not-a-package.tar.gz"
        garbage.write_bytes(b"definitely not gzip")
        with pytest.raises(PackageError):
            Package.from_archive(garbage, tmp_path / "out")

    def test_archive_smaller_than_directory(self, package_dir,
                                            tmp_path):
        pkg_path, _world = package_dir
        package = Package.load(pkg_path)
        archive = package.archive(tmp_path / "pkg.tar.gz")
        assert archive.stat().st_size < package.total_bytes()


class TestExplain:
    @pytest.fixture
    def db(self):
        from repro.db import Database
        database = Database()
        database.execute("CREATE TABLE a (x integer, y float)")
        database.execute("CREATE TABLE b (x integer, z text)")
        return database

    def test_explain_returns_plan_rows(self, db):
        result = db.execute("EXPLAIN SELECT * FROM a WHERE x > 1")
        assert result.kind == "explain"
        text = "\n".join(row[0] for row in result.rows)
        assert "SeqScan on a" in text
        assert "Filter" in text

    def test_explain_shows_hash_join(self, db):
        result = db.execute(
            "EXPLAIN SELECT 1 FROM a, b WHERE a.x = b.x")
        text = "\n".join(row[0] for row in result.rows)
        assert "HashJoin" in text

    def test_explain_shows_aggregate(self, db):
        result = db.execute(
            "EXPLAIN SELECT x, count(*) FROM a GROUP BY x "
            "ORDER BY x LIMIT 2")
        text = "\n".join(row[0] for row in result.rows)
        assert "GroupAggregate" in text
        assert "Sort" in text
        assert "Limit" in text

    def test_explain_does_not_execute(self, db):
        db.execute("INSERT INTO a VALUES (1, 1.0)")
        db.execute("EXPLAIN SELECT * FROM a")
        assert db.query("SELECT count(*) FROM a") == [(1,)]

    def test_explain_render_round_trip(self):
        from repro.db.sql.parser import parse_one
        from repro.db.sql.render import render_statement
        tree = parse_one("EXPLAIN SELECT x FROM a WHERE x > 1")
        assert parse_one(render_statement(tree)) == tree

    def test_explain_through_client(self, db):
        from repro.db import DBClient, DBServer
        client = DBClient(DBServer(db).transport())
        client.connect()
        rows = client.query("EXPLAIN SELECT * FROM a")
        assert rows
        client.close()
