"""Recovered data directories are indistinguishable from clean ones.

The durability guarantee the packager leans on: a database that crashed
and was recovered from its WAL produces — table files and whole audit
packages alike — the exact bytes a never-crashed database produces.
Without it, reproducibility would silently depend on server uptime.
"""

from pathlib import Path

import pytest

from repro.core.audit import ldv_audit
from repro.db import Database, DBServer
from repro.faults import FaultInjector, FaultyIO, SimulatedCrash
from repro.vos import VirtualOS

from tests.core.conftest import SERVER_BINARIES, sales_app

PREP = [
    "CREATE TABLE sales (id integer PRIMARY KEY, "
    "price float, region text)",
    "INSERT INTO sales VALUES (1, 5, 'east'), (2, 11, 'west'), "
    "(3, 14, 'west'), (4, 2, 'north')",
    "UPDATE sales SET price = 12.5 WHERE id = 2",
]


def prep_database(data_dir, io=None):
    vos = VirtualOS()
    database = Database(data_directory=data_dir, clock=vos.clock, io=io)
    for sql in PREP:
        database.execute(sql)
    return vos, database


def crashed_then_recovered(data_dir):
    """Prep a directory, crash it mid-checkpoint, reopen it healthy."""
    injector = FaultInjector().crash_at("checkpoint.table.rename")
    _, database = prep_database(data_dir, io=FaultyIO(injector))
    with pytest.raises(SimulatedCrash):
        database.checkpoint()
    vos = VirtualOS()
    return vos, Database(data_directory=data_dir, clock=vos.clock)


def tree_bytes(root):
    """Relative path → file bytes for a whole directory tree."""
    root = Path(root)
    return {
        str(path.relative_to(root)): path.read_bytes()
        for path in sorted(root.rglob("*")) if path.is_file()
    }


def audit_package(vos, database, out_dir):
    vos.register_db_server("main", DBServer(database).transport())
    vos.fs.write_file("/data/config.txt", b"threshold=10\n",
                      create_parents=True)
    for path in SERVER_BINARIES:
        vos.fs.write_file(path, b"\x7fELF" + b"\0" * 4096,
                          create_parents=True)
    vos.register_program("/bin/app", sales_app)
    return ldv_audit(vos, "/bin/app", out_dir, mode="server-included",
                     database=database, server_name="main",
                     server_binary_paths=SERVER_BINARIES)


def test_recovered_table_files_are_byte_identical(tmp_path):
    _, clean = prep_database(tmp_path / "clean")
    clean.checkpoint()
    _, recovered = crashed_then_recovered(tmp_path / "crashed")
    recovered.checkpoint()
    clean_tree = tree_bytes(tmp_path / "clean")
    recovered_tree = tree_bytes(tmp_path / "crashed")
    assert set(clean_tree) == set(recovered_tree)
    assert clean_tree == recovered_tree


def test_packages_from_recovered_directory_are_byte_identical(tmp_path):
    vos_a, clean = prep_database(tmp_path / "clean")
    clean.checkpoint()
    audit_package(vos_a, clean, tmp_path / "pkg-clean")

    vos_b, recovered = crashed_then_recovered(tmp_path / "crashed")
    audit_package(vos_b, recovered, tmp_path / "pkg-recovered")

    clean_pkg = tree_bytes(tmp_path / "pkg-clean")
    recovered_pkg = tree_bytes(tmp_path / "pkg-recovered")
    assert set(clean_pkg) == set(recovered_pkg)
    for name in clean_pkg:
        assert clean_pkg[name] == recovered_pkg[name], (
            f"package file {name} differs after crash recovery")


def test_recovery_preserves_tuple_versions_seen_by_provenance(tmp_path):
    """Provenance queries — the paper's whole point — see the same
    tuple versions before a crash and after recovery."""
    _, clean = prep_database(tmp_path / "clean")
    expected = clean.query(
        "SELECT PROVENANCE id, price FROM sales WHERE price > 10")
    _, recovered = crashed_then_recovered(tmp_path / "crashed")
    actual = recovered.query(
        "SELECT PROVENANCE id, price FROM sales WHERE price > 10")
    assert actual == expected
