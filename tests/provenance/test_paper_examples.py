"""Every worked example of Sections IV–VI, encoded as tests.

* Figure 2 / Examples 1–3: the combined execution trace of processes
  P1, P2, files A, B, C and tuples t1..t5.
* Figure 3 / Examples 4–5: P_Lin dependencies.
* Figure 4 / Examples 6–7: P_BB dependencies and the temporal pruning
  of the B → C dependency.
* Figure 6 / Example 8: the three temporal-annotation variants.
"""

import pytest

from repro.db.provtypes import TupleRef
from repro.provenance import (
    DependencyInference,
    TimeInterval,
    TraceBuilder,
    bb_dependencies,
    lin_dependencies,
)
from repro.provenance.lineage import tuple_node_id


def t(table, rowid, version=1):
    return TupleRef(table, rowid, version)


@pytest.fixture
def figure2():
    """The combined execution trace of Figure 2.

    P1 reads file A during [1,6] and file B during [7,8]; it runs
    Insert1 at tick 5 creating t1, t2 and Insert2 at tick 8 creating
    t3. P2 runs Query at tick 9 which reads t1 and t3 and returns t4
    (lineage {t1}) and t5 (lineage {t3}); P2 reads the result tuples
    and writes file C during [7,12].
    """
    builder = TraceBuilder()
    builder.process(1, "P1")
    builder.process(2, "P2")
    builder.read_from(1, "/A", TimeInterval(1, 6))
    builder.read_from(1, "/B", TimeInterval(7, 8))
    insert1 = builder.statement("i1", "insert")
    builder.run(1, insert1, TimeInterval.point(5))
    builder.has_returned(insert1, t("db", 1), 5)
    builder.has_returned(insert1, t("db", 2), 5)
    insert2 = builder.statement("i2", "insert")
    builder.run(1, insert2, TimeInterval.point(8))
    builder.has_returned(insert2, t("db", 3), 8)
    query = builder.statement("q1", "query")
    builder.run(2, query, TimeInterval.point(9))
    builder.has_read(query, t("db", 1), 9)
    builder.has_read(query, t("db", 3), 9)
    builder.has_returned(query, t("db", 4), 9, [t("db", 1)])
    builder.has_returned(query, t("db", 5), 9, [t("db", 3)])
    builder.read_from_db(2, t("db", 4), 9)
    builder.read_from_db(2, t("db", 5), 9)
    builder.has_written(2, "/C", TimeInterval(7, 12))
    return builder.trace


class TestFigure2CombinedTrace:
    def test_node_inventory(self, figure2):
        assert len(figure2.activities("process")) == 2
        assert len(figure2.activities("insert")) == 2
        assert len(figure2.activities("query")) == 1
        assert len(figure2.entities("file")) == 3
        assert len(figure2.entities("tuple")) == 5

    def test_result_tuples_depend_on_inserted_tuples(self, figure2):
        """Example 3: t4 and t5 depend on t1 and t3."""
        deps = lin_dependencies(figure2)
        assert (tuple_node_id(t("db", 4)), tuple_node_id(t("db", 1))) in deps
        assert (tuple_node_id(t("db", 5)), tuple_node_id(t("db", 3))) in deps

    def test_t2_contributes_to_nothing(self, figure2):
        """t2 was inserted but never read (the paper excludes it from
        packages)."""
        deps = lin_dependencies(figure2)
        assert not any(source == tuple_node_id(t("db", 2))
                       for _, source in deps)

    def test_file_c_depends_on_file_a_via_database(self, figure2):
        """Cross-model inference: A → P1 → Insert1 → t1 → Query → t4
        → P2 → C, temporally feasible."""
        inference = DependencyInference(figure2)
        assert inference.depends_on("file:/C", "file:/A")

    def test_file_c_depends_on_tuples(self, figure2):
        inference = DependencyInference(figure2)
        deps = inference.dependencies_of("file:/C")
        assert tuple_node_id(t("db", 1)) in deps
        assert tuple_node_id(t("db", 4)) in deps
        assert tuple_node_id(t("db", 2)) not in deps

    def test_query_state_includes_read_tuples(self, figure2):
        from repro.provenance.lineage import statement_node_id
        state = figure2.state(statement_node_id("q1"), 9)
        assert tuple_node_id(t("db", 1)) in state
        assert tuple_node_id(t("db", 3)) in state


class TestFigure3LineageDependencies:
    def test_example5(self):
        """Q1 = SELECT sum(price) FROM sales WHERE price > 10 over
        Figure 5's table: t4 depends on t2 and t3."""
        builder = TraceBuilder()
        query = builder.statement("q1", "query")
        for rowid in (2, 3):
            builder.has_read(query, t("sales", rowid), 4)
        builder.has_returned(query, t("sales", 4), 4,
                             [t("sales", 2), t("sales", 3)])
        deps = lin_dependencies(builder.trace)
        assert deps == {
            (tuple_node_id(t("sales", 4)), tuple_node_id(t("sales", 2))),
            (tuple_node_id(t("sales", 4)), tuple_node_id(t("sales", 3))),
        }


@pytest.fixture
def figure4():
    """Figure 4: P1 reads A [1,5] and B [7,8], writes C [2,3], D [8,8]."""
    builder = TraceBuilder()
    builder.process(1, "P1")
    builder.read_from(1, "/A", TimeInterval(1, 5))
    builder.read_from(1, "/B", TimeInterval(7, 8))
    builder.has_written(1, "/C", TimeInterval(2, 3))
    builder.has_written(1, "/D", TimeInterval(8, 8))
    return builder.trace


class TestFigure4BlackboxDependencies:
    def test_example6_raw_dependencies(self, figure4):
        """Definition 8 (no temporal pruning): C and D depend on both
        A and B."""
        deps = bb_dependencies(figure4)
        assert deps == {
            ("file:/C", "file:/A"), ("file:/C", "file:/B"),
            ("file:/D", "file:/A"), ("file:/D", "file:/B"),
        }

    def test_example7_temporal_pruning(self, figure4):
        """C was written [2,3] before P1 read B [7,8]: no inferred
        dependency C → B; the dependency on A survives."""
        inference = DependencyInference(figure4)
        assert not inference.depends_on("file:/C", "file:/B")
        assert inference.depends_on("file:/C", "file:/A")

    def test_d_written_late_depends_on_both(self, figure4):
        inference = DependencyInference(figure4)
        assert inference.depends_on("file:/D", "file:/A")
        assert inference.depends_on("file:/D", "file:/B")

    def test_process_chain_dependency(self):
        """Definition 8's executed-chain case: P1 reads A, executes P2,
        P2 writes C — C depends on A."""
        builder = TraceBuilder()
        builder.process(1, "P1")
        builder.process(2, "P2")
        builder.read_from(1, "/A", TimeInterval(1, 2))
        builder.executed(1, 2, 3)
        builder.has_written(2, "/C", TimeInterval(4, 5))
        assert ("file:/C", "file:/A") in bb_dependencies(builder.trace)
        inference = DependencyInference(builder.trace)
        assert inference.depends_on("file:/C", "file:/A")

    def test_executed_chain_respects_time(self):
        """Child spawned before the parent read the file: the write
        cannot depend on that later read."""
        builder = TraceBuilder()
        builder.process(1, "P1")
        builder.process(2, "P2")
        builder.executed(1, 2, 1)
        builder.has_written(2, "/C", TimeInterval(2, 3))
        builder.read_from(1, "/A", TimeInterval(5, 6))
        # raw D(G) keeps the false positive...
        assert ("file:/C", "file:/A") in bb_dependencies(builder.trace)
        # ...temporal inference prunes it
        inference = DependencyInference(builder.trace)
        assert not inference.depends_on("file:/C", "file:/A")


def chain_trace(intervals, with_dependency_ab=True):
    """Build the Figure 6 shape: A →[i1] P1 →[i2] B →[i3] P2 →[i4] C."""
    builder = TraceBuilder()
    builder.process(1, "P1")
    builder.process(2, "P2")
    i1, i2, i3, i4 = [TimeInterval(*pair) for pair in intervals]
    builder.read_from(1, "/A", i1)
    builder.has_written(1, "/B", i2)
    builder.read_from(2, "/B", i3)
    builder.has_written(2, "/C", i4)
    return builder.trace


class TestFigure6Example8:
    def test_trace_6a_no_dependency(self):
        """P2 stopped reading B ([1,5]) before P1 wrote it ([6,7])."""
        trace = chain_trace([(2, 3), (6, 7), (1, 5), (6, 6)])
        inference = DependencyInference(trace)
        assert not inference.depends_on("file:/C", "file:/A")

    def test_trace_6b_dependency_at_time_4(self):
        """C depends on A; the earliest feasible time is 4."""
        trace = chain_trace([(1, 1), (4, 7), (2, 5), (1, 6)])
        inference = DependencyInference(trace)
        assert inference.depends_on("file:/C", "file:/A")
        # at_time semantics: no dependency visible before tick 4
        assert not inference.depends_on("file:/C", "file:/A", at_time=3)
        assert inference.depends_on("file:/C", "file:/A", at_time=4)

    def test_trace_6c_no_dependency_without_model_dependency(self):
        """Figure 6c: there is no data dependency between B and A, so
        no C → A dependency may be inferred. In the BB encoding the
        missing dependency manifests temporally (P1 wrote B before it
        read A)."""
        trace = chain_trace([(9, 9), (4, 7), (5, 5), (5, 6)])
        inference = DependencyInference(trace)
        assert not inference.depends_on("file:/C", "file:/A")

    def test_trace_6c_lineage_variant(self):
        """The DB-side analogue of 6c: the intermediate pair is from
        P_Lin and the Lineage attribution says t_b does not depend on
        t_a — condition 1 of Definition 11 blocks the inference even
        though the path is temporally feasible."""
        builder = TraceBuilder()
        builder.process(2, "P2")
        query = builder.statement("q", "query")
        builder.has_read(query, t("db", 1), 4)  # t_a read by q
        # q returns t_b, but t_a is NOT in t_b's lineage
        builder.has_returned(query, t("db", 2), 5, lineage_refs=[])
        builder.read_from_db(2, t("db", 2), 6)
        builder.has_written(2, "/C", TimeInterval(7, 8))
        inference = DependencyInference(builder.trace)
        t_a = tuple_node_id(t("db", 1))
        t_b = tuple_node_id(t("db", 2))
        assert not inference.depends_on(t_b, t_a)
        assert not inference.depends_on("file:/C", t_a)
        # the result tuple itself does flow into C
        assert inference.depends_on("file:/C", t_b)
