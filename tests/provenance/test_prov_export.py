"""PROV-JSON export tests."""

import json

import pytest

from repro.db.provtypes import TupleRef
from repro.provenance import TimeInterval, TraceBuilder
from repro.provenance.prov_export import trace_to_prov


@pytest.fixture
def document():
    builder = TraceBuilder()
    builder.process(1, "P1")
    builder.read_from(1, "/A", TimeInterval(1, 6))
    query = builder.statement("q1", "query", sql="SELECT 1")
    builder.run(1, query, TimeInterval.point(7))
    ref = TupleRef("t", 1, 1)
    builder.has_read(query, ref, 7)
    out = TupleRef("t", 9, 7)
    builder.has_returned(query, out, 7, [ref])
    builder.read_from_db(1, out, 7)
    builder.has_written(1, "/B", TimeInterval(8, 9))
    return trace_to_prov(builder.trace, include_dependencies=True)


class TestProvExport:
    def test_document_is_json_serializable(self, document):
        json.dumps(document)

    def test_activities_and_entities_partitioned(self, document):
        assert "repro:proc_1" in document["activity"]
        assert "repro:stmt_q1" in document["activity"]
        assert "repro:file__A" in document["entity"]
        assert "repro:tuple_t_1_v1" in document["entity"]

    def test_used_relations(self, document):
        used_pairs = {(rel["prov:activity"], rel["prov:entity"])
                      for rel in document["used"].values()}
        assert ("repro:proc_1", "repro:file__A") in used_pairs
        assert ("repro:stmt_q1", "repro:tuple_t_1_v1") in used_pairs

    def test_generation_relations(self, document):
        generated = {(rel["prov:entity"], rel["prov:activity"])
                     for rel in document["wasGeneratedBy"].values()}
        assert ("repro:file__B", "repro:proc_1") in generated
        assert ("repro:tuple_t_9_v7", "repro:stmt_q1") in generated

    def test_run_edge_becomes_informed_by(self, document):
        informed = {(rel["prov:informant"], rel["prov:informed"])
                    for rel in document["wasInformedBy"].values()}
        assert ("repro:proc_1", "repro:stmt_q1") in informed

    def test_temporal_annotations_preserved(self, document):
        spans = [(rel["repro:begin"], rel["repro:end"])
                 for rel in document["used"].values()]
        assert (1, 6) in spans

    def test_inferred_dependencies_exported(self, document):
        derived = {(rel["prov:generatedEntity"], rel["prov:usedEntity"])
                   for rel in document["wasDerivedFrom"].values()}
        # B depends on A and on both tuple versions
        assert ("repro:file__B", "repro:file__A") in derived
        assert ("repro:file__B", "repro:tuple_t_1_v1") in derived

    def test_dependencies_optional(self):
        builder = TraceBuilder()
        builder.process(1)
        document = trace_to_prov(builder.trace)
        assert "wasDerivedFrom" not in document

    def test_node_attrs_exported(self, document):
        record = document["activity"]["repro:stmt_q1"]
        assert record["repro:sql"] == "SELECT 1"
        assert record["repro:model"] == "lin"
