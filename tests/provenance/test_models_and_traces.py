"""Provenance model (Def 1) and execution trace (Def 2) tests."""

import pytest

from repro.errors import ModelViolationError, ProvenanceError, UnknownNodeError
from repro.provenance import (
    BB_MODEL,
    COMBINED_MODEL,
    LIN_MODEL,
    EdgeType,
    ExecutionTrace,
    ProvenanceModel,
    TimeInterval,
)


class TestTimeInterval:
    def test_point(self):
        interval = TimeInterval.point(5)
        assert interval.begin == interval.end == 5
        assert interval.is_point

    def test_invalid_interval_raises(self):
        with pytest.raises(ProvenanceError):
            TimeInterval(5, 3)

    def test_contains(self):
        assert TimeInterval(1, 5).contains(3)
        assert not TimeInterval(1, 5).contains(6)

    def test_overlaps(self):
        assert TimeInterval(1, 5).overlaps(TimeInterval(5, 9))
        assert not TimeInterval(1, 4).overlaps(TimeInterval(5, 9))

    def test_hull(self):
        assert TimeInterval(1, 3).hull(TimeInterval(7, 8)) == TimeInterval(1, 8)

    def test_json_round_trip(self):
        interval = TimeInterval(2, 9)
        assert TimeInterval.from_json(interval.to_json()) == interval


class TestProvenanceModel:
    def test_bb_model_shape(self):
        """Definition 3."""
        assert BB_MODEL.activity_types == frozenset({"process"})
        assert BB_MODEL.entity_types == frozenset({"file"})
        assert set(BB_MODEL.edge_types) == {
            "readFrom", "hasWritten", "executed"}

    def test_lin_model_shape(self):
        """Definition 4."""
        assert LIN_MODEL.activity_types == frozenset(
            {"query", "insert", "update", "delete"})
        assert LIN_MODEL.entity_types == frozenset({"tuple"})

    def test_combined_model_unions_types(self):
        """Definition 5."""
        assert COMBINED_MODEL.activity_types >= BB_MODEL.activity_types
        assert COMBINED_MODEL.activity_types >= LIN_MODEL.activity_types
        assert "run" in COMBINED_MODEL.edge_types
        assert "readFromDB" in COMBINED_MODEL.edge_types

    def test_labels_pairwise_distinct(self):
        with pytest.raises(ModelViolationError):
            ProvenanceModel("bad", ["x"], ["x"], [])

    def test_edge_label_collision_with_node_type(self):
        with pytest.raises(ModelViolationError):
            ProvenanceModel("bad", ["a"], ["e"],
                            [EdgeType("a", "e", "a")])

    def test_duplicate_edge_label(self):
        with pytest.raises(ModelViolationError):
            ProvenanceModel("bad", ["a"], ["e"],
                            [EdgeType("l", "e", "a"),
                             EdgeType("l", "a", "e")])

    def test_edge_references_unknown_type(self):
        with pytest.raises(ModelViolationError):
            ProvenanceModel("bad", ["a"], ["e"],
                            [EdgeType("l", "ghost", "a")])

    def test_combine_rejects_shared_types(self):
        model = ProvenanceModel("m1", ["process"], [], [])
        with pytest.raises(ModelViolationError):
            BB_MODEL.combine(model, [])

    def test_check_edge_validates_endpoints(self):
        BB_MODEL.check_edge("readFrom", "file", "process")
        with pytest.raises(ModelViolationError):
            BB_MODEL.check_edge("readFrom", "process", "file")
        with pytest.raises(ModelViolationError):
            BB_MODEL.check_edge("ghost", "file", "process")


@pytest.fixture
def trace():
    t = ExecutionTrace(BB_MODEL)
    t.add_activity("proc:1", "process")
    t.add_entity("file:/a", "file")
    t.add_entity("file:/b", "file")
    t.add_edge("file:/a", "proc:1", "readFrom", TimeInterval(1, 6))
    t.add_edge("proc:1", "file:/b", "hasWritten", TimeInterval(7, 9))
    return t


class TestExecutionTrace:
    def test_typed_construction(self, trace):
        assert trace.node("proc:1").is_activity
        assert trace.node("file:/a").is_entity
        assert trace.node_count == 3
        assert trace.edge_count == 2

    def test_wrong_kind_rejected(self, trace):
        with pytest.raises(ModelViolationError):
            trace.add_activity("x", "file")
        with pytest.raises(ModelViolationError):
            trace.add_entity("y", "process")

    def test_edge_type_enforced(self, trace):
        with pytest.raises(ModelViolationError):
            trace.add_edge("proc:1", "file:/a", "readFrom",
                           TimeInterval.point(1))

    def test_edge_to_unknown_node(self, trace):
        with pytest.raises(UnknownNodeError):
            trace.add_edge("file:/a", "proc:99", "readFrom",
                           TimeInterval.point(1))

    def test_node_creation_idempotent(self, trace):
        trace.add_activity("proc:1", "process")
        assert trace.node_count == 3

    def test_node_type_conflict_raises(self, trace):
        with pytest.raises(ProvenanceError):
            trace.add_entity("proc:1", "file")

    def test_repeated_edge_widens_interval(self, trace):
        trace.add_edge("file:/a", "proc:1", "readFrom",
                       TimeInterval(10, 12))
        assert trace.interval("file:/a", "proc:1") == TimeInterval(1, 12)
        assert trace.edge_count == 2  # still a single edge

    def test_interval_lookup_missing_raises(self, trace):
        with pytest.raises(ProvenanceError):
            trace.interval("file:/b", "proc:1")

    def test_state_function(self, trace):
        """Definition 10: S(v, T) by incoming interaction begin time."""
        assert trace.state("proc:1", 0) == set()
        assert trace.state("proc:1", 1) == {"file:/a"}
        assert trace.state("file:/b", 6) == set()
        assert trace.state("file:/b", 7) == {"proc:1"}

    def test_adjacency_queries(self, trace):
        assert [e.target for e in trace.out_edges("file:/a")] == ["proc:1"]
        assert [e.source for e in trace.in_edges("file:/b")] == ["proc:1"]

    def test_filtered_node_listing(self, trace):
        assert [n.node_id for n in trace.entities("file")] == [
            "file:/a", "file:/b"]
        assert [n.node_id for n in trace.activities()] == ["proc:1"]

    def test_json_round_trip(self, trace):
        data = trace.to_json()
        restored = ExecutionTrace.from_json(data, BB_MODEL)
        assert restored.node_count == trace.node_count
        assert restored.edge_count == trace.edge_count
        assert restored.interval("file:/a", "proc:1") == TimeInterval(1, 6)
        assert restored.to_json() == data

    def test_json_preserves_edge_attrs(self):
        t = ExecutionTrace(COMBINED_MODEL)
        t.add_activity("stmt:q1", "query")
        t.add_entity("tuple:t:1:v1", "tuple")
        t.add_edge("stmt:q1", "tuple:t:1:v1", "hasReturned",
                   TimeInterval.point(4), lineage=["tuple:t:2:v1"])
        restored = ExecutionTrace.from_json(t.to_json(), COMBINED_MODEL)
        (edge,) = restored.out_edges("stmt:q1")
        assert edge.attrs["lineage"] == ["tuple:t:2:v1"]
