"""Dependency-inference tests: edge cases plus a hypothesis
cross-check of the traversal against a literal Definition 11
path enumerator (Theorem 1's sound-and-complete claim)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.db.provtypes import TupleRef
from repro.provenance import (
    DependencyInference,
    TimeInterval,
    TraceBuilder,
)
from repro.provenance.inference import brute_force_dependencies
from repro.provenance.lineage import tuple_node_id


def t(rowid, version=1):
    return TupleRef("db", rowid, version)


class TestBasics:
    def test_no_path_no_dependency(self):
        builder = TraceBuilder()
        builder.process(1)
        builder.process(2)
        builder.read_from(1, "/A", TimeInterval(1, 2))
        builder.has_written(2, "/B", TimeInterval(3, 4))
        inference = DependencyInference(builder.trace)
        assert not inference.depends_on("file:/B", "file:/A")

    def test_self_dependency_excluded(self):
        builder = TraceBuilder()
        builder.process(1)
        builder.read_from(1, "/A", TimeInterval(1, 2))
        builder.has_written(1, "/A", TimeInterval(3, 4))
        inference = DependencyInference(builder.trace)
        assert "file:/A" not in inference.dependencies_of("file:/A")

    def test_read_write_same_tick_is_feasible(self):
        builder = TraceBuilder()
        builder.process(1)
        builder.read_from(1, "/A", TimeInterval(5, 5))
        builder.has_written(1, "/B", TimeInterval(5, 5))
        inference = DependencyInference(builder.trace)
        assert inference.depends_on("file:/B", "file:/A")

    def test_long_feasible_chain(self):
        builder = TraceBuilder()
        previous = "/f0"
        builder.process(0)
        builder.read_from(0, previous, TimeInterval(0, 1))
        for index in range(1, 6):
            builder.process(index)
            builder.read_from(index, f"/f{index - 1}",
                              TimeInterval(2 * index - 1, 2 * index))
            builder.has_written(index, f"/f{index}",
                                TimeInterval(2 * index, 2 * index + 1))
        inference = DependencyInference(builder.trace)
        assert inference.depends_on("file:/f5", "file:/f0")

    def test_chain_broken_by_one_bad_interval(self):
        builder = TraceBuilder()
        builder.process(1)
        builder.process(2)
        builder.read_from(1, "/A", TimeInterval(10, 11))
        builder.has_written(1, "/B", TimeInterval(12, 13))
        builder.read_from(2, "/B", TimeInterval(1, 2))  # before B written
        builder.has_written(2, "/C", TimeInterval(14, 15))
        inference = DependencyInference(builder.trace)
        assert inference.depends_on("file:/B", "file:/A")
        assert not inference.depends_on("file:/C", "file:/A")

    def test_activity_state_dependencies(self):
        """Packaging asks: which entities does an activity's state
        depend on (Section VII-D)."""
        builder = TraceBuilder()
        builder.process(1)
        query = builder.statement("q", "query")
        builder.read_from(1, "/cfg", TimeInterval(1, 2))
        builder.run(1, query, TimeInterval.point(3))
        builder.has_read(query, t(1), 3)
        builder.has_returned(query, t(9), 3, [t(1)])
        inference = DependencyInference(builder.trace)
        deps = inference.dependencies_of("stmt:q")
        assert "file:/cfg" in deps
        assert tuple_node_id(t(1)) in deps

    def test_at_time_limits_target_state(self):
        builder = TraceBuilder()
        builder.process(1)
        builder.read_from(1, "/A", TimeInterval(1, 2))
        builder.has_written(1, "/B", TimeInterval(8, 9))
        inference = DependencyInference(builder.trace)
        assert not inference.depends_on("file:/B", "file:/A", at_time=7)
        assert inference.depends_on("file:/B", "file:/A", at_time=8)

    def test_all_dependencies_enumerates_pairs(self):
        builder = TraceBuilder()
        builder.process(1)
        builder.read_from(1, "/A", TimeInterval(1, 2))
        builder.has_written(1, "/B", TimeInterval(3, 4))
        builder.has_written(1, "/C", TimeInterval(3, 4))
        inference = DependencyInference(builder.trace)
        assert inference.all_dependencies() == {
            ("file:/B", "file:/A"), ("file:/C", "file:/A")}

    def test_cycle_does_not_hang(self):
        """P reads and writes the same file repeatedly."""
        builder = TraceBuilder()
        builder.process(1)
        builder.read_from(1, "/A", TimeInterval(1, 10))
        builder.has_written(1, "/A", TimeInterval(2, 9))
        builder.has_written(1, "/B", TimeInterval(5, 6))
        inference = DependencyInference(builder.trace)
        assert inference.depends_on("file:/B", "file:/A")


class TestLineageConditions:
    def test_partial_lineage_attribution(self):
        """A query reads t1, t2 and returns r1 (from t1) and r2 (from
        t2): r1 must not depend on t2."""
        builder = TraceBuilder()
        query = builder.statement("q", "query")
        builder.has_read(query, t(1), 5)
        builder.has_read(query, t(2), 5)
        builder.has_returned(query, t(11), 5, [t(1)])
        builder.has_returned(query, t(12), 5, [t(2)])
        inference = DependencyInference(builder.trace)
        r1, r2 = tuple_node_id(t(11)), tuple_node_id(t(12))
        assert inference.depends_on(r1, tuple_node_id(t(1)))
        assert not inference.depends_on(r1, tuple_node_id(t(2)))
        assert inference.depends_on(r2, tuple_node_id(t(2)))

    def test_update_chain_through_versions(self):
        """insert creates v1; update reads v1, returns v2; a query
        reads v2 — the query result depends on both versions."""
        builder = TraceBuilder()
        insert = builder.statement("i", "insert")
        builder.has_returned(insert, t(1, 1), 2)
        update = builder.statement("u", "update")
        builder.has_read(update, t(1, 1), 4)
        builder.has_returned(update, t(1, 2), 4, [t(1, 1)])
        query = builder.statement("q", "query")
        builder.has_read(query, t(1, 2), 6)
        builder.has_returned(query, t(99), 6, [t(1, 2)])
        inference = DependencyInference(builder.trace)
        result = tuple_node_id(t(99))
        assert inference.depends_on(result, tuple_node_id(t(1, 2)))
        assert inference.depends_on(result, tuple_node_id(t(1, 1)))

    def test_stale_version_not_dependency(self):
        """A query that read v2 does not depend on a later v3."""
        builder = TraceBuilder()
        update = builder.statement("u", "update")
        builder.has_read(update, t(1, 2), 10)
        builder.has_returned(update, t(1, 3), 10, [t(1, 2)])
        query = builder.statement("q", "query")
        builder.has_read(query, t(1, 2), 5)
        builder.has_returned(query, t(50), 5, [t(1, 2)])
        inference = DependencyInference(builder.trace)
        assert not inference.depends_on(
            tuple_node_id(t(50)), tuple_node_id(t(1, 3)))


# -- hypothesis: traversal == literal Definition 11 on random DAG traces ----


@st.composite
def dag_traces(draw):
    """Random acyclic BB traces: files and processes with edges whose
    direction follows a topological order, random intervals."""
    builder = TraceBuilder()
    n_files = draw(st.integers(min_value=2, max_value=5))
    n_procs = draw(st.integers(min_value=1, max_value=4))
    files = []
    for index in range(n_files):
        files.append(builder.file(f"/f{index}"))
    procs = []
    for index in range(n_procs):
        procs.append(builder.process(index))
    # interleave: assign each node a topological rank
    ranked = [(draw(st.integers(0, 9)), "file", node) for node in files]
    ranked += [(draw(st.integers(0, 9)), "proc", node) for node in procs]
    ranked.sort(key=lambda item: item[0])
    edge_count = draw(st.integers(min_value=1, max_value=8))
    for _ in range(edge_count):
        i = draw(st.integers(0, len(ranked) - 2))
        j = draw(st.integers(i + 1, len(ranked) - 1))
        (_, kind_i, node_i), (_, kind_j, node_j) = ranked[i], ranked[j]
        begin = draw(st.integers(0, 20))
        end = draw(st.integers(begin, 20))
        interval = TimeInterval(begin, end)
        if kind_i == "file" and kind_j == "proc":
            builder.trace.add_edge(node_i, node_j, "readFrom", interval)
        elif kind_i == "proc" and kind_j == "file":
            builder.trace.add_edge(node_i, node_j, "hasWritten", interval)
        elif kind_i == "proc" and kind_j == "proc":
            builder.trace.add_edge(node_i, node_j, "executed", interval)
        # file-file pairs: no admissible edge, skip
    return builder.trace


class TestTheorem1:
    @settings(max_examples=120, deadline=None)
    @given(dag_traces())
    def test_traversal_matches_brute_force(self, trace):
        inference = DependencyInference(trace)
        for entity in trace.entities():
            fast = inference.dependencies_of(entity.node_id)
            slow = brute_force_dependencies(trace, entity.node_id)
            assert fast == slow, (
                f"mismatch at {entity.node_id}: "
                f"traversal={sorted(fast)} brute={sorted(slow)}")

    @settings(max_examples=60, deadline=None)
    @given(dag_traces(), st.integers(0, 20))
    def test_at_time_matches_brute_force(self, trace, at_time):
        inference = DependencyInference(trace)
        for entity in trace.entities()[:3]:
            fast = inference.dependencies_of(entity.node_id, at_time)
            slow = brute_force_dependencies(trace, entity.node_id, at_time)
            assert fast == slow

    @settings(max_examples=60, deadline=None)
    @given(dag_traces())
    def test_monotone_in_time(self, trace):
        """Dependencies at an earlier time are a subset of later ones."""
        inference = DependencyInference(trace)
        for entity in trace.entities()[:3]:
            earlier = inference.dependencies_of(entity.node_id, at_time=5)
            later = inference.dependencies_of(entity.node_id, at_time=15)
            ever = inference.dependencies_of(entity.node_id)
            assert earlier <= later <= ever
